"""Shared retry policy: timeouts, exponential backoff, deterministic jitter.

Every client-side resilience path of the service — the replay driver's
TCP connect loop, mid-trace reconnects, and retryable-error re-sends —
routes through one :class:`RetryPolicy`, so backoff behaviour is
configured (and reasoned about) in exactly one place.

Jitter is *deterministic*: instead of ``random()``, the jitter fraction
is derived from a SHA-256 hash of ``(seed, key, attempt)``.  Two runs
of the same replay produce the same delay sequence (reproducible chaos
runs), while distinct keys — different flows, different connections —
still de-synchronise, which is all retry jitter exists to do.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass

__all__ = ["ConnectError", "RetryPolicy", "connect_with_backoff"]


class ConnectError(OSError):
    """A connect loop gave up — carries how hard it tried.

    ``attempts`` is the number of connection attempts made,
    ``elapsed_s`` the total wall-clock time spent, ``last_error`` the
    final underlying failure.  Subclasses :class:`OSError`, so callers
    catching the historical bare ``OSError`` keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: int = 0,
        elapsed_s: float = 0.0,
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(attempt)`` grows as ``base_s * multiplier**attempt`` capped
    at ``max_s``, then shrinks by up to ``jitter`` (a fraction in
    [0, 1]) using the hash-derived jitter fraction — i.e. the delay
    lands in ``[cap * (1 - jitter), cap]``.
    """

    attempts: int = 5
    base_s: float = 0.05
    max_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")
        if self.base_s <= 0 or self.max_s <= 0:
            raise ValueError("base_s and max_s must be > 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def jitter_fraction(self, attempt: int, key: str = "") -> float:
        """Deterministic stand-in for ``random()`` in [0, 1)."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff delay in seconds before retry number ``attempt``."""
        cap = min(self.max_s, self.base_s * self.multiplier ** attempt)
        if not self.jitter:
            return cap
        return cap * (1.0 - self.jitter * self.jitter_fraction(attempt, key))

    def delays(self, key: str = "") -> tuple[float, ...]:
        """The full delay schedule (one entry per allowed retry)."""
        return tuple(self.delay(a, key) for a in range(self.attempts))


async def connect_with_backoff(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    policy: RetryPolicy | None = None,
    max_attempts: int | None = None,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection, retrying with backoff until ``timeout``.

    Replaces the historical fixed-interval busy-wait: early attempts
    retry fast (a server that is one event-loop tick from binding),
    later attempts back off (a server that is restarting), and the
    deterministic jitter keeps many replaying clients from stampeding
    a recovering server in lockstep.

    ``timeout`` is an **overall deadline**: each attempt's own connect
    wait is clipped to the time remaining (a blackholed SYN cannot
    stretch the loop past it), and ``max_attempts`` optionally bounds
    the attempt count too.  Giving up raises :class:`ConnectError`
    carrying ``attempts`` / ``elapsed_s`` / ``last_error``, so callers
    (and their logs) see exactly how hard the loop tried.
    """
    policy = policy or RetryPolicy()
    start = time.monotonic()
    deadline = start + timeout
    attempts = 0
    while True:
        remaining = deadline - time.monotonic()
        attempts += 1
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), max(remaining, 1e-3)
            )
        except (OSError, asyncio.TimeoutError) as exc:
            last_error = exc
        remaining = deadline - time.monotonic()
        if remaining <= 0 or (
            max_attempts is not None and attempts >= max_attempts
        ):
            elapsed = time.monotonic() - start
            raise ConnectError(
                f"connect to {host}:{port} failed after {attempts} "
                f"attempt(s) in {elapsed:.3f}s: {last_error}",
                attempts=attempts,
                elapsed_s=elapsed,
                last_error=last_error,
            ) from last_error
        delay = min(
            policy.delay(attempts - 1, key=f"connect:{host}:{port}"),
            remaining,
        )
        await asyncio.sleep(delay)
