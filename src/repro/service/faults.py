"""Deterministic fault injection for the admission service.

Chaos testing is only useful when a failure can be *replayed*: a crash
that happens at a wall-clock instant reproduces on no other machine,
but a crash that happens "when shard 1 applies its 40th op" reproduces
everywhere, every run.  This module defines that vocabulary: a
:class:`FaultPlan` is a seeded, serialisable bundle of
:class:`FaultSpec` entries, each pinned to a deterministic progress
point (a shard's op counter, or the server's response counter) rather
than to time.

Fault kinds
-----------
Worker-side (require ``workers=True``; applied inside the shard worker
process, see :func:`repro.service.sharding._shard_worker`):

* ``kill``        — the worker ``os._exit``\\ s immediately *before*
  applying op ``at`` (exercises supervised recovery);
* ``hang``        — the worker sleeps effectively forever before op
  ``at`` (exercises op timeouts and ``close()`` escalation);
* ``slow_batch``  — the worker sleeps ``delay_s`` before op ``at``
  (exercises latency-sensitive paths without killing anything).

Server-side (applied by :class:`repro.service.server.AdmissionServer`):

* ``drop_conn``   — the server closes the client connection instead of
  writing response number ``at`` (exercises client retry + server-side
  idempotency dedup: the dropped request *was* executed).

Replication-side (require ``workers=True`` and ``replicas >= 1``;
applied against the warm-standby machinery of
:mod:`repro.service.replication`):

* ``kill_standby`` — the standby worker of shard ``shard`` dies just
  before applying its op ``at`` (the primary notices on the next ship
  or at promotion time and spawns a replacement; ``incarnation``
  selects the standby *generation*: 0 = the initial standby, 1 = the
  first replacement, ...);
* ``drop_journal`` — the journal-shipping link of shard ``shard`` is
  silently severed before shipping committed op number ``at``, so the
  standby's high-water mark falls behind and a promotion must replay
  the gap from the primary's journal;
* ``kill`` with ``during=promotion`` — the standby dies at the start
  of promotion attempt number ``at`` (0 = the first), forcing the
  supervisor down the cold baseline+journal recovery path.

Worker faults carry an ``incarnation`` (default 0): a fault only fires
in that incarnation of the shard worker, so a supervisor-respawned
worker does not re-trip the same kill while replaying its journal.
Every fault fires at most once.

The plan serialises to/from a compact spec string (CLI ``serve
--faults`` / env ``REPRO_FAULTS``)::

    kill:shard=1,at=40;slow_batch:shard=0,at=10,delay=0.02;drop_conn:at=120

and to a JSON-able dict, so chaos runs are reproducible from a single
recorded line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Fault kinds applied inside a shard worker process.
WORKER_KINDS = ("kill", "hang", "slow_batch")

#: Fault kinds applied by the TCP server.
SERVER_KINDS = ("drop_conn",)

#: Fault kinds applied against the replication path (warm standbys).
REPLICA_KINDS = ("kill_standby", "drop_journal")

KINDS = WORKER_KINDS + SERVER_KINDS + REPLICA_KINDS

#: The only ``during=`` phase understood today.
DURING_PROMOTION = "promotion"


class FaultError(ValueError):
    """A fault spec is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault (see module docstring).

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    at:
        Progress point the fault fires at: the shard worker's 0-based
        op counter for worker kinds, the server's 0-based response
        counter for ``drop_conn``.
    shard:
        Target shard id (required for worker kinds, meaningless for
        server kinds).
    delay_s:
        Sleep length for ``slow_batch``.
    incarnation:
        Worker incarnation the fault fires in (0 = the initial worker;
        a supervisor respawn increments it).  For ``kill_standby`` it
        selects the standby *generation* instead (0 = the initial
        standby, 1 = the first replacement, ...).
    during:
        Optional phase qualifier.  ``kill`` with ``during=promotion``
        fires at the start of promotion attempt ``at`` instead of at a
        worker op index.
    """

    kind: str
    at: int = 0
    shard: int | None = None
    delay_s: float = 0.0
    incarnation: int = 0
    during: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {list(KINDS)}"
            )
        if self.at < 0:
            raise FaultError(f"fault 'at' must be >= 0, got {self.at}")
        if (
            self.kind in WORKER_KINDS or self.kind in REPLICA_KINDS
        ) and self.shard is None:
            raise FaultError(f"{self.kind} fault needs shard=<id>")
        if self.kind == "slow_batch" and self.delay_s <= 0:
            raise FaultError("slow_batch fault needs delay=<seconds> > 0")
        if self.during is not None:
            if self.kind != "kill":
                raise FaultError(
                    f"'during' only qualifies kill faults, not {self.kind!r}"
                )
            if self.during != DURING_PROMOTION:
                raise FaultError(
                    f"unknown 'during' phase {self.during!r}; expected "
                    f"{DURING_PROMOTION!r}"
                )

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.shard is not None:
            doc["shard"] = self.shard
        if self.delay_s:
            doc["delay_s"] = self.delay_s
        if self.incarnation:
            doc["incarnation"] = self.incarnation
        if self.during is not None:
            doc["during"] = self.during
        return doc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded bundle of deterministic faults."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    def worker_faults(
        self, shard: int | None = None, incarnation: int | None = None
    ) -> tuple[FaultSpec, ...]:
        """Worker-side faults, optionally filtered to one shard/incarnation.

        ``kill:during=promotion`` faults are *not* worker faults — they
        are applied by the supervisor at promotion time, never inside a
        worker's op loop.
        """
        return tuple(
            f
            for f in self.faults
            if f.kind in WORKER_KINDS
            and f.during is None
            and (shard is None or f.shard == shard)
            and (incarnation is None or f.incarnation == incarnation)
        )

    def server_faults(self) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind in SERVER_KINDS)

    def standby_faults(
        self, shard: int | None = None, generation: int | None = None
    ) -> tuple[FaultSpec, ...]:
        """``kill_standby`` faults for one shard's standby generation."""
        return tuple(
            f
            for f in self.faults
            if f.kind == "kill_standby"
            and (shard is None or f.shard == shard)
            and (generation is None or f.incarnation == generation)
        )

    def drop_journal_at(self, shard: int) -> int | None:
        """Earliest committed-op seq at which shard's ship link drops."""
        ats = [
            f.at
            for f in self.faults
            if f.kind == "drop_journal" and f.shard == shard
        ]
        return min(ats) if ats else None

    def promotion_faults(self, shard: int) -> tuple[FaultSpec, ...]:
        """``kill:during=promotion`` faults targeting ``shard``."""
        return tuple(
            f
            for f in self.faults
            if f.kind == "kill"
            and f.during == DURING_PROMOTION
            and f.shard == shard
        )

    def replication_faults(self) -> tuple[FaultSpec, ...]:
        """Every fault that targets the replication path."""
        return tuple(
            f
            for f in self.faults
            if f.kind in REPLICA_KINDS or f.during == DURING_PROMOTION
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        faults = tuple(
            FaultSpec(
                kind=str(f["kind"]),
                at=int(f.get("at", 0)),
                shard=None if f.get("shard") is None else int(f["shard"]),
                delay_s=float(f.get("delay_s", 0.0)),
                incarnation=int(f.get("incarnation", 0)),
                during=None if f.get("during") is None else str(f["during"]),
            )
            for f in doc.get("faults", [])
        )
        return cls(faults=faults, seed=int(doc.get("seed", 0)))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan | None":
        """Parse a compact spec string; ``None``/blank parses to None.

        Grammar: ``;``-separated entries, each ``kind:key=value,...``
        (keys: ``shard``, ``at``, ``delay``, ``incarnation``,
        ``during``) or the plan-level ``seed=N``.
        """
        if not text or not text.strip():
            return None
        faults: list[FaultSpec] = []
        seed = 0
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = _parse_int(entry[5:], "seed")
                continue
            kind, _, rest = entry.partition(":")
            kind = kind.strip()
            kwargs: dict[str, Any] = {}
            if rest.strip():
                for pair in rest.split(","):
                    key, eq, value = pair.partition("=")
                    key, value = key.strip(), value.strip()
                    if not eq or not value:
                        raise FaultError(
                            f"fault entry {entry!r}: expected key=value, "
                            f"got {pair!r}"
                        )
                    if key == "shard":
                        kwargs["shard"] = _parse_int(value, "shard")
                    elif key == "at":
                        kwargs["at"] = _parse_int(value, "at")
                    elif key == "delay":
                        try:
                            kwargs["delay_s"] = float(value)
                        except ValueError:
                            raise FaultError(
                                f"fault entry {entry!r}: bad delay {value!r}"
                            ) from None
                    elif key == "incarnation":
                        kwargs["incarnation"] = _parse_int(value, "incarnation")
                    elif key == "during":
                        kwargs["during"] = value
                    else:
                        raise FaultError(
                            f"fault entry {entry!r}: unknown key {key!r}"
                        )
            faults.append(FaultSpec(kind=kind, **kwargs))
        if not faults:
            return None
        return cls(faults=tuple(faults), seed=seed)


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise FaultError(f"bad {what} value {text!r}") from None


class WorkerFaults:
    """Per-worker fault application state (lives in the worker process).

    Indexes one incarnation's faults by op counter and applies them via
    :meth:`before_op`, called with the worker's monotone op index just
    before each op executes.  ``kill`` uses ``os._exit`` so the parent
    sees an abrupt pipe EOF, exactly like a real crash.
    """

    #: Exit code of an injected kill (visible in worker exitcodes).
    KILL_EXIT = 17

    #: "Forever" for hang faults — far beyond any test timeout.
    HANG_S = 3600.0

    def __init__(self, faults: Iterable[FaultSpec]):
        self._kill_at: set[int] = set()
        self._hang_at: set[int] = set()
        self._slow_at: dict[int, float] = {}
        for f in faults:
            if f.kind == "kill":
                self._kill_at.add(f.at)
            elif f.kind == "hang":
                self._hang_at.add(f.at)
            elif f.kind == "slow_batch":
                self._slow_at[f.at] = f.delay_s

    def __bool__(self) -> bool:
        return bool(self._kill_at or self._hang_at or self._slow_at)

    def before_op(self, op_index: int) -> None:
        import os
        import time

        if op_index in self._kill_at:
            os._exit(self.KILL_EXIT)
        if op_index in self._hang_at:
            time.sleep(self.HANG_S)
        delay = self._slow_at.get(op_index)
        if delay:
            time.sleep(delay)
