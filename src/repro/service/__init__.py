"""Online admission-control service: sharding, serving, replay, state.

The paper's closing claim — the holistic analysis "forms an admission
controller" (Sec. 3.5) — made concrete as a production-shaped serving
layer on top of :mod:`repro.core.admission`:

* :mod:`repro.service.protocol` — versioned JSON-lines request protocol
  (admit / release / query / stats / snapshot / metrics / health) with
  an error-code taxonomy, idempotency keys and per-request deadlines;
* :mod:`repro.service.sharding` — :class:`ShardedAdmissionService`:
  deterministic link-disjoint network shards, each owning its own
  controller (inline or worker-process backed), with two-phase accept
  for cross-shard flows, per-shard micro-batch coalescing, and a
  supervisor that respawns dead workers and restores exact state from
  baseline snapshots plus a bounded op journal;
* :mod:`repro.service.server` — the asyncio TCP front end
  (``repro.cli serve``) with load shedding, deadline enforcement and
  server-side idempotency dedup;
* :mod:`repro.service.replay` — scenario families x arrival processes
  -> reproducible request streams, with sharded / serial / over-the-
  wire drivers (``repro.cli replay``), the latter resilient via
  :mod:`repro.service.retry`;
* :mod:`repro.service.retry` — shared :class:`RetryPolicy` (timeouts,
  exponential backoff, deterministic jitter);
* :mod:`repro.service.faults` — seeded deterministic
  :class:`FaultPlan` (kill/hang/slow workers, drop connections, kill
  standbys / sever journal links / kill during promotion) so chaos
  runs replay identically everywhere;
* :mod:`repro.service.replication` — warm standby workers fed by the
  primary's op journal (ship-on-commit): zero-loss promotion on
  primary death, and the state-transfer recipe behind
  ``ShardedAdmissionService.rebalance`` (live shard-layout changes);
* :mod:`repro.service.state` — versioned snapshot/restore of a running
  service (byte-identical decisions on a replayed request log), with a
  restore-time shard-layout override equivalent to live rebalancing.
"""

from repro.service.faults import (
    FaultError,
    FaultPlan,
    FaultSpec,
)
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_UNAVAILABLE,
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    is_retryable,
    request_from_dict,
    request_to_dict,
    response_to_dict,
)
from repro.service.replay import (
    ARRIVALS,
    ReplaySummary,
    ReplayTrace,
    fetch_health_tcp,
    fetch_metrics_tcp,
    fetch_stats_tcp,
    load_trace,
    rebalance_tcp,
    replay_over_tcp,
    replay_serial,
    replay_service,
    replay_tcp,
    save_trace,
    trace_from_family,
    trace_from_scenario,
)
from repro.service.replication import StandbyReplica, reassign_shard_states
from repro.service.retry import ConnectError, RetryPolicy, connect_with_backoff
from repro.service.server import AdmissionServer, run_server
from repro.service.sharding import (
    ServiceDecision,
    ShardedAdmissionService,
    ShardRouter,
)
from repro.service.state import (
    STATE_VERSION,
    load_service_state,
    save_service_state,
    service_state_from_dict,
    service_state_to_dict,
)

__all__ = [
    "ARRIVALS",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_UNAVAILABLE",
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "RETRYABLE_CODES",
    "STATE_VERSION",
    "AdmissionServer",
    "ConnectError",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "ProtocolError",
    "ReplaySummary",
    "ReplayTrace",
    "Request",
    "RetryPolicy",
    "ServiceDecision",
    "ShardRouter",
    "ShardedAdmissionService",
    "StandbyReplica",
    "connect_with_backoff",
    "decode_line",
    "encode_line",
    "fetch_health_tcp",
    "fetch_metrics_tcp",
    "fetch_stats_tcp",
    "is_retryable",
    "load_service_state",
    "load_trace",
    "reassign_shard_states",
    "rebalance_tcp",
    "replay_over_tcp",
    "replay_serial",
    "replay_service",
    "replay_tcp",
    "request_from_dict",
    "request_to_dict",
    "response_to_dict",
    "run_server",
    "save_service_state",
    "save_trace",
    "service_state_from_dict",
    "service_state_to_dict",
    "trace_from_family",
    "trace_from_scenario",
]
