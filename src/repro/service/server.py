"""Asyncio TCP front end of the sharded admission service.

JSON-lines over TCP (see :mod:`repro.service.protocol`): every
connection writes one request per line and reads one response per
request, in order.  All connections feed a single dispatch queue; the
dispatcher drains it in **micro-batches** — whatever accumulated since
the last service call, up to ``batch_max``, after an optional
``batch_window_s`` coalescing pause — and hands each batch to
:meth:`ShardedAdmissionService.process_batch`, which fans shard-local
runs across the shard backends.  Bursts therefore amortise jitter-table
warm starts and (with worker-backed shards) ride N shards wide, while
a lone request still sees one-request latency.

The service call runs in a thread-pool executor so the event loop keeps
accepting connections and buffering requests during an analysis; the
dispatcher is the only thread touching the service, so no further
locking is needed.

Overload and failure behaviour (protocol v2):

* **Load shedding** — with ``max_queue > 0``, a request arriving while
  the dispatch queue is at or over the limit is answered immediately
  with ``overloaded`` + ``retry_after`` instead of being queued (the
  error still travels through the queue so per-connection response
  order is preserved).
* **Deadlines** — a request carrying ``deadline_s`` that is still
  queued when its deadline passes is answered ``deadline_exceeded``
  without touching the service.
* **Idempotency** — successful responses to requests carrying an
  ``idem`` key are cached (bounded LRU) and replayed for duplicates,
  so a client retrying an ``admit``/``release`` whose response was
  lost never double-applies it.  Duplicates *within* one batch are
  resolved to the first occurrence's response, which executes once.
* **Fault injection** — a :class:`~repro.service.faults.FaultPlan`'s
  ``drop_conn`` faults close the client connection in place of writing
  response number ``at`` (the request *was* executed), deterministically
  exercising the retry + idempotency path end-to-end.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro import telemetry as _telemetry
from repro.telemetry import tracing as _tracing
from repro.service.faults import FaultPlan
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    request_from_dict,
    response_to_dict,
)
from repro.service.sharding import ShardedAdmissionService


@dataclass
class _Pending:
    """One queued unit: a request, a parse error, a connection EOF, or
    a shutdown drain marker."""

    kind: str  # "req" | "eof" | "drain"
    writer: asyncio.StreamWriter | None
    request: Request | None = None
    request_id: Any = None
    error: str | None = None
    code: str | None = None
    retry_after: float | None = None
    #: Event-loop time the item entered the queue (deadline anchor).
    arrived: float = 0.0
    #: Resolved idempotency-cache hit (a complete response doc).
    cached: dict[str, Any] | None = field(default=None, repr=False)
    #: Batch index of an earlier in-batch item with the same idem key.
    dup_of: int | None = None
    #: Server-side tracing context (``{"id", "span", "parent"?}``);
    #: None when tracing is off.
    trace: dict[str, Any] | None = None
    #: Wall-clock arrival time (span start) when traced.
    t0: float = 0.0
    #: Set by the dispatcher once every item queued before this drain
    #: marker has been answered (graceful-shutdown barrier).
    done: "asyncio.Event | None" = None


class AdmissionServer:
    """One TCP listener in front of one service instance."""

    def __init__(
        self,
        service: ShardedAdmissionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 64,
        batch_window_s: float = 0.0,
        snapshot_dir: str | None = None,
        line_limit: int = 1 << 20,
        max_queue: int = 0,
        retry_after_s: float = 0.05,
        idem_cache: int = 4096,
        fault_plan: FaultPlan | None = None,
    ):
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        #: Maximum request-line length (StreamReader buffer limit).
        self.line_limit = line_limit
        self.service = service
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        #: Clients may only snapshot to files inside this directory
        #: (basename of the requested path); None disables file
        #: snapshots over the wire — inline snapshots always work.
        self.snapshot_dir = snapshot_dir
        #: Queue depth that triggers load shedding (0 = unbounded).
        self.max_queue = max_queue
        #: ``retry_after`` hint attached to shed responses.
        self.retry_after_s = retry_after_s
        self.requests_served = 0
        self.batches_dispatched = 0
        self.requests_shed = 0
        self.idem_hits = 0
        self.conns_dropped = 0
        self._idem_cache_max = idem_cache
        #: idem key -> successful response doc (without the "id").
        self._idem: OrderedDict[str, dict[str, Any]] = OrderedDict()
        #: Response counters the drop_conn faults key on.
        self._responses_sent = 0
        self._drop_at = (
            {f.at for f in fault_plan.server_faults()} if fault_plan else set()
        )
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        #: Writers of currently-connected clients (shutdown hangs up on
        #: whoever is left once the queue has drained).
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolving port 0) and start dispatching."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=self.line_limit
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def shutdown(self) -> None:
        """Graceful stop: refuse new connections, answer every request
        already queued (the in-flight batches drain through the service
        normally), then stop the dispatcher.  The FIFO queue makes the
        barrier exact: a drain marker enqueued after close trails every
        request the server ever accepted.  Clients that stay connected
        are hung up on *after* the drain — ``wait_closed`` would block
        on their live transports forever, so shutdown closes them
        itself once they have been answered."""
        if self._server is not None:
            # close() alone: stop accepting, but do not wait for the
            # still-connected clients wait_closed() would wait for.
            self._server.close()
        if self._dispatcher is not None and not self._dispatcher.done():
            drained = asyncio.Event()
            await self._queue.put(_Pending("drain", None, done=drained))
            await drained.wait()
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        await self.stop()

    # ------------------------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the stream limit: framing is lost,
                    # so answer with an ordered error and close.
                    await self._queue.put(
                        _Pending(
                            "req",
                            writer,
                            error=(
                                "request line exceeds "
                                f"{self.line_limit} bytes"
                            ),
                            code=ERR_BAD_REQUEST,
                        )
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                item = _Pending("req", writer, arrived=loop.time())
                try:
                    doc = decode_line(line)
                    item.request_id = doc.get("id")
                    item.request = request_from_dict(doc)
                except ProtocolError as exc:
                    item.error = str(exc)
                    item.code = ERR_BAD_REQUEST
                except Exception as exc:  # defensive: never drop the line
                    item.error = f"malformed request: {exc}"
                    item.code = ERR_BAD_REQUEST
                tr = _tracing.TRACER
                if tr is not None and item.error is None:
                    # Adopt the client's trace id (mint one when absent)
                    # and rewrite the request so the sharded service sees
                    # this server span as the parent of its shard spans.
                    base = item.request.trace if item.request else None
                    tid = (base or {}).get("id") or tr.mint_trace()
                    item.trace = {
                        "id": tid,
                        "span": tr.mint_span(),
                        "parent": (base or {}).get("span"),
                    }
                    item.t0 = time.time()
                    item.request = dataclasses.replace(
                        item.request,
                        trace={"id": tid, "span": item.trace["span"]},
                    )
                if (
                    item.error is None
                    and self.max_queue > 0
                    and self._queue.qsize() >= self.max_queue
                ):
                    # Shed — but *through* the queue, so this connection's
                    # responses still come back in request order.
                    item.error = (
                        f"service overloaded (queue >= {self.max_queue})"
                    )
                    item.code = ERR_OVERLOADED
                    item.retry_after = self.retry_after_s
                    self.requests_shed += 1
                    _telemetry.add("service.server.sheds")
                await self._queue.put(item)
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
        finally:
            # A half-closing client (write side shut, still reading) must
            # get every response it is owed.  The queue is FIFO and this
            # marker trails all of the connection's requests, so the
            # dispatcher closes the writer only after answering them.
            self._writers.discard(writer)
            await self._queue.put(_Pending("eof", writer))

    def _gate_snapshot_path(self, item: _Pending) -> None:
        """Confine client-requested snapshot files to ``snapshot_dir``.

        A network client must not gain an arbitrary-file-write
        primitive: without a configured directory, file snapshots are
        refused (inline snapshots still work); with one, only the
        basename of the requested path is honoured, inside the
        directory.
        """
        if (
            item.kind != "req"
            or item.error is not None
            or item.request is None
            or item.request.op != "snapshot"
            or item.request.path is None
        ):
            return
        if self.snapshot_dir is None:
            item.error = (
                "file snapshots are disabled on this server (no snapshot "
                "directory configured); omit 'path' for an inline snapshot"
            )
            item.code = ERR_BAD_REQUEST
            return
        import dataclasses
        from pathlib import Path

        basename = Path(item.request.path).name
        if not basename:
            item.error = (
                f"snapshot path {item.request.path!r} has no file name"
            )
            item.code = ERR_BAD_REQUEST
            return
        item.request = dataclasses.replace(
            item.request, path=str(Path(self.snapshot_dir) / basename)
        )

    def _resolve_idem(self, batch: list[_Pending]) -> None:
        """Resolve idempotency-key duplicates before the service runs.

        A key already in the cache short-circuits to the cached doc; a
        key repeated within this batch executes once — later copies
        mirror the first occurrence's response.
        """
        first_seen: dict[str, int] = {}
        for idx, item in enumerate(batch):
            if (
                item.kind != "req"
                or item.error is not None
                or item.request is None
                or not item.request.idem
            ):
                continue
            key = item.request.idem
            hit = self._idem.get(key)
            if hit is not None:
                self._idem.move_to_end(key)
                item.cached = dict(hit)
                self.idem_hits += 1
                _telemetry.add("service.server.idem_hits")
            elif key in first_seen:
                item.dup_of = first_seen[key]
                self.idem_hits += 1
                _telemetry.add("service.server.idem_hits")
            else:
                first_seen[key] = idx

    def _idem_store(self, key: str, doc: dict[str, Any]) -> None:
        if not doc.get("ok"):
            # Only *successful* responses are replayable: a shed or
            # shard-down error must not mask a later real retry.
            return
        stored = dict(doc)
        stored.pop("id", None)
        self._idem[key] = stored
        self._idem.move_to_end(key)
        while len(self._idem) > self._idem_cache_max:
            self._idem.popitem(last=False)

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            if self.batch_window_s > 0:
                await asyncio.sleep(self.batch_window_s)
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            now = loop.time()
            for item in batch:
                self._gate_snapshot_path(item)
                if (
                    item.kind == "req"
                    and item.error is None
                    and item.request is not None
                    and item.request.deadline_s is not None
                    and now - item.arrived > item.request.deadline_s
                ):
                    item.error = (
                        f"deadline of {item.request.deadline_s}s passed "
                        "while queued"
                    )
                    item.code = ERR_DEADLINE
                    _telemetry.add("service.server.deadline_sheds")
            self._resolve_idem(batch)
            requests = [
                item.request
                for item in batch
                if item.kind == "req"
                and item.error is None
                and item.cached is None
                and item.dup_of is None
            ]
            batch_error: str | None = None
            payloads: list = []
            if requests:
                try:
                    payloads = await loop.run_in_executor(
                        None, self.service.process_batch, requests
                    )
                except Exception as exc:
                    # A failing batch must never kill the dispatcher —
                    # answer its requests with an error and keep serving
                    # every other connection.
                    batch_error = f"internal error: {exc}"
            self.batches_dispatched += 1
            self.requests_served += sum(
                1 for item in batch if item.kind == "req"
            )
            payload_iter = iter(payloads)
            #: batch index -> emitted response doc (dup_of resolution).
            docs: dict[int, dict[str, Any]] = {}
            writers = []
            closing = []
            drains: list[asyncio.Event] = []
            dropped: set[int] = set()  # id()s of writers killed this batch
            for idx, item in enumerate(batch):
                if item.kind == "drain":
                    if item.done is not None:
                        drains.append(item.done)
                    continue
                if item.kind == "eof":
                    closing.append(item.writer)
                    continue
                doc = self._build_response(item, idx, docs, payload_iter,
                                           batch_error)
                docs[idx] = doc
                if (
                    item.request is not None
                    and item.request.idem
                    and item.cached is None
                    and item.dup_of is None
                ):
                    self._idem_store(item.request.idem, doc)
                response_no = self._responses_sent
                self._responses_sent += 1
                if id(item.writer) in dropped:
                    # The connection died earlier in this batch; every
                    # later response to it is lost too, like a real drop.
                    continue
                if response_no in self._drop_at:
                    # Injected drop: the op executed, the reply is lost
                    # — exactly the failure idempotent retries exist for.
                    self._drop_at.discard(response_no)
                    self.conns_dropped += 1
                    _telemetry.add("service.server.dropped_conns")
                    dropped.add(id(item.writer))
                    closing.append(item.writer)
                    continue
                try:
                    item.writer.write(encode_line(doc))
                    writers.append(item.writer)
                except (ConnectionError, OSError):  # pragma: no cover
                    continue
            for writer in dict.fromkeys(writers):
                try:
                    await writer.drain()
                except (ConnectionError, OSError):  # pragma: no cover
                    continue
            for writer in dict.fromkeys(closing):
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    continue
            # Only now — every response in (and before) this batch is
            # written — release graceful-shutdown waiters.
            for event in drains:
                event.set()

    def _build_response(
        self,
        item: _Pending,
        idx: int,
        docs: dict[int, dict[str, Any]],
        payload_iter,
        batch_error: str | None,
    ) -> dict[str, Any]:
        doc = self._response_doc(item, idx, docs, payload_iter, batch_error)
        tr = _tracing.TRACER
        if tr is not None and item.trace is not None:
            op = item.request.op if item.request is not None else "error"
            tags: dict[str, float] | None = None
            if not doc.get("ok", False):
                tags = {"error": 1.0}
            tr.record(
                name=f"server.{op}",
                trace=item.trace["id"],
                span=item.trace["span"],
                parent=item.trace.get("parent"),
                ts=item.t0,
                dur=time.time() - item.t0,
                tags=tags,
            )
            # Echo the server-side context (overwriting a stale one on
            # idem-cached docs) so clients correlate responses to traces.
            doc["trace"] = {"id": item.trace["id"], "span": item.trace["span"]}
        return doc

    def _response_doc(
        self,
        item: _Pending,
        idx: int,
        docs: dict[int, dict[str, Any]],
        payload_iter,
        batch_error: str | None,
    ) -> dict[str, Any]:
        if item.cached is not None:
            doc = dict(item.cached)
            doc["id"] = item.request_id
            return doc
        if item.dup_of is not None:
            doc = dict(docs[item.dup_of])
            doc["id"] = item.request_id
            return doc
        error, code, retry_after = item.error, item.code, item.retry_after
        if error is None and batch_error is not None:
            error, code = batch_error, ERR_INTERNAL
        if error is not None:
            return response_to_dict(
                item.request_id, ok=False, error=error, code=code,
                retry_after=retry_after,
            )
        payload = dict(next(payload_iter))
        error = payload.pop("error", None)
        code = payload.pop("code", None) if error is not None else None
        if item.request is not None and item.request.op == "stats":
            payload["server_requests"] = self.requests_served
            payload["server_batches"] = self.batches_dispatched
            payload["server_sheds"] = self.requests_shed
            payload["server_idem_hits"] = self.idem_hits
        elif item.request is not None and item.request.op == "health":
            payload["server"] = {
                "queue_depth": self._queue.qsize(),
                "max_queue": self.max_queue,
                "sheds": self.requests_shed,
                "idem_hits": self.idem_hits,
                "conns_dropped": self.conns_dropped,
            }
        return response_to_dict(
            item.request_id, payload, ok=error is None, error=error,
            code=code,
        )


def run_server(
    service: ShardedAdmissionService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_max: int = 64,
    batch_window_s: float = 0.0,
    snapshot_dir: str | None = None,
    max_queue: int = 0,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Blocking entry point (the ``repro.cli serve`` body).

    Prints one ``listening on HOST:PORT`` line once bound — scripts
    (and the CI smoke jobs) key on it — and serves until interrupted.
    SIGTERM / SIGINT (Ctrl-C) trigger a **graceful** shutdown: the
    listener closes, every already-queued request is answered, the
    shards drain their journal-ship links and write clean-shutdown
    flight records for every live incarnation, and only then do the
    worker processes come down.
    """

    async def _amain() -> None:
        import signal

        server = AdmissionServer(
            service,
            host=host,
            port=port,
            batch_max=batch_max,
            batch_window_s=batch_window_s,
            snapshot_dir=snapshot_dir,
            max_queue=max_queue,
            fault_plan=fault_plan,
        )
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        hooked: list[int] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, interrupted.set)
                hooked.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without loop signal support: KI path below
        serving = asyncio.ensure_future(server.serve_forever())
        stopper = asyncio.ensure_future(interrupted.wait())
        try:
            await asyncio.wait(
                {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (serving, stopper):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            await server.shutdown()
            for sig in hooked:
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - no signal handler
        pass
    finally:
        # Graceful service teardown: shards finish queued ops, standbys
        # drain, every live incarnation leaves a final flight record.
        service.shutdown()
