"""Asyncio TCP front end of the sharded admission service.

JSON-lines over TCP (see :mod:`repro.service.protocol`): every
connection writes one request per line and reads one response per
request, in order.  All connections feed a single dispatch queue; the
dispatcher drains it in **micro-batches** — whatever accumulated since
the last service call, up to ``batch_max``, after an optional
``batch_window_s`` coalescing pause — and hands each batch to
:meth:`ShardedAdmissionService.process_batch`, which fans shard-local
runs across the shard backends.  Bursts therefore amortise jitter-table
warm starts and (with worker-backed shards) ride N shards wide, while
a lone request still sees one-request latency.

The service call runs in a thread-pool executor so the event loop keeps
accepting connections and buffering requests during an analysis; the
dispatcher is the only thread touching the service, so no further
locking is needed.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service.protocol import (
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    request_from_dict,
    response_to_dict,
)
from repro.service.sharding import ShardedAdmissionService


class AdmissionServer:
    """One TCP listener in front of one service instance."""

    def __init__(
        self,
        service: ShardedAdmissionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 64,
        batch_window_s: float = 0.0,
        snapshot_dir: str | None = None,
        line_limit: int = 1 << 20,
    ):
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        #: Maximum request-line length (StreamReader buffer limit).
        self.line_limit = line_limit
        self.service = service
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        #: Clients may only snapshot to files inside this directory
        #: (basename of the requested path); None disables file
        #: snapshots over the wire — inline snapshots always work.
        self.snapshot_dir = snapshot_dir
        self.requests_served = 0
        self.batches_dispatched = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolving port 0) and start dispatching."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=self.line_limit
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the stream limit: framing is lost,
                    # so answer with an ordered error and close.
                    await self._queue.put(
                        (
                            "req",
                            writer,
                            None,
                            None,
                            f"request line exceeds {self.line_limit} bytes",
                        )
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                request: Request | None = None
                request_id: Any = None
                error: str | None = None
                try:
                    doc = decode_line(line)
                    request_id = doc.get("id")
                    request = request_from_dict(doc)
                except ProtocolError as exc:
                    error = str(exc)
                except Exception as exc:  # defensive: never drop the line
                    error = f"malformed request: {exc}"
                await self._queue.put(("req", writer, request, request_id, error))
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
        finally:
            # A half-closing client (write side shut, still reading) must
            # get every response it is owed.  The queue is FIFO and this
            # marker trails all of the connection's requests, so the
            # dispatcher closes the writer only after answering them.
            await self._queue.put(("eof", writer, None, None, None))

    def _gate_snapshot_path(self, item: tuple) -> tuple:
        """Confine client-requested snapshot files to ``snapshot_dir``.

        A network client must not gain an arbitrary-file-write
        primitive: without a configured directory, file snapshots are
        refused (inline snapshots still work); with one, only the
        basename of the requested path is honoured, inside the
        directory.
        """
        kind, writer, request, request_id, error = item
        if (
            kind != "req"
            or error is not None
            or request.op != "snapshot"
            or request.path is None
        ):
            return item
        if self.snapshot_dir is None:
            return (
                kind,
                writer,
                request,
                request_id,
                "file snapshots are disabled on this server (no snapshot "
                "directory configured); omit 'path' for an inline snapshot",
            )
        import dataclasses
        from pathlib import Path

        basename = Path(request.path).name
        if not basename:
            return (
                kind,
                writer,
                request,
                request_id,
                f"snapshot path {request.path!r} has no file name",
            )
        gated = str(Path(self.snapshot_dir) / basename)
        return (
            kind,
            writer,
            dataclasses.replace(request, path=gated),
            request_id,
            None,
        )

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            if self.batch_window_s > 0:
                await asyncio.sleep(self.batch_window_s)
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            batch = [self._gate_snapshot_path(item) for item in batch]
            requests = [
                req
                for (kind, _, req, _, err) in batch
                if kind == "req" and err is None
            ]
            batch_error: str | None = None
            payloads: list = []
            if requests:
                try:
                    payloads = await loop.run_in_executor(
                        None, self.service.process_batch, requests
                    )
                except Exception as exc:
                    # A failing batch must never kill the dispatcher —
                    # answer its requests with an error and keep serving
                    # every other connection.
                    batch_error = f"internal error: {exc}"
            self.batches_dispatched += 1
            self.requests_served += sum(
                1 for (kind, *_rest) in batch if kind == "req"
            )
            payload_iter = iter(payloads)
            writers = []
            closing = []
            for kind, writer, request, request_id, error in batch:
                if kind == "eof":
                    closing.append(writer)
                    continue
                if error is None and batch_error is not None:
                    error = batch_error
                if error is not None:
                    doc = response_to_dict(request_id, ok=False, error=error)
                else:
                    payload = dict(next(payload_iter))
                    error = payload.pop("error", None)
                    if request.op == "stats":
                        payload["server_requests"] = self.requests_served
                        payload["server_batches"] = self.batches_dispatched
                    doc = response_to_dict(
                        request_id, payload, ok=error is None, error=error
                    )
                try:
                    writer.write(encode_line(doc))
                    writers.append(writer)
                except (ConnectionError, OSError):  # pragma: no cover
                    continue
            for writer in dict.fromkeys(writers):
                try:
                    await writer.drain()
                except (ConnectionError, OSError):  # pragma: no cover
                    continue
            for writer in closing:
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    continue


def run_server(
    service: ShardedAdmissionService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_max: int = 64,
    batch_window_s: float = 0.0,
    snapshot_dir: str | None = None,
) -> None:
    """Blocking entry point (the ``repro.cli serve`` body).

    Prints one ``listening on HOST:PORT`` line once bound — scripts
    (and the CI smoke job) key on it — and serves until interrupted.
    """

    async def _amain() -> None:
        server = AdmissionServer(
            service,
            host=host,
            port=port,
            batch_max=batch_max,
            batch_window_s=batch_window_s,
            snapshot_dir=snapshot_dir,
        )
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - operator Ctrl-C
        pass
    finally:
        service.close()
