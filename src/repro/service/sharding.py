"""Sharded online admission control.

The serial :class:`~repro.core.admission.AdmissionController` re-runs
the holistic analysis per request, so its throughput is bounded by one
core.  This module partitions the *network* into link-disjoint shards —
every directed link is owned by exactly one shard — and gives each
shard its own controller, so requests touching different shards are
independent and can be served in parallel.

Link ownership follows switch ownership: each switch is assigned to a
shard (deterministically — a SHA-256 hash of the switch name, or an
explicit ``shard_map``), a host↔switch link belongs to its switch's
shard, a switch↔switch link to its lexicographically smaller switch's
shard, and the rare switchless link hashes its canonical endpoint pair.
The assignment is a pure function of the topology and the shard count:
two routers built from the same network agree bit for bit, across
processes and machines (regular ``hash()`` is salted per process and
would not).

Shard-local flows — every link of the route in one shard — are admitted
by that shard's controller alone.  On a trace of shard-local requests
the shard sees exactly the op subsequence a serial controller would,
in order, so its decisions are **identical to the serial controller's**
(the tier-1 parity tests assert this).

Flows crossing shards use a *two-phase accept*: the flow is tentatively
requested on every shard its route touches (ascending shard id); if any
shard rejects, the tentative accepts are rolled back and the request is
rejected.  Each touched shard checks the flow against every flow it
shares a link with, but jitter a flow accumulates in one shard is not
propagated into the next shard's analysis — cross-shard decisions are
therefore an approximation of the global holistic fixed point (flagged
``cross_shard=True`` on the decision), which is the price of
shard-parallel serving.  Workloads needing exact cross-shard decisions
run with ``n_shards=1``.

Batching: :meth:`ShardedAdmissionService.process_batch` takes a slice
of protocol requests and coalesces consecutive shard-local operations
into per-shard micro-batches.  With process-backed shards
(``workers=True``) the micro-batches of one run are dispatched to all
shard workers before any reply is awaited, so a burst spanning N shards
is served N-wide; each shard drains its sub-batch over a warm
controller (shared demand caches, jitter warm starts), which is what
amortises the per-request fixed-point cost.  Results are reassembled in
submission order — batched decisions are identical to one-at-a-time
decisions by construction.

Fault tolerance: with ``supervise=True`` (the default) a worker-backed
shard that dies is respawned and its **exact** pre-crash state rebuilt
from a baseline snapshot (``export_state``) plus a bounded append-only
**op journal** of committed mutations — accepted admits and successful
releases, the only ops that change controller state (a rejected admit
discards its tentative context, and queries are pure).  The in-flight
batch the crash interrupted is then re-applied on the recovered worker,
so its payloads are exactly the uninterrupted run's payloads: recovery
is decision-parity-preserving, and the tier-1 fault tests assert
byte-identical final state against a fault-free run.  The journal is
compacted into a fresh baseline whenever it outgrows
``journal_limit``, bounding both replay time and memory.  After
``max_restarts`` failed recoveries the shard degrades permanently to
``shard_unavailable`` error payloads, exactly like the unsupervised
path.  Deterministic faults (:mod:`repro.service.faults`) are applied
inside the worker, keyed to its op counter and incarnation, so crash
scenarios replay identically on every run.

Replication: with ``replicas=1`` (worker-backed, supervised) each
shard additionally owns a :class:`~repro.service.replication.
StandbyReplica` — a warm standby worker fed every committed op as it
is journaled (ship-on-commit with batched acks and a high-water mark).
A dying primary is then *promoted over* instead of cold-restarted: the
standby replays only the ops past its high-water mark, re-runs the
interrupted batch, and becomes the new primary while a replacement
standby catches up from the current recipe in the background.  Cold
recovery remains the fallback whenever the standby is unusable (dead,
wedged, or compaction outran a severed ship link).  Failovers never
burn the ``max_restarts`` budget — only cold restores do.  The same
snapshot + catch-up machinery backs
:meth:`ShardedAdmissionService.rebalance`: live re-sharding that cuts
over atomically between batches.
"""

from __future__ import annotations

import hashlib
import signal
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.core.admission import AdmissionController
from repro.telemetry import tracing as _tracing
from repro.core.context import AnalysisOptions
from repro.model.flow import Flow
from repro.model.network import Network
from repro.service.faults import FaultPlan, FaultSpec, WorkerFaults
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_UNAVAILABLE,
    Request,
)
from repro.service.replication import StandbyReplica, reassign_shard_states
from repro.util.mp import mp_context


def _stable_hash(text: str) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class ShardRouter:
    """Deterministic link → shard assignment (see module docstring)."""

    def __init__(
        self,
        network: Network,
        n_shards: int,
        *,
        shard_map: Mapping[str, int] | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        remaining = dict(shard_map or {})
        self._switch_shard: dict[str, int] = {}
        for node in network.nodes():
            if not node.is_switch:
                continue
            if node.name in remaining:
                sid = int(remaining.pop(node.name))
                if not 0 <= sid < n_shards:
                    raise ValueError(
                        f"shard_map[{node.name!r}]={sid} out of range "
                        f"for {n_shards} shard(s)"
                    )
            else:
                sid = _stable_hash(f"switch:{node.name}") % n_shards
            self._switch_shard[node.name] = sid
        if remaining:
            raise ValueError(
                f"shard_map names unknown switches: {sorted(remaining)}"
            )
        self._link_shard: dict[tuple[str, str], int] = {}
        for link in network.links():
            self._link_shard[(link.src, link.dst)] = self._assign(
                link.src, link.dst
            )

    def _assign(self, a: str, b: str) -> int:
        sa = self._switch_shard.get(a)
        sb = self._switch_shard.get(b)
        if sa is not None and sb is not None:
            return sa if a <= b else sb
        if sa is not None:
            return sa
        if sb is not None:
            return sb
        lo, hi = sorted((a, b))
        return _stable_hash(f"link:{lo}|{hi}") % self.n_shards

    # ------------------------------------------------------------------
    def shard_of_switch(self, name: str) -> int:
        try:
            return self._switch_shard[name]
        except KeyError:
            raise KeyError(f"{name!r} is not a switch of this network") from None

    def shard_of_link(self, src: str, dst: str) -> int:
        try:
            return self._link_shard[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r}->{dst!r}") from None

    def shards_for_route(self, route: Sequence[str]) -> tuple[int, ...]:
        """Sorted shard ids a route's links touch."""
        return tuple(
            sorted({self.shard_of_link(a, b) for a, b in zip(route, route[1:])})
        )

    def shards_for_flow(self, flow: Flow) -> tuple[int, ...]:
        return self.shards_for_route(flow.route)

    def assignment(self) -> dict[str, int]:
        """Copy of the switch → shard map (stats / state documents)."""
        return dict(self._switch_shard)


# ----------------------------------------------------------------------
# Shard backends
# ----------------------------------------------------------------------
#: A shard op: ("request", Flow) | ("release", name) | ("query", name).
ShardOp = tuple


def _apply_op(
    ctrl: AdmissionController, op: ShardOp, shard_id: int = 0
) -> dict[str, Any]:
    """Execute one op on a shard's controller; errors become payloads
    (a shard worker must survive bad requests)."""
    kind = op[0]
    try:
        if kind == "request":
            reg = _telemetry.REGISTRY
            if reg is None:
                decision = ctrl.request(op[1])
            else:
                start = time.perf_counter()
                decision = ctrl.request(op[1])
                reg.observe(
                    f"service.shard.{shard_id}.admit_s",
                    time.perf_counter() - start,
                )
            return {"accepted": decision.accepted, "reason": decision.reason}
        if kind == "release":
            ctrl.release(op[1])
            return {"released": True}
        if kind == "query":
            name = op[1]
            admitted = any(f.name == name for f in ctrl.admitted_flows)
            out: dict[str, Any] = {"admitted": admitted}
            if admitted and ctrl.last_analysis is not None:
                out["worst_response"] = ctrl.last_analysis.result(
                    name
                ).worst_response
            return out
        return {"error": f"unknown shard op {kind!r}", "code": ERR_BAD_REQUEST}
    except (KeyError, ValueError) as exc:
        return {"error": str(exc), "code": ERR_BAD_REQUEST}


def _apply_traced(
    ctrl: AdmissionController,
    op: ShardOp,
    shard_id: int,
    ctx: Mapping[str, Any] | None,
) -> dict[str, Any]:
    """Like :func:`_apply_op`, under a ``shard.<kind>`` tracing span
    when a trace context travelled with the op."""
    tr = _tracing.TRACER
    if tr is None or ctx is None:
        return _apply_op(ctrl, op, shard_id)
    with tr.span(f"shard.{op[0]}", trace=ctx):
        return _apply_op(ctrl, op, shard_id)


class _InlineShard:
    """In-process shard: the reference (serial) backend."""

    def __init__(
        self,
        network: Network,
        options: AnalysisOptions | None,
        *,
        fast_reject: bool,
        warm_start: bool,
        shard_id: int = 0,
    ):
        self.shard_id = shard_id
        self._ctrl = AdmissionController(
            network, options, fast_reject=fast_reject, warm_start=warm_start
        )

    def send_batch(
        self,
        ops: Sequence[ShardOp],
        traces: Sequence[Mapping[str, Any] | None] | None = None,
    ) -> None:
        if traces is None:
            self._pending = [
                _apply_op(self._ctrl, op, self.shard_id) for op in ops
            ]
        else:
            self._pending = [
                _apply_traced(self._ctrl, op, self.shard_id, ctx)
                for op, ctx in zip(ops, traces)
            ]

    def recv_batch(self) -> list[dict[str, Any]]:
        out, self._pending = self._pending, None
        return out

    def begin_export(self) -> None:
        pass

    def finish_export(self) -> tuple[tuple[Flow, ...], dict]:
        return self._ctrl.export_state()

    def restore(self, flows: Sequence[Flow], jitters: Mapping) -> None:
        self._ctrl = AdmissionController.restore(
            self._ctrl.network,
            self._ctrl.options,
            flows=flows,
            jitters=jitters,
            fast_reject=self._ctrl.fast_reject,
            warm_start=self._ctrl.warm_start,
        )

    def telemetry_snapshot(self) -> dict[str, Any] | None:
        # Inline shards record straight into the service process's own
        # registry: nothing separate to collect (returning a snapshot
        # here would double-count on merge).
        return None

    def trace_snapshot(self) -> list[dict[str, Any]] | None:
        # Same story for spans: inline shards record into the service
        # process's own tracer ring.
        return None

    def health(self) -> dict[str, Any]:
        return {
            "backend": "inline",
            "alive": True,
            "failed": False,
            "supervised": False,
            "restarts": 0,
            "journal_len": 0,
            "recovery_s_total": 0.0,
            "replicas": 0,
            "standby_alive": False,
            "replication_lag_ops": 0,
            "failovers": 0,
            "failover_s_total": 0.0,
            "cold_restores": 0,
        }

    def close(self) -> None:
        pass


def _shard_worker(
    conn, network, options, fast_reject, warm_start, shard_id=0,
    telemetry_on=False, faults: Sequence[FaultSpec] = (),
    tracing_on=False, incarnation=0,
) -> None:
    """Process body of one shard: a controller behind a message pipe.

    ``faults`` are this incarnation's injected faults (already filtered
    by shard and incarnation), applied against a monotone op counter
    just before each op executes — so a ``kill`` interrupts a batch
    mid-way exactly like a real crash (abrupt pipe EOF, no reply).

    With ``tracing_on``, ops whose batch carried a trace context are
    executed under ``shard.<kind>`` spans recorded into this worker's
    own ring buffer (labelled with its shard id and incarnation — the
    Chrome-export track identity); the parent drains it with a
    ``("trace",)`` message.
    """
    # Workers forked while the asyncio front end is live inherit its
    # signal wakeup fd and Python-level handlers.  Left in place, a
    # SIGTERM aimed at *this child* (standby teardown, rebalance close)
    # would write into the shared wakeup socketpair and the parent's
    # loop would read it as its own shutdown request.  Detach before
    # serving; SIGINT is ignored so a terminal Ctrl-C reaches only the
    # front end, which drains in-flight batches and closes us cleanly.
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    if telemetry_on:
        # Fork inherits the parent's registry *contents* too; start
        # from a clean one so the parent's pre-fork counts are not
        # re-merged when this worker's snapshot is collected.
        _telemetry.enable(_telemetry.Registry())
    if tracing_on:
        # Same reasoning for the span ring: a fresh, worker-labelled
        # tracer so parent spans are never drained twice.
        _tracing.enable_tracing(
            _tracing.Tracer(proc=f"shard{shard_id}", incarnation=incarnation)
        )
    ctrl = AdmissionController(
        network, options, fast_reject=fast_reject, warm_start=warm_start
    )
    injected = WorkerFaults(faults) if faults else None
    n_ops = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        kind = msg[0]
        if kind == "batch":
            traces = msg[2] if len(msg) > 2 else None
            payloads = []
            for i, op in enumerate(msg[1]):
                if injected is not None:
                    injected.before_op(n_ops)
                n_ops += 1
                ctx = traces[i] if traces is not None else None
                payloads.append(_apply_traced(ctrl, op, shard_id, ctx))
            if traces is not None:
                # Traced replies piggyback the ring drain so the parent
                # accumulates this incarnation's spans continuously —
                # a later kill can only lose the current batch's spans,
                # and every incarnation that served a batch gets a track
                # in the export.
                tr = _tracing.TRACER
                conn.send((payloads, tr.drain() if tr is not None else []))
            else:
                conn.send(payloads)
        elif kind == "export":
            conn.send(ctrl.export_state())
        elif kind == "telemetry":
            reg = _telemetry.REGISTRY
            conn.send(reg.snapshot() if reg is not None else None)
        elif kind == "trace":
            tr = _tracing.TRACER
            conn.send(tr.drain() if tr is not None else None)
        elif kind == "restore":
            ctrl = AdmissionController.restore(
                network,
                options,
                flows=msg[1],
                jitters=msg[2],
                fast_reject=fast_reject,
                warm_start=warm_start,
            )
            conn.send(True)
        elif kind == "close":
            conn.send(True)
            return
        else:  # pragma: no cover - defensive
            conn.send({"error": f"unknown shard message {kind!r}"})


class _ProcessShard:
    """Process-backed shard: real multi-core parallelism + supervision.

    ``send_batch``/``recv_batch`` are split so the service can dispatch
    one micro-batch to *every* shard before collecting any reply —
    that's where the shard-parallel speedup comes from.

    A dying worker must never desync the request/reply pairing.  With
    ``supervise=False`` every pipe failure marks the shard dead, pending
    ops are answered with error payloads, and the connection is never
    read again (so a stale buffered reply can never be mispaired with a
    later exchange).  With ``supervise=True`` (the default) a failure
    instead triggers :meth:`_recover`: the dead worker is torn down, a
    fresh incarnation is spawned, its state is rebuilt exactly from the
    baseline snapshot plus the op journal, and the interrupted exchange
    is re-run on it — the caller never sees the crash.  Only after
    ``max_restarts`` consecutive failed recoveries does the shard
    degrade permanently.

    ``op_timeout`` (seconds, optional) bounds every reply wait via
    ``Connection.poll``; a wedged-but-alive worker (e.g. an injected
    ``hang`` fault) then times out and is recovered like a crash.
    """

    DEAD_ERROR = "shard worker is not running"

    def __init__(
        self,
        network: Network,
        options: AnalysisOptions | None,
        *,
        fast_reject: bool,
        warm_start: bool,
        shard_id: int = 0,
        supervise: bool = True,
        max_restarts: int = 5,
        journal_limit: int = 256,
        fault_plan: FaultPlan | None = None,
        op_timeout: float | None = None,
        close_timeout: float = 5.0,
        flight_dir: str | None = None,
        replicas: int = 0,
    ):
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if journal_limit < 1:
            raise ValueError("journal_limit must be >= 1")
        if replicas not in (0, 1):
            raise ValueError("replicas must be 0 or 1 (one warm standby)")
        if replicas and not supervise:
            raise ValueError("replicas require supervise=True")
        self.shard_id = shard_id
        self._worker_args = (network, options, fast_reject, warm_start)
        self._supervise = bool(supervise)
        self._max_restarts = max_restarts
        self._journal_limit = journal_limit
        self._fault_plan = fault_plan
        self._op_timeout = op_timeout
        self._close_timeout = close_timeout
        #: Directory for post-mortem flight records (None disables).
        self._flight_dir = flight_dir
        self._incarnation = 0
        #: Monotone incarnation allocator: every spawned worker —
        #: primary respawn or standby — takes the next number, so
        #: telemetry/trace track identities never collide.
        self._incarnations = 0
        self._restarts = 0
        self._recovery_s_total = 0.0
        #: Recovery recipe: state snapshot to restore first (None = a
        #: fresh controller) ...
        self._baseline: tuple[tuple[Flow, ...], dict] | None = None
        #: ... then this journal of committed state-changing ops
        #: (accepted admits, successful releases), replayed in order.
        self._journal: list[ShardOp] = []
        #: Absolute committed-op sequence accounting: ``_seq`` counts
        #: every op ever committed, the journal covers
        #: ``[_journal_base, _seq)`` (the baseline covers the rest).
        self._seq = 0
        self._journal_base = 0
        self._replicas = int(replicas)
        self._standby: StandbyReplica | None = None
        self._standby_generation = 0
        self._failovers = 0
        self._failover_s_total = 0.0
        self._promotion_attempts = 0
        self._dead = False
        self._pending_ops: list[ShardOp] | None = None
        self._pending_traces: list | None = None
        #: Last successfully polled worker registry snapshot — folded
        #: into ``_retired`` when that incarnation dies, so merged
        #: telemetry never regresses below what a client already saw.
        self._last_snapshot: dict[str, Any] | None = None
        self._retired: _telemetry.Registry | None = None
        self._spawn()
        if self._replicas:
            self._spawn_standby()

    # -- lifecycle ------------------------------------------------------
    def _spawn(self) -> None:
        ctx = mp_context()
        self._conn, child = ctx.Pipe()
        faults: tuple[FaultSpec, ...] = ()
        if self._fault_plan is not None:
            faults = self._fault_plan.worker_faults(
                shard=self.shard_id, incarnation=self._incarnation
            )
        self._proc = ctx.Process(
            target=_shard_worker,
            args=(
                child, *self._worker_args, self.shard_id,
                _telemetry.enabled(), faults,
                _tracing.tracing_enabled(), self._incarnation,
            ),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def _next_incarnation(self) -> int:
        self._incarnations += 1
        return self._incarnations

    def _spawn_standby(self) -> None:
        """Spawn a warm standby and start its background catch-up from
        the current recovery recipe (non-blocking: the restore/replay
        acks drain lazily while the primary keeps serving)."""
        if not self._replicas or self._dead:
            return
        generation = self._standby_generation
        self._standby_generation += 1
        standby = StandbyReplica(
            self._worker_args,
            shard_id=self.shard_id,
            incarnation=self._next_incarnation(),
            generation=generation,
            fault_plan=self._fault_plan,
            op_timeout=self._op_timeout,
        )
        standby.catch_up(self._baseline, self._journal, self._journal_base)
        self._standby = standby

    def _drop_standby(self) -> None:
        if self._standby is not None:
            self._standby.destroy()
            self._standby = None

    def _repair_standby(self) -> None:
        """Replace a dead standby (e.g. a ``kill_standby`` fault) so
        the shard regains its warm failover target."""
        if not self._replicas or self._dead:
            return
        standby = self._standby
        if standby is not None and standby.alive:
            return
        self._drop_standby()
        self._spawn_standby()

    def _replication_gauge(self) -> None:
        standby = self._standby
        if standby is None:
            return
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.set_gauge(
                f"service.shard.{self.shard_id}.replication.lag_ops",
                float(self._seq - standby.applied),
            )

    def _teardown(self, timeout: float = 1.0) -> None:
        """Force the current worker down: close pipe, terminate, kill."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=timeout)
        if self._proc.is_alive():  # pragma: no cover - stubborn worker
            self._proc.kill()
            self._proc.join(timeout=timeout)

    def _mark_dead(self) -> None:
        self._flight("degraded")
        self._retire_telemetry()
        self._dead = True
        self._drop_standby()
        self._teardown()

    def _retire_telemetry(self) -> None:
        """Fold the dead incarnation's last-polled snapshot into the
        retired registry, preserving merged-snapshot monotonicity."""
        if self._last_snapshot is None:
            return
        if self._retired is None:
            self._retired = _telemetry.Registry()
        self._retired.merge(self._last_snapshot)
        self._last_snapshot = None

    def _flight(self, reason: str, incarnation: int | None = None) -> None:
        """Write a post-mortem flight record (best effort, never raises)."""
        if self._flight_dir is None:
            return
        reg = _telemetry.REGISTRY
        tr = _tracing.TRACER
        baseline_flows = (
            len(self._baseline[0]) if self._baseline is not None else 0
        )
        try:
            _tracing.write_flight_record(
                self._flight_dir,
                reason=reason,
                shard=self.shard_id,
                incarnation=(
                    self._incarnation if incarnation is None else incarnation
                ),
                restarts=self._restarts,
                journal={
                    "len": len(self._journal),
                    "limit": self._journal_limit,
                    "baseline_flows": baseline_flows,
                },
                spans=tr.snapshot() if tr is not None else None,
                registry=reg.snapshot() if reg is not None else None,
                shard_telemetry=self._last_snapshot,
            )
        except OSError:  # pragma: no cover - disk trouble must not kill ops
            return
        if reg is not None:
            reg.add("service.flight_records")

    def _recv(self):
        """One pipe reply, bounded by ``op_timeout`` when configured."""
        if self._op_timeout is not None and not self._conn.poll(
            self._op_timeout
        ):
            raise TimeoutError(
                f"shard {self.shard_id} worker reply exceeded "
                f"{self._op_timeout}s"
            )
        return self._conn.recv()

    # -- supervised recovery --------------------------------------------
    def _recover(
        self,
        in_flight: Sequence[ShardOp],
        traces: Sequence[Mapping[str, Any] | None] | None = None,
    ) -> list[dict[str, Any]] | None:
        """Respawn the worker, rebuild exact state, re-run ``in_flight``.

        Returns the in-flight ops' payloads (``[]`` when none), or None
        once the restart budget is exhausted — the shard is then dead.
        The rebuilt state is byte-identical to the pre-crash state: the
        baseline is an exact ``export_state`` snapshot and the journal
        holds every committed mutation since, in order (rejected admits
        and queries never change controller state, so omitting them is
        exact, not lossy).  Re-running the interrupted batch on that
        state yields exactly the payloads an uninterrupted run would
        have produced.

        ``traces`` are the in-flight ops' trace contexts: journal replay
        runs *untraced* (it is state reconstruction, not request work),
        but the interrupted batch re-runs with its original contexts, so
        the respawned incarnation's spans join the retried requests'
        traces — the track split in the Chrome export.

        With a live standby, **promotion** is tried first (see
        :meth:`_promote`) — warm failover that replays only the ops
        past the standby's high-water mark and never burns a restart.
        The cold loop below is the fallback.
        """
        self._flight("worker_death")
        self._retire_telemetry()
        payloads = self._promote(in_flight, traces)
        if payloads is not None:
            return payloads
        while self._restarts < self._max_restarts:
            self._restarts += 1
            start = time.perf_counter()
            self._teardown()
            self._incarnation = self._next_incarnation()
            self._spawn()
            try:
                if self._baseline is not None:
                    self._conn.send(
                        ("restore", self._baseline[0], self._baseline[1])
                    )
                    self._recv()
                if self._journal:
                    self._conn.send(("batch", list(self._journal)))
                    self._recv()
                payloads: list[dict[str, Any]] = []
                if in_flight:
                    if traces is not None:
                        self._conn.send(
                            ("batch", list(in_flight), list(traces))
                        )
                        payloads, spans = self._recv()
                        tr = _tracing.TRACER
                        if tr is not None and spans:
                            # The replacement's re-run spans: the retried
                            # requests' trace ids on the new
                            # incarnation's track.
                            tr.extend(spans)
                    else:
                        self._conn.send(("batch", list(in_flight)))
                        payloads = self._recv()
            except (BrokenPipeError, EOFError, OSError, TimeoutError):
                # The replacement died during replay (e.g. a fault
                # targeting this incarnation): burn another restart.
                continue
            elapsed = time.perf_counter() - start
            self._recovery_s_total += elapsed
            reg = _telemetry.REGISTRY
            if reg is not None:
                reg.add(f"service.shard.{self.shard_id}.restarts")
                reg.observe(
                    f"service.shard.{self.shard_id}.recovery_s", elapsed
                )
            tr = _tracing.TRACER
            if tr is not None:
                # Parent-side recovery span, labelled with the *new*
                # incarnation's track so the respawn is visible even
                # before the worker records its first op span.
                tr.record(
                    name="shard.recovery",
                    trace=tr.mint_trace(),
                    ts=time.time() - elapsed,
                    dur=elapsed,
                    proc=f"shard{self.shard_id}",
                    inc=self._incarnation,
                    tags={"restarts": float(self._restarts)},
                )
            # A cold restore invalidates whatever standby was left (it
            # may hold state the failed promotion partially advanced);
            # rebuild it from the recipe the new primary just replayed.
            if self._replicas:
                self._drop_standby()
                self._spawn_standby()
            return payloads
        self._mark_dead()
        return None

    def _promote(
        self,
        in_flight: Sequence[ShardOp],
        traces: Sequence[Mapping[str, Any] | None] | None = None,
    ) -> list[dict[str, Any]] | None:
        """Warm failover: make the standby the new primary.

        Barrier-syncs the ship link (drains every outstanding ack, so
        the high-water mark is exact), replays only the journal ops past
        it, re-runs the interrupted batch, and adopts the standby's
        pipe/process.  Returns the in-flight payloads, or None when the
        standby is unusable — dead (``kill_standby``), killed by an
        injected ``kill:during=promotion``, wedged past the op timeout,
        or stranded behind a compaction — in which case the cold
        recovery loop takes over.  The promoted state is rebuilt from
        exactly the recipe cold recovery uses (baseline + committed-op
        journal), so promoted decisions are byte-identical to it.
        """
        standby = self._standby
        if standby is None:
            return None
        self._standby = None
        start = time.perf_counter()
        if self._fault_plan is not None:
            attempt = self._promotion_attempts
            self._promotion_attempts += 1
            if any(
                f.at == attempt
                for f in self._fault_plan.promotion_faults(self.shard_id)
            ):
                # Injected standby death mid-promotion: fall back cold.
                standby.destroy()
                return None
        else:
            self._promotion_attempts += 1
        sync_timeout = (
            self._op_timeout if self._op_timeout is not None else 30.0
        )
        if not standby.sync(sync_timeout):
            standby.destroy()
            return None
        if standby.applied < self._journal_base:
            # Compaction folded ops the severed ship link never
            # delivered — the gap is no longer replayable.
            standby.destroy()
            return None
        gap = self._journal[standby.applied - self._journal_base:]
        self._teardown()
        self._conn, self._proc = standby.detach()
        self._incarnation = standby.incarnation
        try:
            if gap:
                self._conn.send(("batch", list(gap)))
                self._recv()
            payloads: list[dict[str, Any]] = []
            if in_flight:
                if traces is not None:
                    self._conn.send(("batch", list(in_flight), list(traces)))
                    payloads, spans = self._recv()
                    tr = _tracing.TRACER
                    if tr is not None and spans:
                        tr.extend(spans)
                else:
                    self._conn.send(("batch", list(in_flight)))
                    payloads = self._recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError):
            # The promoted worker died too (e.g. a kill fault aimed at
            # its incarnation): the cold loop tears it down and takes
            # over from the unchanged recipe.
            return None
        elapsed = time.perf_counter() - start
        self._failovers += 1
        self._failover_s_total += elapsed
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.add(f"service.shard.{self.shard_id}.failovers")
            reg.observe(
                f"service.shard.{self.shard_id}.failover_s", elapsed
            )
        tr = _tracing.TRACER
        if tr is not None:
            tr.record(
                name="shard.failover",
                trace=tr.mint_trace(),
                ts=time.time() - elapsed,
                dur=elapsed,
                proc=f"shard{self.shard_id}",
                inc=self._incarnation,
                tags={
                    "failovers": float(self._failovers),
                    "replayed_ops": float(len(gap)),
                },
            )
        # Replacement standby: spawned now, caught up in the background.
        self._spawn_standby()
        return payloads

    def _commit(
        self, ops: Sequence[ShardOp], payloads: Sequence[Mapping[str, Any]]
    ) -> None:
        """Journal the batch's committed mutations, ship them to the
        standby (ship-on-commit: the standby is never ahead of the
        journal), repair a dead standby, compact when due."""
        if not self._supervise:
            return
        committed: list[ShardOp] = []
        for op, payload in zip(ops, payloads):
            if "error" in payload:
                continue
            if op[0] == "request" and payload.get("accepted"):
                committed.append(op)
            elif op[0] == "release":
                committed.append(op)
        if committed:
            self._journal.extend(committed)
            start_seq = self._seq
            self._seq += len(committed)
            if self._standby is not None:
                self._standby.ship(committed, start_seq)
        self._replication_gauge()
        self._repair_standby()
        if len(self._journal) > self._journal_limit:
            self._compact()

    def _compact(self) -> None:
        """Fold the journal into a fresh baseline snapshot.

        The worker has already applied every journaled op, so exporting
        *now* captures baseline+journal in one snapshot; only then is
        the journal cleared.  If the export exchange fails, the old
        recipe is still intact — recover and retry the compaction on
        the next commit.
        """
        try:
            self._conn.send(("export",))
            snapshot = self._recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError):
            self._recover([])
            return
        self._baseline = snapshot
        self._journal = []
        self._journal_base = self._seq
        standby = self._standby
        if standby is not None and standby.shipped < self._journal_base:
            # A severed ship link (drop_journal) left the standby with a
            # gap the compacted journal can no longer replay: it could
            # never be promoted again.  Rebuild it from the fresh
            # baseline instead.
            self._drop_standby()
            self._spawn_standby()

    # -- batch interface -------------------------------------------------
    def send_batch(
        self,
        ops: Sequence[ShardOp],
        traces: Sequence[Mapping[str, Any] | None] | None = None,
    ) -> None:
        ops = list(ops)
        self._pending_ops = ops
        self._pending_traces = list(traces) if traces is not None else None
        if self._dead:
            return
        try:
            if traces is not None:
                self._conn.send(("batch", ops, self._pending_traces))
            else:
                self._conn.send(("batch", ops))
        except (BrokenPipeError, OSError):
            if self._supervise:
                # recv_batch's failing read triggers the recovery (the
                # in-flight ops are re-applied there either way).
                pass
            else:
                self._mark_dead()

    def recv_batch(self) -> list[dict[str, Any]]:
        ops, self._pending_ops = self._pending_ops or [], None
        traces, self._pending_traces = self._pending_traces, None
        if not self._dead:
            payloads: list[dict[str, Any]] | None
            try:
                reply = self._recv()
                # Traced batches reply ``(payloads, drained spans)``.
                if traces is not None:
                    payloads, spans = reply
                    tr = _tracing.TRACER
                    if tr is not None and spans:
                        tr.extend(spans)
                else:
                    payloads = reply
            except (EOFError, OSError, TimeoutError):
                payloads = (
                    self._recover(ops, traces) if self._supervise else None
                )
                if payloads is None:
                    self._mark_dead()
            if payloads is not None:
                self._commit(ops, payloads)
                return payloads
        return [
            {"error": self.DEAD_ERROR, "code": ERR_UNAVAILABLE}
            for _ in ops
        ]

    # -- state exchange ---------------------------------------------------
    def begin_export(self) -> None:
        if self._dead:
            raise RuntimeError(self.DEAD_ERROR)
        try:
            self._conn.send(("export",))
        except (BrokenPipeError, OSError):
            # The send usually still succeeds into the pipe buffer even
            # when the worker just died; a failure here means the pipe
            # itself is gone — recover and re-issue so finish_export has
            # a reply to pair with.
            if self._supervise and self._recover([]) is not None:
                try:
                    self._conn.send(("export",))
                    return
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            self._mark_dead()
            raise RuntimeError(self.DEAD_ERROR) from None

    def finish_export(self) -> tuple[tuple[Flow, ...], dict]:
        try:
            return self._recv()
        except (EOFError, OSError, TimeoutError):
            if self._supervise and self._recover([]) is not None:
                try:
                    self._conn.send(("export",))
                    return self._recv()
                except (BrokenPipeError, EOFError, OSError, TimeoutError):
                    pass
            self._mark_dead()
            raise RuntimeError(self.DEAD_ERROR) from None

    def restore(self, flows: Sequence[Flow], jitters: Mapping) -> None:
        if self._dead:
            raise RuntimeError(self.DEAD_ERROR)
        flows = tuple(flows)
        jitters = dict(jitters)
        if self._supervise:
            # An explicit restore *is* the new recovery recipe.  The
            # absolute op sequence stays monotone; the journal restarts
            # empty at the new baseline.  A standby caught up to the
            # *old* recipe is stale by definition — rebuild it.
            self._baseline = (flows, jitters)
            self._journal = []
            self._journal_base = self._seq
            self._drop_standby()
        try:
            self._conn.send(("restore", flows, jitters))
            self._recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError):
            # _recover replays the just-installed baseline, so a
            # successful recovery leaves exactly the requested state.
            if self._supervise and self._recover([]) is not None:
                return
            self._mark_dead()
            raise RuntimeError(self.DEAD_ERROR) from None
        if self._replicas:
            self._spawn_standby()

    def telemetry_snapshot(self) -> dict[str, Any] | None:
        """Merged retired + current-incarnation registry snapshot.

        Snapshots of incarnations that died are folded (at their last
        polled value) into a retired registry, and every result merges
        retired + current — so across worker kills and respawns the
        counters a poller sees are **monotone**: they never regress
        below a previously returned value, even though each respawned
        worker starts its own registry from zero.  ``None`` only when
        telemetry is disabled or nothing was ever collected.
        """
        current: dict[str, Any] | None = None
        if not self._dead:
            try:
                self._conn.send(("telemetry",))
                current = self._recv()
            except (BrokenPipeError, EOFError, OSError, TimeoutError):
                if self._supervise:
                    self._recover([])
                else:
                    self._mark_dead()
        if current is not None:
            self._last_snapshot = current
        if self._retired is None:
            return current
        merged = _telemetry.Registry()
        merged.merge(self._retired.snapshot())
        if current is not None:
            merged.merge(current)
        return merged.snapshot()

    def trace_snapshot(self) -> list[dict[str, Any]] | None:
        """Drain the worker's span ring (None when dead or untraced).

        Spans buffered in an incarnation that crashes before a drain
        die with it — the flight recorder is the capture path for
        those.
        """
        if self._dead or _tracing.TRACER is None:
            return None
        try:
            self._conn.send(("trace",))
            return self._recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError):
            if self._supervise:
                self._recover([])
            else:
                self._mark_dead()
            return None

    # -- introspection / shutdown ----------------------------------------
    def health(self) -> dict[str, Any]:
        standby = self._standby
        return {
            "backend": "process",
            # alive is the instantaneous process state (a supervised
            # shard whose crash has not been observed yet reports
            # False until the next op recovers it); failed is the
            # permanent give-up flag.
            "alive": bool(not self._dead and self._proc.is_alive()),
            "failed": self._dead,
            "supervised": self._supervise,
            "restarts": self._restarts,
            "journal_len": len(self._journal),
            "recovery_s_total": self._recovery_s_total,
            "replicas": self._replicas,
            "standby_alive": bool(standby is not None and standby.alive),
            # Committed ops the standby is not yet known to hold
            # (in-flight acks + anything a severed link never shipped).
            "replication_lag_ops": (
                self._seq - standby.applied if standby is not None else 0
            ),
            "failovers": self._failovers,
            "failover_s_total": self._failover_s_total,
            # Cold restores are exactly the PR 7 restart count;
            # promotions never increment it.
            "cold_restores": self._restarts,
        }

    def graceful_close(self) -> None:
        """Clean shutdown: drain the ship link, then write final
        flight records for every live incarnation (primary and
        standby) before the ordinary close escalation."""
        standby = self._standby
        if standby is not None:
            standby.drain(timeout_s=self._close_timeout)
        if not self._dead:
            self._flight("clean_shutdown")
            if standby is not None and standby.alive:
                self._flight(
                    "clean_shutdown_standby", incarnation=standby.incarnation
                )
        self.close()

    def close(self) -> None:
        """Shut the worker down, escalating if it does not cooperate.

        Polite close message first; if the worker does not acknowledge
        and exit within ``close_timeout`` (it may be wedged mid-op),
        escalate terminate → kill.  A wedged worker can therefore never
        hang ``close()`` longer than ~3 timeouts.
        """
        if self._standby is not None:
            self._standby.close(timeout=self._close_timeout)
            self._standby = None
        if not self._dead:
            try:
                self._conn.send(("close",))
                if self._conn.poll(self._close_timeout):
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._dead = True
        self._proc.join(timeout=self._close_timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=self._close_timeout)
        if self._proc.is_alive():  # pragma: no cover - stubborn worker
            self._proc.kill()
            self._proc.join(timeout=self._close_timeout)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceDecision:
    """Service-level admission outcome (protocol ``admit`` payload)."""

    accepted: bool
    reason: str
    shards: tuple[int, ...]
    cross_shard: bool

    def to_payload(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "reason": self.reason,
            "shards": list(self.shards),
            "cross_shard": self.cross_shard,
        }


class ShardedAdmissionService:
    """N admission controllers behind one request interface.

    Parameters
    ----------
    network:
        The shared topology (every shard holds all of it; shards differ
        only in which flows they own).
    n_shards:
        Link partition count; ``1`` reproduces the serial controller
        exactly for every request.
    shard_map:
        Optional explicit switch → shard assignment (defaults to the
        deterministic hash of :class:`ShardRouter`).
    workers:
        ``True`` backs every shard with its own worker process
        (multi-core serving); ``False`` (default) keeps shards inline —
        bit-identical decisions either way.
    supervise:
        With worker-backed shards, respawn a dead worker and restore
        its exact state (baseline snapshot + op journal) instead of
        permanently degrading the shard.  Inline shards cannot crash
        independently, so the flag only matters with ``workers=True``.
    max_restarts / journal_limit / op_timeout / close_timeout:
        Supervision tuning — restart budget per shard, journal length
        that triggers compaction into a fresh baseline, optional bound
        on every worker reply wait, and the shutdown-escalation
        timeout.
    replicas:
        ``1`` gives every worker-backed shard a warm standby worker fed
        by the primary's journal (ship-on-commit): a dying primary is
        promoted over instead of cold-restarted, and
        :meth:`rebalance` gets its transfer machinery.  Requires
        ``workers=True`` and ``supervise=True``.  ``0`` (default)
        preserves the PR 7 cold-recovery behaviour exactly.
    fault_plan:
        Optional deterministic :class:`~repro.service.faults.FaultPlan`;
        its worker faults are injected inside the shard workers (and
        therefore require ``workers=True``); its replication faults
        (``kill_standby`` / ``drop_journal`` / ``kill:during=promotion``)
        additionally require ``replicas >= 1``.
    flight_dir:
        Directory for post-mortem flight records: on every dead-worker
        detection and on permanent shard degradation the supervisor
        snapshots recent spans + registry state + op-journal position
        into a JSON document there (None disables; see
        :func:`repro.telemetry.tracing.write_flight_record`).
    """

    def __init__(
        self,
        network: Network,
        *,
        n_shards: int = 1,
        options: AnalysisOptions | None = None,
        shard_map: Mapping[str, int] | None = None,
        workers: bool = False,
        fast_reject: bool = True,
        warm_start: bool = True,
        supervise: bool = True,
        max_restarts: int = 5,
        journal_limit: int = 256,
        replicas: int = 0,
        fault_plan: FaultPlan | None = None,
        op_timeout: float | None = None,
        close_timeout: float = 5.0,
        flight_dir: str | None = None,
    ):
        self.network = network
        self.options = options or AnalysisOptions()
        self.workers = bool(workers)
        self.supervise = bool(supervise)
        self.replicas = int(replicas)
        self.fault_plan = fault_plan
        if self.replicas and not self.workers:
            raise ValueError("replicas require workers=True")
        if (
            fault_plan is not None
            and fault_plan.worker_faults()
            and not self.workers
        ):
            raise ValueError(
                "worker faults (kill/hang/slow_batch) require workers=True"
            )
        if (
            fault_plan is not None
            and fault_plan.replication_faults()
            and not (self.workers and self.replicas)
        ):
            raise ValueError(
                "replication faults (kill_standby/drop_journal/"
                "kill:during=promotion) require workers=True and "
                "replicas >= 1"
            )
        self.router = ShardRouter(network, n_shards, shard_map=shard_map)
        # Everything a shard backend needs besides its id — kept so
        # rebalance() can build new-layout backends with identical
        # resilience settings.
        self._shard_kwargs: dict[str, Any] = dict(
            fast_reject=fast_reject,
            warm_start=warm_start,
            supervise=supervise,
            max_restarts=max_restarts,
            journal_limit=journal_limit,
            replicas=self.replicas,
            fault_plan=fault_plan,
            op_timeout=op_timeout,
            close_timeout=close_timeout,
            flight_dir=flight_dir,
        )
        self._shards: list[Any] = [
            self._make_shard(sid) for sid in range(n_shards)
        ]
        #: flow name -> shard ids holding it (insertion = admission order).
        self._flow_shards: dict[str, tuple[int, ...]] = {}
        self._counters = {
            "offered": 0,
            "accepted": 0,
            "rejected": 0,
            "released": 0,
            "errors": 0,
            "cross_shard_offered": 0,
            "batches": 0,
            "rollbacks": 0,
            "rebalances": 0,
        }

    def _make_shard(self, sid: int) -> Any:
        """Build one shard backend under the service's resilience knobs."""
        if self.workers:
            return _ProcessShard(
                self.network,
                self.options,
                shard_id=sid,
                **self._shard_kwargs,
            )
        return _InlineShard(
            self.network,
            self.options,
            fast_reject=self._shard_kwargs["fast_reject"],
            warm_start=self._shard_kwargs["warm_start"],
            shard_id=sid,
        )

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def admitted_names(self) -> tuple[str, ...]:
        return tuple(self._flow_shards)

    def flow_assignment(self) -> dict[str, tuple[int, ...]]:
        """Copy of the flow → shard-ids mapping (admission order)."""
        return dict(self._flow_shards)

    def __enter__(self) -> "ShardedAdmissionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down shard backends (terminates worker processes)."""
        for shard in self._shards:
            shard.close()

    def shutdown(self) -> None:
        """Graceful close: every live shard (and its standby) finishes
        its queued ops and writes a clean-shutdown flight record before
        the workers come down — the counterpart of :meth:`close`, which
        only guarantees termination."""
        for shard in self._shards:
            getattr(shard, "graceful_close", shard.close)()

    # ------------------------------------------------------------------
    # Live rebalancing (journal-driven state transfer, atomic cutover)
    # ------------------------------------------------------------------
    def rebalance(
        self,
        shard_map: Mapping[str, int] | None = None,
        *,
        n_shards: int | None = None,
    ) -> dict[str, Any]:
        """Move to a new shard layout without dropping a single flow.

        Exactly the standby recipe, pointed at a new layout: the old
        shards export their state (snapshot + implied journal position),
        :func:`~repro.service.replication.reassign_shard_states`
        re-routes every admitted flow (with its converged jitter
        entries) under the new :class:`ShardRouter`, fresh backends are
        built and caught up from the re-routed states, and the service
        atomically cuts over — callers only ever see the old layout or
        the new one, never a mix, because the swap happens between
        batches (``process_batch`` treats the ``rebalance`` op as a
        flush barrier).  Restoring afterwards is byte-identical to
        restoring a snapshot into a service built with the new map.

        Raises :class:`ValueError` for a bad map or when any admitted
        flow is currently cross-shard (its per-shard states diverge by
        design; release it first).
        """
        if shard_map is None and n_shards is None:
            raise ValueError("rebalance needs shard_map or n_shards")
        if n_shards is None:
            if not shard_map:
                raise ValueError("rebalance shard_map must be non-empty")
            n_shards = max(int(s) for s in shard_map.values()) + 1
        new_router = ShardRouter(self.network, n_shards, shard_map=shard_map)
        states = self.export_shard_states()
        new_states, new_flow_shards = reassign_shard_states(
            states, self._flow_shards, new_router
        )
        old_shards = self._shards
        old_router = self.router
        self.router = new_router
        try:
            new_shards = [
                self._make_shard(sid) for sid in range(new_router.n_shards)
            ]
        except Exception:
            self.router = old_router
            raise
        for shard, (flows, jitters) in zip(new_shards, new_states):
            shard.restore(flows, jitters)
        moved = sum(
            1
            for name, sids in new_flow_shards.items()
            if sids != self._flow_shards.get(name)
        )
        # Atomic cutover: swap the full layout in one step, then retire
        # the old backends.
        self._shards = new_shards
        self._flow_shards = dict(new_flow_shards)
        for shard in old_shards:
            shard.close()
        self._counters["rebalances"] += 1
        _telemetry.add("service.rebalances")
        return {
            "rebalanced": True,
            "n_shards": new_router.n_shards,
            "moved_flows": moved,
            "admitted": len(self._flow_shards),
            "switch_shards": new_router.assignment(),
        }

    # ------------------------------------------------------------------
    # Single-request interface (thin wrappers over one-op batches)
    # ------------------------------------------------------------------
    def admit(self, flow: Flow) -> ServiceDecision:
        """Route ``flow`` to its shard(s) and decide admission."""
        payload = self.process_batch([Request(op="admit", flow=flow)])[0]
        if "error" in payload:
            raise ValueError(payload["error"])
        return ServiceDecision(
            accepted=payload["accepted"],
            reason=payload["reason"],
            shards=tuple(payload["shards"]),
            cross_shard=payload["cross_shard"],
        )

    def release(self, flow_name: str) -> None:
        payload = self.process_batch(
            [Request(op="release", flow_name=flow_name)]
        )[0]
        if "error" in payload:
            raise KeyError(payload["error"])

    def query(self, flow_name: str) -> dict[str, Any]:
        return self.process_batch(
            [Request(op="query", flow_name=flow_name)]
        )[0]

    def stats(self) -> dict[str, Any]:
        shard_flows = [0] * self.n_shards
        cross = 0
        for shards in self._flow_shards.values():
            if len(shards) > 1:
                cross += 1
            for sid in shards:
                shard_flows[sid] += 1
        health = self.health()
        out = {
            # Response layout version: 2 added the optional merged
            # "telemetry" snapshot, 3 the supervisor totals
            # ("restarts", "recovery_s_total"), 4 the replication
            # totals ("replicas", "failovers", "failover_s_total",
            # "cold_restores").  Strictly additive, so older clients
            # keep working unchanged.
            "stats_version": 4,
            "n_shards": self.n_shards,
            "workers": self.workers,
            "admitted": len(self._flow_shards),
            "admitted_cross_shard": cross,
            "shard_flows": shard_flows,
            "switch_shards": self.router.assignment(),
            "restarts": health["restarts"],
            "recovery_s_total": health["recovery_s_total"],
            "replicas": self.replicas,
            "failovers": health["failovers"],
            "failover_s_total": health["failover_s_total"],
            "cold_restores": health["cold_restores"],
            **self._counters,
        }
        if _telemetry.enabled():
            out["telemetry"] = self.metrics()["merged"]
        return out

    def health(self) -> dict[str, Any]:
        """Liveness/recovery summary (the protocol ``health`` payload).

        ``status`` is ``"ok"`` while no shard backend has *permanently*
        failed and ``"degraded"`` once any has (restart budget
        exhausted, or unsupervised crash); a supervised shard between
        crash and recovery still counts as ok.  Cheap: pure parent-side
        bookkeeping, no worker round-trips.
        """
        shards = [
            dict(shard.health(), shard=sid)
            for sid, shard in enumerate(self._shards)
        ]
        dead = [s["shard"] for s in shards if s["failed"]]
        return {
            "status": "degraded" if dead else "ok",
            "n_shards": self.n_shards,
            "workers": self.workers,
            "supervise": self.supervise,
            "replicas": self.replicas,
            "restarts": sum(s["restarts"] for s in shards),
            "recovery_s_total": sum(s["recovery_s_total"] for s in shards),
            "failovers": sum(s.get("failovers", 0) for s in shards),
            "failover_s_total": sum(
                s.get("failover_s_total", 0.0) for s in shards
            ),
            "cold_restores": sum(s.get("cold_restores", 0) for s in shards),
            "dead_shards": dead,
            "shards": shards,
        }

    def metrics(self) -> dict[str, Any]:
        """Telemetry snapshots of the service process and its shards.

        Returns ``{"enabled", "process", "shards", "merged"}`` where
        ``process`` is this process's registry snapshot (inline shards
        record here), ``shards`` has one entry per worker-backed shard
        (None for inline shards or dead workers) and ``merged`` folds
        them all into one snapshot.  All values are None/empty when
        telemetry is disabled.
        """
        reg = _telemetry.REGISTRY
        process = reg.snapshot() if reg is not None else None
        shard_snaps = [shard.telemetry_snapshot() for shard in self._shards]
        merged = _telemetry.merge_snapshots(
            snap
            for snap in [process, *shard_snaps]
            if snap is not None
        )
        out = {
            "enabled": reg is not None,
            "process": process,
            "shards": shard_snaps,
            "merged": merged,
        }
        tr = _tracing.TRACER
        out["tracing"] = tr is not None
        if tr is not None:
            # Drain worker span rings into the parent ring, then expose
            # the fleet's recent spans — the trace-export data source.
            for shard in self._shards:
                spans = shard.trace_snapshot()
                if spans:
                    tr.extend(spans)
            out["trace_spans"] = tr.snapshot()
        return out

    # ------------------------------------------------------------------
    # Batch execution with per-shard coalescing
    # ------------------------------------------------------------------
    def process_batch(
        self, requests: Sequence[Request]
    ) -> list[dict[str, Any]]:
        """Execute a request slice; results in submission order.

        Consecutive shard-local ops are coalesced into per-shard
        micro-batches and (with process backends) dispatched to all
        shards before any reply is collected.  Cross-shard admissions,
        ``stats`` and ``snapshot`` are barriers: they see every earlier
        op's effect and are seen by every later op — so batched
        semantics are exactly the one-at-a-time semantics.
        """
        self._counters["batches"] += 1
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.add("service.batches")
            reg.observe("service.batch_size", len(requests))
        results: list[dict[str, Any] | None] = [None] * len(requests)
        # One planned run: per-shard op lists plus their result slots.
        run: dict[int, list[tuple[int, ShardOp]]] = {}
        # Planning view of name -> shards, so a release can find a flow
        # admitted earlier in the same run.
        planned = dict(self._flow_shards)

        traced = _tracing.TRACER is not None

        def flush() -> None:
            if not run:
                return
            order = sorted(run)
            for sid in order:
                ops = [op for _, op in run[sid]]
                if traced:
                    self._shards[sid].send_batch(
                        ops,
                        traces=[requests[pos].trace for pos, _ in run[sid]],
                    )
                else:
                    self._shards[sid].send_batch(ops)
            collected = []
            for sid in order:
                payloads = self._shards[sid].recv_batch()
                collected.extend(
                    (pos, sid, op, payload)
                    for (pos, op), payload in zip(run[sid], payloads)
                )
            # Account in SUBMISSION order, not shard order: a name
            # admitted, released and re-admitted on different shards
            # within one run must fold into the bookkeeping exactly as
            # one-at-a-time execution would.
            for pos, sid, op, payload in sorted(collected):
                self._account(op, payload, sid)
                results[pos] = payload
                # Reconcile the optimistic planning entry of an admit
                # the shard in fact rejected (or errored).
                if op[0] == "request" and op[1].name not in self._flow_shards:
                    planned.pop(op[1].name, None)
            run.clear()

        for pos, req in enumerate(requests):
            if req.op == "admit":
                if (
                    req.flow.name in planned
                    and req.flow.name not in self._flow_shards
                ):
                    # The name was planned optimistically earlier in this
                    # run; resolve whether that admit really succeeded
                    # before deciding this one — one-at-a-time semantics.
                    flush()
                shards = self._plan_admit(req.flow, planned)
                if isinstance(shards, dict):  # immediate error payload
                    results[pos] = shards
                    self._counters["errors"] += 1
                elif len(shards) == 1:
                    run.setdefault(shards[0], []).append(
                        (pos, ("request", req.flow))
                    )
                    # Optimistic planning entry: a later release in this
                    # batch routes to the same shard, which authoritatively
                    # errors if the admit was in fact rejected — exactly
                    # the serial KeyError semantics.
                    planned[req.flow.name] = shards
                else:
                    flush()
                    results[pos] = self._admit_cross_shard(
                        req.flow, shards, trace=req.trace if traced else None
                    )
                    planned = dict(self._flow_shards)
            elif req.op == "release":
                shards = planned.pop(req.flow_name, None)
                if shards is None:
                    results[pos] = {
                        "error": f"flow {req.flow_name!r} is not admitted",
                        "code": ERR_BAD_REQUEST,
                    }
                    self._counters["errors"] += 1
                elif len(shards) == 1:
                    run.setdefault(shards[0], []).append(
                        (pos, ("release", req.flow_name))
                    )
                else:
                    flush()
                    results[pos] = self._release_cross_shard(
                        req.flow_name,
                        shards,
                        trace=req.trace if traced else None,
                    )
            elif req.op == "query":
                flush()
                results[pos] = self._query(req.flow_name)
            elif req.op == "stats":
                flush()
                results[pos] = self.stats()
            elif req.op == "snapshot":
                flush()
                results[pos] = self._snapshot(req.path)
            elif req.op == "metrics":
                flush()  # barrier: include every earlier op's counts
                results[pos] = self.metrics()
            elif req.op == "health":
                flush()  # barrier: reflect every earlier op's recoveries
                results[pos] = self.health()
            elif req.op == "rebalance":
                flush()  # barrier: cut over between batches, never mid-run
                try:
                    results[pos] = self.rebalance(
                        req.shard_map, n_shards=req.n_shards
                    )
                except (KeyError, ValueError, RuntimeError) as exc:
                    results[pos] = {
                        "error": f"rebalance failed: {exc}",
                        "code": ERR_BAD_REQUEST,
                    }
                    self._counters["errors"] += 1
                else:
                    planned = dict(self._flow_shards)
            else:  # pragma: no cover - Request.__post_init__ rejects
                results[pos] = {"error": f"unknown op {req.op!r}"}
        flush()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _plan_admit(
        self, flow: Flow, planned: Mapping[str, tuple[int, ...]]
    ) -> tuple[int, ...] | dict[str, Any]:
        if flow.name in planned:
            return {
                "error": f"flow name {flow.name!r} already admitted",
                "code": ERR_BAD_REQUEST,
            }
        try:
            shards = self.router.shards_for_flow(flow)
        except KeyError as exc:
            return {"error": str(exc), "code": ERR_BAD_REQUEST}
        return shards

    def _account(
        self, op: ShardOp, payload: Mapping[str, Any], shard: int
    ) -> None:
        """Fold one shard-local result into the service bookkeeping."""
        if op[0] == "request":
            if "error" in payload:
                self._counters["errors"] += 1
                return
            self._counters["offered"] += 1
            if payload["accepted"]:
                self._counters["accepted"] += 1
                self._flow_shards[op[1].name] = (shard,)
            else:
                self._counters["rejected"] += 1
            # Decorate with the service-level routing fields.
            payload["shards"] = [shard]  # type: ignore[index]
            payload["cross_shard"] = False  # type: ignore[index]
        elif op[0] == "release":
            if "error" in payload:
                self._counters["errors"] += 1
                return
            self._counters["released"] += 1
            self._flow_shards.pop(op[1], None)

    def _admit_cross_shard(
        self,
        flow: Flow,
        shards: tuple[int, ...],
        trace: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Two-phase accept: tentative per-shard admits, then commit or
        roll back."""
        traces = [trace] if trace is not None else None
        accepted: list[int] = []
        for sid in shards:
            self._shards[sid].send_batch([("request", flow)], traces=traces)
            payload = self._shards[sid].recv_batch()[0]
            if "error" in payload:
                self._rollback(flow.name, accepted)
                # Errored admits count only as errors, never as offered
                # — same accounting as the shard-local path.
                self._counters["errors"] += 1
                out = {"error": f"shard {sid}: {payload['error']}"}
                if "code" in payload:
                    out["code"] = payload["code"]
                return out
            if not payload["accepted"]:
                self._rollback(flow.name, accepted)
                self._counters["offered"] += 1
                self._counters["cross_shard_offered"] += 1
                self._counters["rejected"] += 1
                return ServiceDecision(
                    accepted=False,
                    reason=f"shard {sid}: {payload['reason']}",
                    shards=shards,
                    cross_shard=True,
                ).to_payload()
            accepted.append(sid)
        self._flow_shards[flow.name] = shards
        self._counters["offered"] += 1
        self._counters["cross_shard_offered"] += 1
        self._counters["accepted"] += 1
        return ServiceDecision(
            accepted=True,
            reason="all deadlines met on every shard",
            shards=shards,
            cross_shard=True,
        ).to_payload()

    def _rollback(self, flow_name: str, shard_ids: Sequence[int]) -> None:
        if shard_ids:
            self._counters["rollbacks"] += 1
            _telemetry.add("service.rollbacks")
        for sid in shard_ids:
            self._shards[sid].send_batch([("release", flow_name)])
            self._shards[sid].recv_batch()

    def _release_cross_shard(
        self,
        flow_name: str,
        shards: tuple[int, ...],
        trace: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        traces = [trace] if trace is not None else None
        for sid in shards:
            self._shards[sid].send_batch([("release", flow_name)], traces=traces)
        failures = []
        for sid in shards:
            payload = self._shards[sid].recv_batch()[0]
            if "error" in payload:
                failures.append(f"shard {sid}: {payload['error']}")
        # The service-level view drops the flow either way (a dead
        # shard's state is gone regardless), but a partial release is
        # reported as the error it is, not as success.
        self._flow_shards.pop(flow_name, None)
        if failures:
            self._counters["errors"] += 1
            return {"error": "; ".join(failures), "released": True}
        self._counters["released"] += 1
        return {"released": True, "shards": list(shards)}

    def _query(self, flow_name: str) -> dict[str, Any]:
        shards = self._flow_shards.get(flow_name)
        if shards is None:
            return {"admitted": False}
        # Every touched shard bounds the flow against its own
        # interferers; the honest service-level bound is the worst one.
        for sid in shards:
            self._shards[sid].send_batch([("query", flow_name)])
        collected = [
            (sid, self._shards[sid].recv_batch()[0]) for sid in shards
        ]
        for sid, shard_payload in collected:
            if "error" in shard_payload:
                # Never report a bound computed from a partial view —
                # a missing shard could be the dominating one.
                out = {
                    "error": f"shard {sid}: {shard_payload['error']}",
                    "admitted": True,
                    "shards": list(shards),
                }
                if "code" in shard_payload:
                    out["code"] = shard_payload["code"]
                return out
        payload: dict[str, Any] = {"admitted": True}
        worst = None
        for _, shard_payload in collected:
            wr = shard_payload.get("worst_response")
            if wr is not None and (worst is None or wr > worst):
                worst = wr
        if worst is not None:
            payload["worst_response"] = worst
        payload["shards"] = list(shards)
        payload["cross_shard"] = len(shards) > 1
        return payload

    def _snapshot(self, path: str | None) -> dict[str, Any]:
        from repro.service.state import (  # cycle-free lazy import
            save_service_state,
            service_state_to_dict,
        )

        # Bad paths and dead shard workers must yield an error payload,
        # not blow up a whole batch after earlier ops already committed.
        try:
            if path:
                save_service_state(path, self)
                return {"path": path, "admitted": len(self._flow_shards)}
            return {"state": service_state_to_dict(self)}
        except (OSError, RuntimeError) as exc:
            return {"error": f"snapshot failed: {exc}"}

    # ------------------------------------------------------------------
    # State export / import (used by repro.service.state)
    # ------------------------------------------------------------------
    def export_shard_states(self) -> list[tuple[tuple[Flow, ...], dict]]:
        """Per-shard ``(flows, jitter entries)`` in shard-id order.

        Exports are pipelined (all shards asked first, then collected)
        so a worker-backed snapshot stalls for the slowest shard, not
        the sum of all shards.
        """
        for shard in self._shards:
            shard.begin_export()
        return [shard.finish_export() for shard in self._shards]

    def import_shard_states(
        self,
        states: Sequence[tuple[Sequence[Flow], Mapping]],
        flow_shards: Mapping[str, Sequence[int]],
    ) -> None:
        """Install exported shard states (snapshot restore)."""
        if len(states) != self.n_shards:
            raise ValueError(
                f"{len(states)} shard states for {self.n_shards} shard(s)"
            )
        for shard, (flows, jitters) in zip(self._shards, states):
            shard.restore(flows, jitters)
        self._flow_shards = {
            name: tuple(int(s) for s in shards)
            for name, shards in flow_shards.items()
        }
