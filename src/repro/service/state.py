"""Versioned snapshot / restore of a running admission service.

A *service state document* persists everything needed to rebuild a
:class:`~repro.service.sharding.ShardedAdmissionService` that issues
**byte-identical decisions** on a replayed request log: the topology,
the analysis options, the shard layout, and — per shard — the admitted
flows plus their converged jitter table.  The document follows the
schema-version conventions of :mod:`repro.scenario.serialization`
(integer ``schema_version``, newer-than-supported refused loudly, JSON
with sorted keys) and reuses its network/flow/options codecs, so the
embedded blocks are exactly the blocks scenario files carry::

    {
      "schema_version": 2,
      "kind": "admission-service-state",
      "n_shards": 4,
      "workers": false,
      "replicas": 0,                        # warm standbys per shard (v2)
      "shard_map": {"sw0": 0, ...},        # explicit switch assignment
      "network": {...},                     # repro.io network document
      "analysis": {...},                    # AnalysisOptions fields
      "flow_shards": {"call0": [0], ...},   # admission-order mapping
      "shards": [
        {"flows": [<repro.io flow doc>...],
         "jitters": [[flow, [resource...], [values...]], ...]},
        ...
      ]
    }

Jitter resources are the analysis' :data:`ResourceKey` tuples
(``("link", N1, N2)`` / ``("in", N)``) flattened to JSON arrays.

Schema v2 adds the ``replicas`` knob (absent = 0; v1 documents stay
loadable) and the loader gains a **layout override**: passing
``shard_map=`` / ``n_shards=`` to :func:`service_state_from_dict`
restores the snapshot into a *different* shard layout by re-routing
every admitted flow with
:func:`repro.service.replication.reassign_shard_states` — the same
helper ``ShardedAdmissionService.rebalance`` uses, which is exactly why
live rebalancing and snapshot-restore-into-a-new-map are equivalent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.io import (
    ScenarioError,
    flow_from_dict,
    flow_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.scenario.serialization import (
    analysis_options_from_dict,
    analysis_options_to_dict,
)
from repro.service.replication import reassign_shard_states
from repro.service.sharding import ShardedAdmissionService

#: Current service-state schema version (2 added ``replicas`` and the
#: restore-time shard-layout override; v1 documents remain loadable).
STATE_VERSION = 2

#: Document discriminator (state files are not scenario files).
STATE_KIND = "admission-service-state"


def _jitters_to_doc(jitters: Mapping) -> list[list[Any]]:
    rows = [
        [name, list(resource), list(values)]
        for (name, resource), values in jitters.items()
    ]
    rows.sort(key=lambda r: (r[0], r[1]))
    return rows


def _jitters_from_doc(rows) -> dict:
    out = {}
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise ScenarioError(
                f"service state: bad jitter row {row!r} "
                "(expected [flow, [resource...], [values...]])"
            )
        name, resource, values = row
        out[(str(name), tuple(resource))] = tuple(float(v) for v in values)
    return out


def service_state_to_dict(service: ShardedAdmissionService) -> dict[str, Any]:
    shards = []
    for flows, jitters in service.export_shard_states():
        shards.append(
            {
                "flows": [flow_to_dict(f) for f in flows],
                "jitters": _jitters_to_doc(jitters),
            }
        )
    return {
        "schema_version": STATE_VERSION,
        "kind": STATE_KIND,
        "n_shards": service.n_shards,
        "workers": service.workers,
        "replicas": service.replicas,
        "shard_map": service.router.assignment(),
        "network": network_to_dict(service.network),
        "analysis": analysis_options_to_dict(service.options),
        "flow_shards": {
            name: list(shards_)
            for name, shards_ in service.flow_assignment().items()
        },
        "shards": shards,
    }


def service_state_from_dict(
    doc: Mapping[str, Any],
    *,
    workers: bool | None = None,
    shard_map: Mapping[str, int] | None = None,
    n_shards: int | None = None,
    **service_kwargs: Any,
) -> ShardedAdmissionService:
    """Rebuild a service from a state document.

    ``workers`` overrides the snapshotted backend choice (a snapshot
    taken from a worker-backed service restores inline by passing
    ``workers=False``, and vice versa — the state is backend-agnostic).
    ``shard_map`` / ``n_shards`` override the snapshotted *layout*: the
    admitted flows are re-routed under the new router (their converged
    jitter entries travelling with them) before the restore, which is
    byte-equivalent to live-rebalancing the original service to that
    layout.  Extra keyword arguments — ``supervise``, ``max_restarts``,
    ``journal_limit``, ``replicas``, ``fault_plan``, ``op_timeout``,
    ... — pass straight to the :class:`ShardedAdmissionService`
    constructor, so a restored service can run with full fault
    tolerance (or a fault plan) without those runtime knobs living in
    the state document.
    """
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ScenarioError(f"invalid service-state schema_version {version!r}")
    if version > STATE_VERSION:
        raise ScenarioError(
            f"service-state schema_version {version} is newer than the "
            f"supported version {STATE_VERSION}"
        )
    if doc.get("kind") != STATE_KIND:
        raise ScenarioError(
            f"not a service-state document (kind={doc.get('kind')!r})"
        )
    for key in ("network", "n_shards", "shards"):
        if key not in doc:
            raise ScenarioError(f"service state: missing {key!r} section")
    network = network_from_dict(doc["network"])
    options = (
        analysis_options_from_dict(doc["analysis"])
        if "analysis" in doc
        else None
    )
    doc_n_shards = int(doc["n_shards"])
    shard_docs = doc["shards"]
    if len(shard_docs) != doc_n_shards:
        raise ScenarioError(
            f"service state: {len(shard_docs)} shard blocks for "
            f"n_shards={doc_n_shards}"
        )
    effective_workers = (
        doc.get("workers", False) if workers is None else workers
    )
    if "replicas" not in service_kwargs:
        # The snapshotted replication knob is honoured where it can be
        # (replicas need worker backends); an explicit kwarg wins.
        doc_replicas = int(doc.get("replicas", 0))
        if effective_workers and doc_replicas:
            service_kwargs["replicas"] = doc_replicas
    relayout = shard_map is not None or n_shards is not None
    if relayout:
        if n_shards is None:
            if not shard_map:
                raise ScenarioError(
                    "service state: layout override shard_map is empty"
                )
            n_shards = max(int(s) for s in shard_map.values()) + 1
    else:
        shard_map = doc.get("shard_map")
        n_shards = doc_n_shards
    service = ShardedAdmissionService(
        network,
        n_shards=n_shards,
        options=options,
        shard_map=shard_map,
        workers=effective_workers,
        **service_kwargs,
    )
    try:
        states = []
        for block in shard_docs:
            flows = tuple(flow_from_dict(f) for f in block.get("flows", []))
            jitters = _jitters_from_doc(block.get("jitters", []))
            states.append((flows, jitters))
        flow_shards: Mapping[str, Any] = {
            str(name): tuple(int(s) for s in sids)
            for name, sids in doc.get("flow_shards", {}).items()
        }
        if relayout:
            states, flow_shards = reassign_shard_states(
                states, flow_shards, service.router
            )
        service.import_shard_states(states, flow_shards)
    except Exception:
        service.close()
        raise
    return service


def save_service_state(
    path: str | Path, service: ShardedAdmissionService
) -> None:
    """Write a service-state JSON file (pretty-printed, stable order)."""
    Path(path).write_text(
        json.dumps(service_state_to_dict(service), indent=2, sort_keys=True)
        + "\n"
    )


def load_service_state(
    path: str | Path,
    *,
    workers: bool | None = None,
    **service_kwargs: Any,
) -> ShardedAdmissionService:
    """Read a service-state file and rebuild the service.

    Extra keyword arguments pass through to the service constructor
    (see :func:`service_state_from_dict`).
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path}: expected a JSON object")
    return service_state_from_dict(doc, workers=workers, **service_kwargs)
