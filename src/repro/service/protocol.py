"""Versioned wire protocol of the admission service.

One request or response per line, JSON-encoded (JSON-lines framing —
trivially debuggable with ``nc`` and ``jq``).  Every message carries the
protocol version under ``"v"``; requests from a *newer* protocol are
refused loudly, mirroring the schema-version discipline of
:mod:`repro.io` / :mod:`repro.scenario.serialization`.

Requests::

    {"v": 2, "id": 7, "op": "admit",   "flow": {<repro.io flow doc>}}
    {"v": 2, "id": 8, "op": "release", "flow_name": "call3"}
    {"v": 2, "id": 9, "op": "query",   "flow_name": "call3"}
    {"v": 2, "id": 10, "op": "stats"}
    {"v": 2, "id": 11, "op": "snapshot", "path": "state.json"}
    {"v": 2, "id": 12, "op": "metrics"}
    {"v": 2, "id": 13, "op": "health"}

Protocol v2 (v1 requests remain accepted) adds the fault-tolerance
surface:

* the ``health`` verb — per-shard liveness/restart/journal status plus
  server queue depth; cheap enough to poll;
* an **error-code taxonomy**: error responses carry ``"code"``, one of
  :data:`ERROR_CODES`; codes in :data:`RETRYABLE_CODES` mean the same
  request may succeed if re-sent (see :func:`is_retryable`), others are
  fatal for that request.  Shedding responses include ``retry_after``
  (seconds the client should wait);
* an **idempotency key**: requests may carry ``"idem"`` (an opaque
  string unique per logical operation).  The server caches the
  successful response per key and replays it for duplicates, so a
  client that retries an ``admit``/``release`` whose response was lost
  — a crashed connection, a dropped reply — never double-applies it;
* a **per-request deadline**: ``"deadline_s"`` (seconds from arrival).
  A request still queued past its deadline is answered with
  ``deadline_exceeded`` instead of being processed — stale work is
  shed, not served.

Protocol v3 (v1/v2 requests remain accepted) adds the replication
surface:

* the ``rebalance`` verb — move the service to a new shard layout
  without dropping admitted flows.  The request carries ``shard_map``
  (switch → shard id) and/or ``n_shards``; the server treats it as a
  batch barrier (the cutover happens between batches, atomically) and
  answers with the move summary (``rebalanced``, ``n_shards``,
  ``moved_flows``, ``switch_shards``);
* replication fields in ``health``/``stats`` payloads: ``replicas``,
  per-shard ``standby_alive`` / ``replication_lag_ops``, and the
  ``failovers`` / ``failover_s_total`` / ``cold_restores`` totals
  (``stats_version`` 4).

Additive to v2 (no version bump — absent fields mean "untraced"):
requests may carry ``"trace"``, a distributed-tracing context object
``{"id": <trace id>, "span": <client span id>}`` (see
:mod:`repro.telemetry.tracing`).  A tracing server adopts the client's
trace id (minting one when absent), records its own spans under it,
propagates the context into shard workers, and echoes the server-side
``trace`` context in the response so clients can correlate.

``metrics`` returns the service's telemetry snapshots (merged across
shard workers; see :mod:`repro.telemetry`) — empty when telemetry is
disabled.  ``stats`` responses are versioned via ``stats_version``:
version 2 added the merged telemetry snapshot under ``"telemetry"``,
version 3 adds supervisor restart totals (older clients ignore unknown
keys).

``id`` is an opaque client token echoed in the response; ``at`` is an
optional replay timestamp (seconds into the trace) carried for log
fidelity and ignored by the server.  Responses::

    {"v": 2, "id": 7, "ok": true,  ...op-specific payload...}
    {"v": 2, "id": 8, "ok": false, "error": "flow 'x' is not admitted",
     "code": "bad_request"}
    {"v": 2, "id": 9, "ok": false, "error": "service overloaded",
     "code": "overloaded", "retry_after": 0.05}

The ``admit`` payload mirrors the service decision: ``accepted``,
``reason``, ``shards`` and ``cross_shard``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.io import flow_from_dict, flow_to_dict
from repro.model.flow import Flow

#: Current protocol version (v2 added health / error codes / idem /
#: deadlines, v3 the rebalance verb; all v1/v2 requests remain valid
#: v3 requests).
PROTOCOL_VERSION = 3

#: Operations the service understands.
OPS = (
    "admit", "release", "query", "stats", "snapshot", "metrics", "health",
    "rebalance",
)

# ----------------------------------------------------------------------
# Error-code taxonomy (v2)
# ----------------------------------------------------------------------
#: The request itself is invalid (malformed, unknown flow, duplicate
#: name, ...); re-sending it verbatim can never succeed.
ERR_BAD_REQUEST = "bad_request"
#: The server shed the request before processing (queue over its
#: limit); retry after the advertised ``retry_after``.
ERR_OVERLOADED = "overloaded"
#: The request's own deadline passed while it was queued.
ERR_DEADLINE = "deadline_exceeded"
#: The owning shard's worker is down (recovering or permanently dead);
#: a supervised shard may be back for the retry.
ERR_UNAVAILABLE = "shard_unavailable"
#: Unexpected server-side failure.
ERR_INTERNAL = "internal"

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_OVERLOADED,
    ERR_DEADLINE,
    ERR_UNAVAILABLE,
    ERR_INTERNAL,
)

#: Codes a client may transparently retry (with backoff).
RETRYABLE_CODES = frozenset({ERR_OVERLOADED, ERR_DEADLINE, ERR_UNAVAILABLE})


def is_retryable(doc: Mapping[str, Any]) -> bool:
    """True when a response document is a retryable failure."""
    return not doc.get("ok", False) and doc.get("code") in RETRYABLE_CODES


class ProtocolError(ValueError):
    """A request line is malformed or from an unsupported protocol."""


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str
    id: Any = None
    flow: Flow | None = None
    flow_name: str | None = None
    at: float | None = None
    path: str | None = None
    #: Idempotency key: the server replays the cached successful
    #: response for a duplicate key instead of re-applying the op.
    idem: str | None = None
    #: Per-request deadline in seconds from server arrival; queued
    #: requests past it are shed with ``deadline_exceeded``.
    deadline_s: float | None = None
    #: Distributed-tracing context (``{"id": ..., "span": ...}``);
    #: additive to v2 — ``None`` means the request is untraced.
    trace: Mapping[str, Any] | None = None
    #: Target switch → shard assignment of a ``rebalance`` request (v3).
    shard_map: Mapping[str, int] | None = None
    #: Target shard count of a ``rebalance`` request (v3; optional when
    #: ``shard_map`` pins every switch).
    n_shards: int | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(
                f"unknown op {self.op!r}; expected one of {list(OPS)}"
            )
        if self.op == "admit" and self.flow is None:
            raise ProtocolError("admit request: missing 'flow'")
        if self.op in ("release", "query") and not self.flow_name:
            raise ProtocolError(f"{self.op} request: missing 'flow_name'")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ProtocolError(
                f"request: negative deadline_s {self.deadline_s!r}"
            )
        if self.op == "rebalance":
            if self.shard_map is None and self.n_shards is None:
                raise ProtocolError(
                    "rebalance request: needs 'shard_map' or 'n_shards'"
                )
            if self.n_shards is not None and self.n_shards < 1:
                raise ProtocolError(
                    f"rebalance request: n_shards must be >= 1, "
                    f"got {self.n_shards}"
                )

    @property
    def target(self) -> str | None:
        """Flow the request concerns (None for stats/snapshot/metrics)."""
        if self.flow is not None:
            return self.flow.name
        return self.flow_name


def request_to_dict(req: Request) -> dict[str, Any]:
    doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "op": req.op}
    if req.id is not None:
        doc["id"] = req.id
    if req.flow is not None:
        doc["flow"] = flow_to_dict(req.flow)
    if req.flow_name is not None:
        doc["flow_name"] = req.flow_name
    if req.at is not None:
        doc["at"] = req.at
    if req.path is not None:
        doc["path"] = req.path
    if req.idem is not None:
        doc["idem"] = req.idem
    if req.deadline_s is not None:
        doc["deadline_s"] = req.deadline_s
    if req.trace is not None:
        doc["trace"] = dict(req.trace)
    if req.shard_map is not None:
        doc["shard_map"] = {k: int(v) for k, v in req.shard_map.items()}
    if req.n_shards is not None:
        doc["n_shards"] = req.n_shards
    return doc


def _shard_map_from_doc(doc: Mapping[str, Any]) -> dict[str, int] | None:
    """Validate the optional ``shard_map`` field of a request document."""
    raw = doc.get("shard_map")
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ProtocolError(
            f"request: 'shard_map' must be an object, got {raw!r}"
        )
    out: dict[str, int] = {}
    for key, value in raw.items():
        try:
            out[str(key)] = int(value)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"request: non-integer shard_map[{key!r}] value {value!r}"
            ) from None
    return out


def _trace_from_doc(doc: Mapping[str, Any]) -> dict[str, Any] | None:
    """Validate the optional ``trace`` field of a request document."""
    raw = doc.get("trace")
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ProtocolError(f"request: 'trace' must be an object, got {raw!r}")
    trace_id = raw.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        raise ProtocolError(
            "request: 'trace' must carry a non-empty string 'id'"
        )
    ctx: dict[str, Any] = {"id": trace_id}
    span = raw.get("span")
    if span is not None:
        ctx["span"] = str(span)
    return ctx


def request_from_dict(doc: Mapping[str, Any]) -> Request:
    if not isinstance(doc, Mapping):
        raise ProtocolError("request must be a JSON object")
    version = doc.get("v")
    if not isinstance(version, int):
        raise ProtocolError("request: missing integer protocol version 'v'")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"request protocol v{version} is newer than the supported "
            f"v{PROTOCOL_VERSION}"
        )
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request: missing 'op'")
    flow = None
    if "flow" in doc:
        try:
            flow = flow_from_dict(doc["flow"])
        except Exception as exc:
            raise ProtocolError(f"admit request: bad flow document: {exc}")
    at = doc.get("at")
    if at is not None:
        try:
            at = float(at)
        except (TypeError, ValueError):
            raise ProtocolError(f"request: non-numeric 'at' value {at!r}")
    deadline_s = doc.get("deadline_s")
    if deadline_s is not None:
        try:
            deadline_s = float(deadline_s)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"request: non-numeric 'deadline_s' value {deadline_s!r}"
            )
    n_shards = doc.get("n_shards")
    if n_shards is not None:
        try:
            n_shards = int(n_shards)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"request: non-integer 'n_shards' value {n_shards!r}"
            ) from None
    flow_name = doc.get("flow_name")
    path = doc.get("path")
    idem = doc.get("idem")
    return Request(
        op=op,
        id=doc.get("id"),
        flow=flow,
        flow_name=str(flow_name) if flow_name is not None else None,
        at=at,
        path=str(path) if path is not None else None,
        idem=str(idem) if idem is not None else None,
        deadline_s=deadline_s,
        trace=_trace_from_doc(doc),
        shard_map=_shard_map_from_doc(doc),
        n_shards=n_shards,
    )


def response_to_dict(
    request_id: Any, payload: Mapping[str, Any] | None = None, *,
    ok: bool = True, error: str | None = None, code: str | None = None,
    retry_after: float | None = None,
) -> dict[str, Any]:
    doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": ok}
    if error is not None:
        doc["ok"] = False
        doc["error"] = error
        if code is not None:
            doc["code"] = code
        if retry_after is not None:
            doc["retry_after"] = retry_after
    if payload:
        doc.update(payload)
    return doc


def encode_line(doc: Mapping[str, Any]) -> bytes:
    """Compact one-line JSON encoding with trailing newline."""
    return (
        json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode()


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one JSON-lines message; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("message must be a JSON object")
    return doc
