"""Versioned wire protocol of the admission service.

One request or response per line, JSON-encoded (JSON-lines framing —
trivially debuggable with ``nc`` and ``jq``).  Every message carries the
protocol version under ``"v"``; requests from a *newer* protocol are
refused loudly, mirroring the schema-version discipline of
:mod:`repro.io` / :mod:`repro.scenario.serialization`.

Requests::

    {"v": 1, "id": 7, "op": "admit",   "flow": {<repro.io flow doc>}}
    {"v": 1, "id": 8, "op": "release", "flow_name": "call3"}
    {"v": 1, "id": 9, "op": "query",   "flow_name": "call3"}
    {"v": 1, "id": 10, "op": "stats"}
    {"v": 1, "id": 11, "op": "snapshot", "path": "state.json"}
    {"v": 1, "id": 12, "op": "metrics"}

``metrics`` returns the service's telemetry snapshots (merged across
shard workers; see :mod:`repro.telemetry`) — empty when telemetry is
disabled.  ``stats`` responses are versioned via ``stats_version``:
version 2 adds the merged telemetry snapshot under ``"telemetry"``
when collection is enabled (older clients ignore unknown keys).

``id`` is an opaque client token echoed in the response; ``at`` is an
optional replay timestamp (seconds into the trace) carried for log
fidelity and ignored by the server.  Responses::

    {"v": 1, "id": 7, "ok": true,  ...op-specific payload...}
    {"v": 1, "id": 8, "ok": false, "error": "flow 'x' is not admitted"}

The ``admit`` payload mirrors the service decision: ``accepted``,
``reason``, ``shards`` and ``cross_shard``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.io import flow_from_dict, flow_to_dict
from repro.model.flow import Flow

#: Current protocol version.
PROTOCOL_VERSION = 1

#: Operations the service understands.
OPS = ("admit", "release", "query", "stats", "snapshot", "metrics")


class ProtocolError(ValueError):
    """A request line is malformed or from an unsupported protocol."""


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str
    id: Any = None
    flow: Flow | None = None
    flow_name: str | None = None
    at: float | None = None
    path: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(
                f"unknown op {self.op!r}; expected one of {list(OPS)}"
            )
        if self.op == "admit" and self.flow is None:
            raise ProtocolError("admit request: missing 'flow'")
        if self.op in ("release", "query") and not self.flow_name:
            raise ProtocolError(f"{self.op} request: missing 'flow_name'")

    @property
    def target(self) -> str | None:
        """Flow the request concerns (None for stats/snapshot/metrics)."""
        if self.flow is not None:
            return self.flow.name
        return self.flow_name


def request_to_dict(req: Request) -> dict[str, Any]:
    doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "op": req.op}
    if req.id is not None:
        doc["id"] = req.id
    if req.flow is not None:
        doc["flow"] = flow_to_dict(req.flow)
    if req.flow_name is not None:
        doc["flow_name"] = req.flow_name
    if req.at is not None:
        doc["at"] = req.at
    if req.path is not None:
        doc["path"] = req.path
    return doc


def request_from_dict(doc: Mapping[str, Any]) -> Request:
    if not isinstance(doc, Mapping):
        raise ProtocolError("request must be a JSON object")
    version = doc.get("v")
    if not isinstance(version, int):
        raise ProtocolError("request: missing integer protocol version 'v'")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"request protocol v{version} is newer than the supported "
            f"v{PROTOCOL_VERSION}"
        )
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request: missing 'op'")
    flow = None
    if "flow" in doc:
        try:
            flow = flow_from_dict(doc["flow"])
        except Exception as exc:
            raise ProtocolError(f"admit request: bad flow document: {exc}")
    at = doc.get("at")
    if at is not None:
        try:
            at = float(at)
        except (TypeError, ValueError):
            raise ProtocolError(f"request: non-numeric 'at' value {at!r}")
    flow_name = doc.get("flow_name")
    path = doc.get("path")
    return Request(
        op=op,
        id=doc.get("id"),
        flow=flow,
        flow_name=str(flow_name) if flow_name is not None else None,
        at=at,
        path=str(path) if path is not None else None,
    )


def response_to_dict(
    request_id: Any, payload: Mapping[str, Any] | None = None, *,
    ok: bool = True, error: str | None = None,
) -> dict[str, Any]:
    doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": ok}
    if error is not None:
        doc["ok"] = False
        doc["error"] = error
    if payload:
        doc.update(payload)
    return doc


def encode_line(doc: Mapping[str, Any]) -> bytes:
    """Compact one-line JSON encoding with trailing newline."""
    return (
        json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode()


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one JSON-lines message; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("message must be a JSON object")
    return doc
