"""Trace replay: scenario families x arrival processes -> request streams.

The load driver turns any registered scenario family into a
reproducible admission-request stream: the family supplies the
*workload* (a pool of flows, or a recorded churn storyline), an
*arrival process* supplies the timing, and a deterministic seed makes
the whole trace a pure function of its parameters — the same contract
scenario families themselves obey.

Arrival processes:

* ``poisson``  — i.i.d. exponential inter-arrivals at ``rate`` req/s
  (the classic call-arrival model);
* ``burst``    — groups of ``burst_size`` simultaneous requests every
  ``burst_gap`` seconds (the batching/coalescing stress case);
* ``recorded`` — the scenario's own admit/release storyline (base flows
  then churn events) replayed verbatim at a uniform pace.

Generated traces interleave admissions with releases of the oldest live
flow once ``hold`` flows are in flight, so a long trace models a
steady-state service under churn rather than a monotone fill.  Admitted
clones are renamed ``<base>@<seq>`` to keep names unique trace-wide.

A trace serialises to a JSON-lines *request log* in which every line is
a valid :mod:`repro.service.protocol` request — a saved trace can be
piped to a live server verbatim.  :func:`replay_service` drives a
:class:`~repro.service.sharding.ShardedAdmissionService` in micro-
batches, :func:`replay_serial` drives a plain
:class:`~repro.core.admission.AdmissionController` with identical op
semantics (the parity reference), and :func:`replay_tcp` drives a live
server over the wire.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.admission import AdmissionController
from repro.core.context import AnalysisOptions
from repro.model.flow import Flow
from repro.model.network import Network
from repro.scenario.model import Scenario
from repro.service.protocol import (
    Request,
    decode_line,
    encode_line,
    is_retryable,
    request_from_dict,
    request_to_dict,
)
from repro.service.retry import RetryPolicy, connect_with_backoff
from repro.telemetry import tracing as _tracing

ARRIVALS = ("poisson", "burst", "recorded")


@dataclass(frozen=True)
class ReplayTrace:
    """A named, reproducible request stream."""

    name: str
    requests: tuple[Request, ...]

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def admits(self) -> tuple[Request, ...]:
        return tuple(r for r in self.requests if r.op == "admit")


def _arrival_offsets(
    arrival: str,
    n: int,
    *,
    rate: float,
    burst_size: int,
    burst_gap: float,
    seed: int,
) -> list[float]:
    if arrival == "poisson":
        if rate <= 0:
            raise ValueError("poisson arrivals need rate > 0")
        rng = np.random.default_rng(seed)
        return list(np.cumsum(rng.exponential(1.0 / rate, size=n)))
    if arrival == "burst":
        if burst_size < 1:
            raise ValueError("burst arrivals need burst_size >= 1")
        return [(i // burst_size) * burst_gap for i in range(n)]
    if arrival == "recorded":
        if rate <= 0:
            raise ValueError("recorded arrivals need rate > 0")
        return [i / rate for i in range(n)]
    raise ValueError(f"unknown arrival process {arrival!r}; one of {ARRIVALS}")


def trace_from_scenario(
    scenario: Scenario,
    *,
    n_requests: int | None = None,
    arrival: str = "poisson",
    rate: float = 100.0,
    burst_size: int = 16,
    burst_gap: float = 0.05,
    hold: int = 8,
    seed: int = 0,
    name: str | None = None,
) -> ReplayTrace:
    """Build a request stream from a scenario (see module docstring).

    ``recorded`` replays the scenario's own workload events verbatim
    (optionally capped at ``n_requests``); the synthetic processes clone
    flows round-robin from the scenario's admit pool and release the
    oldest live flow once ``hold`` are in flight.
    """
    events = scenario.workload_events()
    ops: list[tuple[str, Flow | None, str | None]] = []
    if arrival == "recorded":
        for ev in events:
            ops.append((ev.action, ev.flow, ev.flow_name))
        if n_requests is not None:
            ops = ops[:n_requests]
    else:
        pool = [ev.flow for ev in events if ev.action == "admit"]
        if not pool:
            raise ValueError(
                f"scenario {scenario.name!r} offers no flows to replay"
            )
        if hold < 1:
            raise ValueError("hold must be >= 1")
        total = 64 if n_requests is None else n_requests
        live: deque[str] = deque()
        seq = 0
        while len(ops) < total:
            if len(live) >= hold:
                ops.append(("release", None, live.popleft()))
                continue
            base = pool[seq % len(pool)]
            clone = dataclasses.replace(base, name=f"{base.name}@{seq}")
            ops.append(("admit", clone, None))
            live.append(clone.name)
            seq += 1
    offsets = _arrival_offsets(
        arrival,
        len(ops),
        rate=rate,
        burst_size=burst_size,
        burst_gap=burst_gap,
        seed=seed,
    )
    requests = tuple(
        Request(
            op=op,
            id=i,
            flow=flow,
            flow_name=flow_name,
            at=round(float(at), 9),
        )
        for i, ((op, flow, flow_name), at) in enumerate(zip(ops, offsets))
    )
    label = name or f"{scenario.name}/{arrival}x{len(requests)}[seed={seed}]"
    return ReplayTrace(name=label, requests=requests)


def trace_from_family(
    family: str,
    params: Mapping[str, Any] | None = None,
    **kwargs: Any,
) -> ReplayTrace:
    """Build a trace straight from a registered scenario family."""
    from repro.scenario.registry import REGISTRY

    scenario = REGISTRY.build(family, **dict(params or {}))
    return trace_from_scenario(scenario, **kwargs)


# ----------------------------------------------------------------------
# Request-log files (JSON lines of protocol requests)
# ----------------------------------------------------------------------
def save_trace(path: str | Path, trace: ReplayTrace) -> None:
    """Write the trace as a replayable protocol request log."""
    with open(path, "wb") as fh:
        for req in trace.requests:
            fh.write(encode_line(request_to_dict(req)))


def load_trace(path: str | Path) -> ReplayTrace:
    """Read a request log back into a trace."""
    path = Path(path)
    requests = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        requests.append(request_from_dict(decode_line(line)))
    return ReplayTrace(name=path.stem, requests=tuple(requests))


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplaySummary:
    """Outcome of one replay run."""

    trace: str
    n_requests: int
    offered: int
    accepted: int
    rejected: int
    released: int
    errors: int
    elapsed_s: float
    #: Accept/reject of every ``admit`` request, in trace order — the
    #: unit of parity between sharded, serial and over-the-wire replays.
    admit_decisions: tuple[bool, ...] = field(repr=False)
    #: Requests re-sent by the TCP driver (reconnects and retryable
    #: error codes); 0 for in-process replays and fault-free runs.
    retries: int = 0

    @property
    def accept_rate(self) -> float:
        return self.accepted / self.offered if self.offered else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.n_requests / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _summarize(
    trace: ReplayTrace,
    payloads: Sequence[Mapping[str, Any]],
    elapsed_s: float,
    retries: int = 0,
) -> ReplaySummary:
    offered = accepted = rejected = released = errors = 0
    decisions: list[bool] = []
    for req, payload in zip(trace.requests, payloads):
        if "error" in payload:
            errors += 1
            if req.op == "admit":
                offered += 1
                rejected += 1
                decisions.append(False)
            continue
        if req.op == "admit":
            offered += 1
            ok = bool(payload.get("accepted"))
            decisions.append(ok)
            if ok:
                accepted += 1
            else:
                rejected += 1
        elif req.op == "release":
            released += 1
    return ReplaySummary(
        trace=trace.name,
        n_requests=trace.n_requests,
        offered=offered,
        accepted=accepted,
        rejected=rejected,
        released=released,
        errors=errors,
        elapsed_s=elapsed_s,
        admit_decisions=tuple(decisions),
        retries=retries,
    )


def _batches(requests: Sequence[Request], batch: int):
    if batch < 1:
        raise ValueError("batch must be >= 1")
    for i in range(0, len(requests), batch):
        yield list(requests[i : i + batch])


def replay_service(service, trace: ReplayTrace, *, batch: int = 16) -> ReplaySummary:
    """Drive a :class:`ShardedAdmissionService` in micro-batches.

    When tracing is enabled in this process, every request is stamped
    with a fresh trace id (``<trace name>#<index>``) so per-request
    spans recorded by the service and its shard workers are
    correlatable — the in-process analogue of a traced TCP replay.
    """
    requests: Sequence[Request] = trace.requests
    if _tracing.TRACER is not None:
        requests = [
            dataclasses.replace(req, trace={"id": f"{trace.name}#{i}"})
            for i, req in enumerate(trace.requests)
        ]
    payloads: list[Mapping[str, Any]] = []
    start = time.perf_counter()
    for chunk in _batches(requests, batch):
        payloads.extend(service.process_batch(chunk))
    return _summarize(trace, payloads, time.perf_counter() - start)


def replay_serial(
    network: Network,
    trace: ReplayTrace,
    options: AnalysisOptions | None = None,
) -> ReplaySummary:
    """Drive a plain serial controller with identical op semantics.

    This is the parity reference: on a single-shard trace the sharded
    service must reproduce these decisions bit for bit.
    """
    ctrl = AdmissionController(network, options)
    payloads: list[Mapping[str, Any]] = []
    start = time.perf_counter()
    for req in trace.requests:
        try:
            if req.op == "admit":
                d = ctrl.request(req.flow)
                payloads.append({"accepted": d.accepted, "reason": d.reason})
            elif req.op == "release":
                ctrl.release(req.flow_name)
                payloads.append({"released": True})
            elif req.op == "query":
                payloads.append(
                    {
                        "admitted": any(
                            f.name == req.flow_name
                            for f in ctrl.admitted_flows
                        )
                    }
                )
            else:
                payloads.append({"error": f"op {req.op!r} not replayable"})
        except (KeyError, ValueError) as exc:
            payloads.append({"error": str(exc)})
    return _summarize(trace, payloads, time.perf_counter() - start)


async def replay_over_tcp(
    host: str,
    port: int,
    trace: ReplayTrace,
    *,
    window: int = 64,
    connect_timeout: float = 5.0,
    retry: RetryPolicy | None = None,
    request_timeout: float | None = None,
    trace_requests: bool = False,
) -> ReplaySummary:
    """Drive a live server; pipelines ``window`` requests at a time.

    With ``trace_requests`` every request carries a client-minted trace
    context (``{"id": "<trace name>#<index>"}``); a tracing server
    adopts those ids for its server/shard spans, so one request's wire
    trip is followable end to end in the exported Chrome trace — and a
    retried request's re-execution (possibly on a respawned worker
    incarnation) shares the original trace id.

    With ``retry`` set, the driver is resilient: connection losses
    reconnect with backoff and re-send the unanswered suffix of the
    current window, retryable error responses (``overloaded``,
    ``deadline_exceeded``, ``shard_unavailable``) are re-sent after a
    backoff delay, and every mutating request carries an idempotency
    key so a re-send of a request the server already executed replays
    the cached response instead of double-applying.  ``request_timeout``
    (seconds per response read) turns a silent stall into a retryable
    connection loss.  The retry budget is ``retry.attempts`` re-send
    rounds per window; past it the replay raises.  Jitter is
    deterministic (see :class:`~repro.service.retry.RetryPolicy`), so a
    faulted replay is as reproducible as a clean one.
    """
    policy = retry
    indexed: list[tuple[int, Request]] = []
    for i, req in enumerate(trace.requests):
        # Stamp the wire id with the trace index so responses can be
        # matched by id: after a mid-batch connection drop the server
        # may have answered a *suffix* of the in-flight window, so
        # arrival order alone would mispair responses with requests.
        changes: dict[str, Any] = {"id": i}
        if policy is not None and req.op in ("admit", "release"):
            changes["idem"] = f"{trace.name}#{i}"
        if trace_requests:
            changes["trace"] = {"id": f"{trace.name}#{i}"}
        indexed.append((i, dataclasses.replace(req, **changes)))

    reader, writer = await connect_with_backoff(
        host, port, timeout=connect_timeout, policy=policy
    )
    results: dict[int, Mapping[str, Any]] = {}
    retries = 0
    start = time.perf_counter()

    async def read_response() -> dict[str, Any]:
        if request_timeout is not None:
            line = await asyncio.wait_for(reader.readline(), request_timeout)
        else:
            line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-replay")
        return decode_line(line)

    async def reconnect() -> None:
        nonlocal reader, writer
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        reader, writer = await connect_with_backoff(
            host, port, timeout=connect_timeout, policy=policy
        )

    try:
        for chunk_start in range(0, len(indexed), max(1, window)):
            pending = indexed[chunk_start : chunk_start + max(1, window)]
            attempt = 0
            while pending:
                if attempt > 0:
                    if policy is None or attempt > policy.attempts:
                        raise RuntimeError(
                            f"replay retries exhausted with "
                            f"{len(pending)} request(s) unanswered"
                        )
                    retries += len(pending)
                    await asyncio.sleep(
                        policy.delay(attempt - 1, key=f"chunk:{chunk_start}")
                    )
                redo: list[tuple[int, Request]] = []
                unanswered: dict[int, tuple[int, Request]] = {
                    idx: (idx, req) for idx, req in pending
                }
                try:
                    for _, req in pending:
                        writer.write(encode_line(request_to_dict(req)))
                    await writer.drain()
                    for _ in range(len(pending)):
                        doc = await read_response()
                        # Match by id (the trace index stamped above): a
                        # connection dropped mid-window may answer only a
                        # subset, so order alone would mispair.
                        entry = unanswered.pop(doc.get("id"), None)
                        if entry is None:
                            continue  # duplicate/stray answer — ignore
                        idx, req = entry
                        if policy is not None and is_retryable(doc):
                            redo.append((idx, req))
                        elif doc.get("ok"):
                            results[idx] = doc
                        else:
                            results[idx] = {
                                "error": doc.get(
                                    "error", "unknown server error"
                                )
                            }
                    pending = redo
                    attempt += 1
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                ):
                    if policy is None:
                        raise
                    # Everything still unanswered (plus any retryable
                    # responses already collected) re-sends on a fresh
                    # connection.  The server-side idempotency cache
                    # makes re-sending an executed-but-unanswered
                    # mutation safe.
                    pending = redo + list(unanswered.values())
                    attempt += 1
                    await reconnect()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
    payloads = [results[i] for i in range(len(indexed))]
    return _summarize(trace, payloads, time.perf_counter() - start, retries)


def replay_tcp(host: str, port: int, trace: ReplayTrace, **kwargs) -> ReplaySummary:
    """Synchronous wrapper around :func:`replay_over_tcp`."""
    return asyncio.run(replay_over_tcp(host, port, trace, **kwargs))


async def _request_over_tcp(host: str, port: int, op: str) -> dict[str, Any]:
    """One no-argument request (``metrics``/``stats``/``health``) to a
    live server; returns the payload without the protocol envelope.

    The read limit is raised well past asyncio's 64 KiB default: a
    tracing server's ``metrics`` response carries the fleet's span ring
    (``trace_spans``) on a single line.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=16 * 1024 * 1024
    )
    try:
        writer.write(encode_line(request_to_dict(Request(op=op, id=0))))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        doc = decode_line(line)
        if not doc.get("ok"):
            raise RuntimeError(
                f"{op} request failed: {doc.get('error', 'unknown error')}"
            )
        return {
            k: v for k, v in doc.items() if k not in ("v", "id", "ok", "trace")
        }
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def _metrics_over_tcp(host: str, port: int) -> dict[str, Any]:
    return await _request_over_tcp(host, port, "metrics")


def fetch_metrics_tcp(host: str, port: int) -> dict[str, Any]:
    """Ask a live server for its telemetry via the ``metrics`` verb."""
    return asyncio.run(_metrics_over_tcp(host, port))


def fetch_stats_tcp(host: str, port: int) -> dict[str, Any]:
    """Ask a live server for its counters via the ``stats`` verb."""
    return asyncio.run(_request_over_tcp(host, port, "stats"))


def fetch_health_tcp(host: str, port: int) -> dict[str, Any]:
    """Ask a live server for its liveness via the ``health`` verb."""
    return asyncio.run(_request_over_tcp(host, port, "health"))


async def _rebalance_over_tcp(
    host: str,
    port: int,
    shard_map: Mapping[str, int] | None,
    n_shards: int | None,
    connect_timeout: float,
) -> dict[str, Any]:
    reader, writer = await connect_with_backoff(
        host, port, timeout=connect_timeout
    )
    try:
        req = Request(
            op="rebalance", id=0, shard_map=shard_map, n_shards=n_shards
        )
        writer.write(encode_line(request_to_dict(req)))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        doc = decode_line(line)
        if not doc.get("ok"):
            raise RuntimeError(
                f"rebalance failed: {doc.get('error', 'unknown error')}"
            )
        return {
            k: v for k, v in doc.items() if k not in ("v", "id", "ok", "trace")
        }
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


def rebalance_tcp(
    host: str,
    port: int,
    shard_map: Mapping[str, int] | None = None,
    *,
    n_shards: int | None = None,
    connect_timeout: float = 5.0,
) -> dict[str, Any]:
    """Ask a live server to move to a new shard layout (the ``rebalance``
    verb, protocol v3) and return its move summary.

    Connects with the shared backoff policy (``connect_timeout`` is the
    overall deadline); the server performs the cutover atomically
    between batches, so concurrent replaying clients only ever observe
    the old layout or the new one.
    """
    return asyncio.run(
        _rebalance_over_tcp(host, port, shard_map, n_shards, connect_timeout)
    )
