"""Warm-standby replication for process-backed shards.

PR 7's supervised recovery is *cold*: a dead shard worker is respawned
and its state rebuilt from the baseline snapshot plus a full journal
replay, so every crash costs a fresh controller construction, a restore
exchange and up to ``journal_limit`` replayed ops.  This module makes
failover *warm*: a :class:`StandbyReplica` is a second worker process
holding the same state, kept current by **ship-on-commit** — every op
the primary commits to its journal (accepted admits, successful
releases; the only state-changing ops) is immediately streamed to the
standby over its own pipe.

The accounting is sequence-based and exact:

* ``shipped`` is the absolute committed-op sequence covered by messages
  *sent* to the standby;
* ``applied`` (the **high-water mark**) is the sequence covered by
  messages the standby has *acknowledged* — every shipped batch is
  acked by the worker's normal payload reply, drained opportunistically
  (non-blocking) after each ship and fully (blocking) at promotion
  time.  The standby therefore holds exactly
  ``baseline + journal[:applied]`` and is **never ahead of commit**:
  ops are only ever shipped after the primary journaled them.

On primary death the supervisor *promotes* the standby instead of cold
restarting: it drains outstanding acks, replays only the journal ops
past the high-water mark (typically zero — a few only when shipping
was severed), re-runs the interrupted batch, and adopts the standby's
pipe/process as the new primary.  Failover cost is therefore bounded by
the ship lag, not the journal length — ``service.shard.N.failover_s``
vs ``recovery_s`` in the benchmarks makes the difference measurable.
Because the standby state is rebuilt from exactly the same recipe the
cold path uses (snapshot + committed-op journal, both byte-exact),
promoted decisions and exported state documents are byte-identical to
a fault-free run — the tier-1 replication tests assert it.

The same snapshot + journal catch-up recipe doubles as the transfer
path for **live rebalancing**:
:func:`reassign_shard_states` re-routes an exported service state under
a new :class:`~repro.service.sharding.ShardRouter`, and
``ShardedAdmissionService.rebalance`` installs the result into freshly
caught-up backends before atomically cutting over between batches.

Standby workers run the same telemetry/tracing configuration as
primaries, but their registries are never polled while they are
standbys — only after promotion, where (exactly like a cold-respawned
worker) their counts reflect the replayed journal plus everything
served since.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.model.flow import Flow
from repro.service.faults import FaultPlan, FaultSpec
from repro.telemetry import tracing as _tracing
from repro.util.mp import mp_context

__all__ = ["StandbyReplica", "reassign_shard_states"]


class StandbyReplica:
    """One shard's warm standby worker, fed by the primary's journal.

    Owns a dedicated worker process (the same
    :func:`~repro.service.sharding._shard_worker` body the primary
    runs) plus the sequence accounting described in the module
    docstring.  All sends are non-blocking from the supervisor's point
    of view — the standby applies shipped ops concurrently with the
    primary serving — and every exchange failure marks the replica
    failed rather than raising, so a dead standby can never take the
    serving path down with it.
    """

    def __init__(
        self,
        worker_args: tuple,
        *,
        shard_id: int,
        incarnation: int,
        generation: int = 0,
        fault_plan: FaultPlan | None = None,
        op_timeout: float | None = None,
    ):
        from repro.service.sharding import _shard_worker

        self.shard_id = shard_id
        self.incarnation = incarnation
        self.generation = generation
        self._op_timeout = op_timeout
        #: Absolute committed-op seq covered by acked messages (hwm).
        self.applied = 0
        #: Absolute committed-op seq covered by sent messages.
        self.shipped = 0
        #: Committed-op seq at which the ship link severs (drop_journal
        #: fault), or None.
        self.drop_at: int | None = None
        #: True once the ship link is severed or the standby failed.
        self.severed = False
        self._failed = False
        self._detached = False
        #: Absolute seq the standby reaches after acking each
        #: outstanding message (FIFO, strictly increasing).
        self._inflight: deque[int] = deque()
        faults: tuple[FaultSpec, ...] = ()
        if fault_plan is not None:
            # kill_standby faults become plain in-worker kills keyed to
            # the *standby's* op counter (restore doesn't count; every
            # shipped/caught-up op does), filtered to this generation.
            faults = tuple(
                FaultSpec(kind="kill", at=f.at, shard=shard_id)
                for f in fault_plan.standby_faults(
                    shard=shard_id, generation=generation
                )
            )
            self.drop_at = fault_plan.drop_journal_at(shard_id)
        ctx = mp_context()
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(
                child, *worker_args, shard_id,
                _telemetry.enabled(), faults,
                _tracing.tracing_enabled(), incarnation,
            ),
            daemon=True,
        )
        self.proc.start()
        child.close()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Usable as a promotion target right now (process view)."""
        return (
            not self._failed
            and not self._detached
            and self.proc.is_alive()
        )

    # ------------------------------------------------------------------
    def catch_up(
        self,
        baseline: tuple[tuple[Flow, ...], dict] | None,
        journal: Sequence[tuple],
        base_seq: int,
    ) -> None:
        """Send the full recovery recipe (non-blocking): restore the
        baseline (committed ops ``[0, base_seq)``), then replay the
        journal (``[base_seq, base_seq + len(journal))``).  Acks drain
        lazily like any shipped batch.  Called exactly once, on a
        freshly spawned replica."""
        try:
            if baseline is not None:
                self.conn.send(("restore", baseline[0], baseline[1]))
                self._inflight.append(base_seq)
            if journal:
                self.conn.send(("batch", list(journal)))
                self._inflight.append(base_seq + len(journal))
            self.shipped = base_seq + len(journal)
            if not self._inflight:
                # Nothing to transfer: current as of base_seq already.
                self.applied = base_seq
        except (BrokenPipeError, OSError):
            self._fail()

    def ship(self, ops: Sequence[tuple], start_seq: int) -> None:
        """Stream one batch of just-committed ops (``start_seq`` is the
        absolute seq of ``ops[0]``), honouring a ``drop_journal`` point
        mid-batch, then opportunistically drain acks."""
        if self._failed or self._detached or self.severed:
            return
        ops = list(ops)
        if self.drop_at is not None and start_seq + len(ops) > self.drop_at:
            ops = ops[: max(self.drop_at - start_seq, 0)]
            self.severed = True
        if ops:
            try:
                self.conn.send(("batch", ops))
                self._inflight.append(start_seq + len(ops))
                self.shipped = start_seq + len(ops)
            except (BrokenPipeError, OSError):
                self._fail()
                return
        self.drain()

    def drain(self, timeout_s: float | None = 0.0) -> bool:
        """Collect available acks; ``timeout_s`` bounds each wait
        (0 = non-blocking poll, None = wait forever).  Returns True
        when nothing is left in flight."""
        if self._detached or self._failed:
            return not self._inflight
        while self._inflight:
            try:
                if timeout_s is not None and not self.conn.poll(timeout_s):
                    return False
                self.conn.recv()
            except (EOFError, OSError):
                self._fail()
                return False
            self.applied = self._inflight.popleft()
        return True

    def sync(self, timeout_s: float | None = None) -> bool:
        """Block until every in-flight message is acked (the promotion
        barrier); per-message waits bounded by ``timeout_s`` falling
        back to the shard's ``op_timeout``."""
        return self.drain(
            timeout_s if timeout_s is not None else self._op_timeout
        )

    # ------------------------------------------------------------------
    def detach(self) -> tuple[Any, Any]:
        """Hand the worker over for promotion: the caller now owns the
        pipe and process; this replica will never touch them again."""
        self._detached = True
        return self.conn, self.proc

    def _fail(self) -> None:
        self._failed = True
        self.severed = True

    def destroy(self, timeout: float = 1.0) -> None:
        """Force the standby down (dead primary cleanup / injected
        promotion kill)."""
        if self._detached:
            return
        self._detached = True
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=timeout)
        if self.proc.is_alive():  # pragma: no cover - stubborn worker
            self.proc.kill()
            self.proc.join(timeout=timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Polite shutdown: stop shipping, let queued ops finish, then
        close — escalating like the primary's ``close()``."""
        if self._detached:
            return
        if not self._failed:
            self.drain(timeout_s=timeout)
            try:
                self.conn.send(("close",))
                if self.conn.poll(timeout):
                    self.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self.destroy(timeout=timeout)


# ----------------------------------------------------------------------
# Rebalancing: re-route an exported service state under a new router
# ----------------------------------------------------------------------
def reassign_shard_states(
    states: Sequence[tuple[Sequence[Flow], Mapping]],
    flow_shards: Mapping[str, Iterable[int]],
    router,
) -> tuple[list[tuple[tuple[Flow, ...], dict]], dict[str, tuple[int, ...]]]:
    """Re-partition exported per-shard states for a new shard layout.

    ``states`` are ``export_shard_states()`` blocks of the *old*
    layout, ``flow_shards`` the old admission-order flow → shard-ids
    mapping, ``router`` the new :class:`ShardRouter`.  Every admitted
    flow is re-routed and moved — with its converged jitter-table
    entries — to its new owner shard(s), preserving admission order, so
    restoring the result is byte-identical to restoring a snapshot into
    a service built with the new map (the rebalance equivalence tests
    assert exactly that).

    Flows admitted cross-shard are refused: each old owner converged
    the flow against its own interferer set (the documented two-phase
    approximation), so there is no single exact state to move.
    """
    cross = sorted(
        name for name, sids in flow_shards.items() if len(tuple(sids)) > 1
    )
    if cross:
        raise ValueError(
            f"cannot rebalance with cross-shard admitted flows: {cross}; "
            "release them first (their per-shard states diverge by design)"
        )
    flow_by_name: dict[str, Flow] = {}
    jitters_by_name: dict[str, dict] = {}
    for flows, jitters in states:
        for flow in flows:
            flow_by_name[flow.name] = flow
        for key, values in jitters.items():
            jitters_by_name.setdefault(key[0], {})[key] = values
    new_flows: list[list[Flow]] = [[] for _ in range(router.n_shards)]
    new_jitters: list[dict] = [{} for _ in range(router.n_shards)]
    new_flow_shards: dict[str, tuple[int, ...]] = {}
    for name in flow_shards:
        flow = flow_by_name.get(name)
        if flow is None:
            raise ValueError(
                f"flow {name!r} is in flow_shards but in no shard state"
            )
        sids = router.shards_for_flow(flow)
        new_flow_shards[name] = sids
        entries = jitters_by_name.get(name, {})
        for sid in sids:
            new_flows[sid].append(flow)
            new_jitters[sid].update(entries)
    new_states = [
        (tuple(flows), jitters)
        for flows, jitters in zip(new_flows, new_jitters)
    ]
    return new_states, new_flow_shards
