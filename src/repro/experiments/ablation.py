"""E8: ablations of the documented reconstruction choices.

Two switches are ablated (DESIGN.md OCR table):

* ``strict_paper`` — the equations exactly as printed (remainder
  fragments without IP header / minimum padding; single-Ethernet-frame
  own-flow terms at switches) vs the corrected model.  Expectation:
  strict bounds are *smaller* (they omit real work), which is exactly
  why the corrected model is the default — the simulator can exceed a
  strict bound for multi-fragment packets.
* ``use_jitter`` — generalized-jitter propagation on vs off.
  Expectation: ignoring jitter lowers the bound (and would be unsound);
  the delta measures how much of the bound is jitter amplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.experiments.endtoend import build_example_scenario
from repro.util.tables import Table
from repro.util.units import mbps, ms


@dataclass(frozen=True)
class AblationResult:
    bounds: Mapping[str, Mapping[str, float]]  # variant -> flow -> worst R

    def render(self) -> str:
        variants = list(self.bounds)
        flows = sorted(next(iter(self.bounds.values())))
        t = Table(
            ["flow"] + [f"{v} (ms)" for v in variants],
            title="E8: ablation of reconstruction choices (worst bound)",
        )
        for fname in flows:
            t.add_row(
                [fname] + [self.bounds[v][fname] * 1e3 for v in variants]
            )
        return t.render()

    def variant(self, name: str) -> Mapping[str, float]:
        return self.bounds[name]


def run_ablation(
    *, speed_bps: float = mbps(100), mpeg_jitter: float = ms(25)
) -> AblationResult:
    """Compare bound variants on the E3 example scenario.

    The MPEG flow's source jitter defaults to 25 ms here (a source
    buffering nearly one frame time) rather than E3's 1 ms: with tiny
    jitters the interference functions sit on the same plateau in every
    variant and the jitter ablation would show no difference.
    """
    variants = {
        "corrected": AnalysisOptions(),
        "strict_paper": AnalysisOptions(strict_paper=True),
        "no_jitter": AnalysisOptions(use_jitter=False),
        "strict_no_jitter": AnalysisOptions(strict_paper=True, use_jitter=False),
    }
    bounds: dict[str, dict[str, float]] = {}
    for label, opts in variants.items():
        net, flows = build_example_scenario(
            speed_bps=speed_bps, mpeg_jitter=mpeg_jitter
        )
        res = holistic_analysis(net, flows, opts)
        bounds[label] = {
            name: r.worst_response for name, r in res.flow_results.items()
        }
    return AblationResult(bounds=bounds)
