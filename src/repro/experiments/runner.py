"""Run every experiment and print its table.

Usage::

    python -m repro.experiments.runner            # all experiments
    python -m repro.experiments.runner E1 E4      # a subset
    python -m repro.experiments.runner --quick    # reduced parameters
    python -m repro.experiments.runner --jobs 4 E4 E5 E7   # parallel sweeps

The sweep experiments (E4, E5, E7) route their scenario grids through
:class:`repro.scenario.campaign.CampaignRunner`; ``--jobs N`` fans
their scenarios over N worker processes without changing any result
(campaign payloads are bit-identical for any job count).  Quick mode is
a *scenario-grid override* for those experiments: it swaps the grid
axes (fewer seeds/trials/hop counts) rather than ad-hoc kwargs.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.experiments.ablation import run_ablation
from repro.experiments.acceptance import run_acceptance_sweep, run_burstiness_sweep
from repro.experiments.convergence import run_convergence_study
from repro.experiments.endtoend import run_endtoend_example
from repro.experiments.sensitivity import run_circ_sensitivity, run_hop_sweep
from repro.experiments.validation import run_stage_tightness, run_validation
from repro.experiments.worked_example import run_circ_examples, run_worked_example


#: Experiments whose sweeps run through the campaign engine and accept
#: ``jobs=`` / ``grid=`` keyword arguments.
CAMPAIGN_EXPERIMENTS = frozenset({"E4", "E5", "E7"})


def _quick_overrides(quick: bool) -> dict:
    if not quick:
        return {}
    return {
        # Campaign experiments: quick mode overrides the scenario grid.
        "E4": dict(grid=dict(seed=(0, 1), duration=1.0)),
        "E5": dict(
            grid=dict(utilization=(0.2, 0.4, 0.6, 0.8), trial=(0, 1, 2, 3))
        ),
        "E7": dict(grid=dict(n_switches=(1, 2, 4))),
        # Remaining experiments keep plain kwarg overrides.
        "E4b": dict(duration=1.0),
        "E5b": dict(trials=4, burstiness_levels=(1.0, 4.0, 16.0)),
        "E6": dict(cost_scales=(0.5, 1.0, 4.0), processor_counts=(1, 2)),
    }


EXPERIMENTS: dict[str, Callable[..., object]] = {
    "E1": run_worked_example,
    "E2": run_circ_examples,
    "E3": run_endtoend_example,
    "E4": run_validation,
    "E4b": run_stage_tightness,
    "E5": run_acceptance_sweep,
    "E5b": run_burstiness_sweep,
    "E6": run_circ_sensitivity,
    "E7": run_hop_sweep,
    "E8": run_ablation,
    "E9": run_convergence_study,
}


def run_all(
    selected: list[str] | None = None,
    *,
    quick: bool = False,
    jobs: int = 1,
) -> str:
    """Run experiments and return the combined report text."""
    overrides = _quick_overrides(quick)
    names = selected or list(EXPERIMENTS)
    chunks: list[str] = []
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {list(EXPERIMENTS)}"
            )
        kwargs = dict(overrides.get(name, {}))
        if jobs != 1 and name in CAMPAIGN_EXPERIMENTS:
            kwargs["jobs"] = jobs
        result = EXPERIMENTS[name](**kwargs)
        chunks.append(f"==== {name} ====")
        chunks.append(result.render())
        chunks.append("")
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    jobs = 1
    if "--jobs" in args:
        at = args.index("--jobs")
        try:
            jobs = int(args[at + 1])
        except (IndexError, ValueError):
            raise SystemExit("--jobs needs an integer argument")
        del args[at : at + 2]
    print(run_all(args or None, quick=quick, jobs=jobs))


if __name__ == "__main__":
    main()
