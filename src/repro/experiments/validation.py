"""E4: analysis-vs-simulation soundness and tightness.

For seeded random workloads on a small edge topology, run the holistic
analysis and both simulator modes; record, per (flow, frame), the
analysis bound, the worst simulated response and their ratio.  The
load-bearing claim: **no simulated response ever exceeds its bound**
(the analysis is an upper bound).  The tightness ratio quantifies the
pessimism the paper accepts in exchange for guarantees.

The sweep itself runs through the campaign engine: each seed becomes a
``random-line`` scenario (or a hand-built :class:`Scenario` when the
topology/options are overridden) fanned over a
:class:`~repro.scenario.campaign.CampaignRunner` — pass ``jobs=N`` to
parallelise the seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Mapping, Sequence

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.network import Network
from repro.scenario.campaign import CampaignRunner, action_validate
from repro.scenario.model import Scenario
from repro.scenario.registry import expand_grid, scenario_grid
from repro.sim.simulator import SimConfig, simulate
from repro.util.tables import Table
from repro.workloads.generator import RandomFlowConfig, random_flow_set
from repro.workloads.topologies import line_network


@dataclass(frozen=True)
class ValidationRow:
    """One (seed, flow, frame, sim-mode) comparison."""

    seed: int
    flow: str
    frame: int
    mode: str
    bound: float
    sim_worst: float
    samples: int

    @property
    def sound(self) -> bool:
        """Bound dominates the simulation (the claim under test)."""
        return self.sim_worst <= self.bound + 1e-12

    @property
    def tightness(self) -> float:
        """sim/bound in (0, 1]; higher = tighter analysis."""
        if self.bound <= 0 or self.sim_worst < 0:
            return math.nan
        return self.sim_worst / self.bound


@dataclass(frozen=True)
class ValidationResult:
    rows: tuple[ValidationRow, ...]
    skipped_unschedulable: int

    @property
    def all_sound(self) -> bool:
        return all(r.sound for r in self.rows)

    @property
    def violations(self) -> tuple[ValidationRow, ...]:
        return tuple(r for r in self.rows if not r.sound)

    @property
    def mean_tightness(self) -> float:
        vals = [r.tightness for r in self.rows if not math.isnan(r.tightness)]
        return sum(vals) / len(vals) if vals else math.nan

    @property
    def max_tightness(self) -> float:
        vals = [r.tightness for r in self.rows if not math.isnan(r.tightness)]
        return max(vals) if vals else math.nan

    def render(self) -> str:
        t = Table(
            ["seed", "mode", "flows*frames", "sound", "mean sim/bound", "max sim/bound"],
            title="E4: analysis bound vs simulated worst response",
        )
        by_key: dict[tuple[int, str], list[ValidationRow]] = {}
        for r in self.rows:
            by_key.setdefault((r.seed, r.mode), []).append(r)
        for (seed, mode), rows in sorted(by_key.items()):
            ts = [r.tightness for r in rows if not math.isnan(r.tightness)]
            t.add_row(
                [
                    seed,
                    mode,
                    len(rows),
                    all(r.sound for r in rows),
                    sum(ts) / len(ts) if ts else math.nan,
                    max(ts) if ts else math.nan,
                ]
            )
        summary = (
            f"overall: {len(self.rows)} comparisons, "
            f"violations={len(self.violations)}, "
            f"mean tightness={self.mean_tightness:.3f}, "
            f"max tightness={self.max_tightness:.3f}, "
            f"unschedulable sets skipped={self.skipped_unschedulable}"
        )
        return t.render() + "\n" + summary


def _override_scenario(
    point: Mapping,
    network: Network | None,
    options: AnalysisOptions | None,
) -> Scenario:
    """One E4 scenario with a caller-supplied topology or options."""
    net = network or line_network(2, hosts_per_switch=2)
    flows = random_flow_set(
        net,
        n_flows=point["n_flows"],
        total_utilization=point["utilization"],
        seed=point["seed"],
        config=RandomFlowConfig(n_frames_range=(1, 5)),
    )
    return Scenario(
        name=f"validation[seed={point['seed']}]",
        network=net,
        flows=tuple(flows),
        options=options or AnalysisOptions(),
        sim=SimConfig(duration=point["duration"]),
    )


def run_validation(
    *,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    n_flows: int = 4,
    utilization: float = 0.45,
    duration: float = 2.0,
    modes: Sequence[str] = ("event", "rotation"),
    network: Network | None = None,
    options: AnalysisOptions | None = None,
    jobs: int = 1,
    grid: Mapping | None = None,
) -> ValidationResult:
    """Run the soundness study over seeded random workloads.

    The seed sweep is a scenario grid over the ``random-line`` family;
    ``grid`` overrides its axes (quick mode passes
    ``dict(seed=(0, 1), duration=1.0)``) and ``jobs`` fans the
    scenarios over a campaign worker pool.
    """
    axes: dict = dict(
        seed=tuple(seeds),
        n_flows=n_flows,
        utilization=utilization,
        duration=duration,
    )
    if grid:
        axes.update(grid)
    points = expand_grid(**axes)
    if network is None and options is None:
        units: Sequence = scenario_grid(
            "random-line", n_frames_min=1, n_frames_max=5, **axes
        )
    else:
        units = [_override_scenario(p, network, options) for p in points]
    action = (
        "validate"
        if tuple(modes) == ("event", "rotation")
        else partial(action_validate, modes=tuple(modes))
    )
    results = CampaignRunner(jobs=jobs, actions=(action,)).run(units)

    rows: list[ValidationRow] = []
    skipped = 0
    for point, res in zip(points, results):
        if not res.payload["converged"]:
            skipped += 1
            continue
        for r in res.payload["rows"]:
            rows.append(
                ValidationRow(
                    seed=point["seed"],
                    flow=r["flow"],
                    frame=r["frame"],
                    mode=r["mode"],
                    bound=r["bound"],
                    sim_worst=r["sim_worst"],
                    samples=r["samples"],
                )
            )
    return ValidationResult(rows=tuple(rows), skipped_unschedulable=skipped)


# ----------------------------------------------------------------------
# Per-stage tightness (E4 companion study)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageTightnessRow:
    """Cumulative bound vs worst simulated latency up to one route node."""

    node: str
    cumulative_bound: float
    sim_worst: float

    @property
    def tightness(self) -> float:
        if self.cumulative_bound <= 0:
            return math.nan
        return self.sim_worst / self.cumulative_bound


@dataclass(frozen=True)
class StageTightnessResult:
    flow_name: str
    frame: int
    rows: tuple[StageTightnessRow, ...]

    @property
    def sound(self) -> bool:
        return all(r.sim_worst <= r.cumulative_bound + 1e-9 for r in self.rows)

    def render(self) -> str:
        t = Table(
            ["route node", "cumulative bound (ms)", "sim worst (ms)", "sim/bound"],
            title=(
                f"E4b: per-stage tightness of {self.flow_name!r} frame "
                f"{self.frame} (cumulative latency up to each node)"
            ),
        )
        for r in self.rows:
            t.add_row(
                [
                    r.node,
                    r.cumulative_bound * 1e3,
                    r.sim_worst * 1e3,
                    r.tightness,
                ]
            )
        return t.render()


def run_stage_tightness(
    *,
    duration: float = 2.0,
    options: AnalysisOptions | None = None,
) -> StageTightnessResult:
    """Localise the analysis pessimism along the route.

    Uses the E3 scenario's MPEG flow: for its worst frame (the I+P
    packet), compare the cumulative analysis bound after each link
    stage with the worst simulated cumulative latency at the matching
    route node (per-hop records of the simulator).
    """
    from repro.experiments.endtoend import build_example_scenario

    net, flows = build_example_scenario()
    analysis = holistic_analysis(net, flows, options)
    mpeg = next(f for f in flows if f.name == "mpeg")
    frame = analysis.result("mpeg").frame(0)

    # Cumulative bound at each node reached by a link stage.
    cumulative: dict[str, float] = {}
    acc = mpeg.spec.jitters[0]
    for stage in frame.stages:
        acc += stage.response
        if stage.resource[0] == "link":
            cumulative[stage.resource[2]] = acc

    trace = simulate(
        net, flows, config=SimConfig(duration=duration, switch_mode="rotation")
    )
    worst: dict[str, float] = {node: 0.0 for node in cumulative}
    for p in trace.completed_packets("mpeg", 0):
        for node, latency in p.hop_latencies(mpeg.route):
            if node in worst:
                worst[node] = max(worst[node], latency)

    rows = tuple(
        StageTightnessRow(
            node=node,
            cumulative_bound=cumulative[node],
            sim_worst=worst[node],
        )
        for node in mpeg.route[1:]
        if node in cumulative
    )
    return StageTightnessResult(flow_name="mpeg", frame=0, rows=rows)
