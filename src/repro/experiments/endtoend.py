"""E3: end-to-end bounds on the paper's example network (Figs. 1/2/6).

The Fig. 2 scenario: the MPEG IBBPBBPBB flow from end host 0 to end
host 3 over switches 4 and 6, plus cross traffic exercising every
analysis stage — a VoIP call n1 → n2 (crossing both switches on partly
shared links) and a lower-priority bulk flow n1 → n3 sharing the
congested 4→6→3 path.  The result reports the per-stage response-time
breakdown of every frame of the MPEG flow — the quantity Fig. 6's
algorithm produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.core.results import HolisticResult
from repro.model.flow import Flow
from repro.model.network import Network
from repro.scenario.registry import build_scenario
from repro.util.tables import Table
from repro.util.units import mbps, ms


@dataclass(frozen=True)
class EndToEndResult:
    network: Network
    flows: tuple[Flow, ...]
    analysis: HolisticResult

    @property
    def mpeg_worst_response(self) -> float:
        return self.analysis.result("mpeg").worst_response

    def render(self) -> str:
        head = Table(
            ["flow", "route", "prio", "worst R (ms)", "deadline (ms)", "ok"],
            title="E3: end-to-end bounds on the Fig. 1 network",
        )
        for f in self.flows:
            r = self.analysis.result(f.name)
            head.add_row(
                [
                    f.name,
                    "->".join(f.route),
                    f.priority,
                    r.worst_response * 1e3,
                    min(f.spec.deadlines) * 1e3,
                    r.schedulable,
                ]
            )
        detail = Table(
            ["frame k", "R (ms)"] + [s for s, _ in self._stage_labels()],
            title="per-stage breakdown of flow 'mpeg' (ms)",
        )
        for fr in self.analysis.result("mpeg").frames:
            detail.add_row(
                [fr.frame, fr.response * 1e3]
                + [s.response * 1e3 for s in fr.stages]
            )
        return head.render() + "\n" + detail.render()

    def _stage_labels(self) -> list[tuple[str, None]]:
        frame0 = self.analysis.result("mpeg").frames[0]
        return [(label, None) for label, _ in frame0.stage_breakdown()]


def build_example_scenario(
    *,
    speed_bps: float = mbps(100),
    mpeg_jitter: float = ms(1),
    options: AnalysisOptions | None = None,
) -> tuple[Network, list[Flow]]:
    """The Fig. 1 network with the Fig. 2 flow plus cross traffic.

    10 Mbit/s (the worked example's speed) is too slow to carry the MPEG
    stream alongside cross traffic through a single uplink, so the
    end-to-end experiment uses 100 Mbit/s links by default (the speed of
    the commodity switches the paper targets); pass ``speed_bps`` to
    explore other operating points.

    The construction lives in the ``paper-example`` scenario family
    (:mod:`repro.scenario.families`); this wrapper keeps the historic
    ``(network, flows)`` return shape.
    """
    scenario = build_scenario(
        "paper-example", speed_bps=speed_bps, mpeg_jitter=mpeg_jitter
    )
    return scenario.network, list(scenario.flows)


def run_endtoend_example(
    *,
    speed_bps: float = mbps(100),
    options: AnalysisOptions | None = None,
) -> EndToEndResult:
    """Run the holistic analysis on the example scenario."""
    net, flows = build_example_scenario(speed_bps=speed_bps, options=options)
    analysis = holistic_analysis(net, flows, options)
    return EndToEndResult(network=net, flows=tuple(flows), analysis=analysis)
