"""E6 + E7: sensitivity studies.

E6 — "It can be seen that CIRC(N), the time required until a task is
served again, heavily influences the delay" (paper conclusions).  Sweep
the switch task costs (scaling CROUTE+CSEND) and the processor count
(the conclusions' multiprocessor partitioning) and report the MPEG
flow's end-to-end bound.

E7 — the Fig. 6 composition is per-resource additive, so the bound
grows essentially linearly in the hop count; sweep path length on a
line topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.network import SwitchConfig
from repro.util.tables import Table
from repro.util.units import mbps, ms, us
from repro.workloads.mpeg import paper_fig3_spec
from repro.workloads.topologies import line_network


@dataclass(frozen=True)
class CircSweepRow:
    label: str
    circ_us: float
    bound: float
    schedulable: bool


@dataclass(frozen=True)
class CircSensitivityResult:
    rows: tuple[CircSweepRow, ...]

    def render(self) -> str:
        t = Table(
            ["switch configuration", "CIRC (us)", "end-to-end bound (ms)", "ok"],
            title="E6: end-to-end bound vs CIRC (conclusions claim)",
        )
        for r in self.rows:
            t.add_row([r.label, r.circ_us, r.bound * 1e3, r.schedulable])
        return t.render()

    def monotone_in_circ(self) -> bool:
        """Bound never decreases as CIRC grows (the paper's claim)."""
        ordered = sorted(self.rows, key=lambda r: r.circ_us)
        bounds = [r.bound for r in ordered if r.schedulable]
        return all(a <= b + 1e-12 for a, b in zip(bounds, bounds[1:]))


def _mpeg_over_line(
    n_switches: int,
    switch_config: SwitchConfig,
    *,
    speed_bps: float,
    deadline: float,
) -> tuple:
    net = line_network(
        n_switches,
        hosts_per_switch=2,  # two hosts so a 1-switch line still has
        speed_bps=speed_bps,  # distinct endpoints
        switch_config=switch_config,
    )
    route = (
        "h0_0",
        *[f"sw{s}" for s in range(n_switches)],
        f"h{n_switches - 1}_1",
    )
    flow = Flow(
        name="mpeg",
        spec=paper_fig3_spec(deadline=deadline),
        route=route,
        priority=5,
    )
    return net, flow


def run_circ_sensitivity(
    *,
    cost_scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    processor_counts: Sequence[int] = (1, 2, 4),
    n_switches: int = 3,
    n_interfaces_factor: int = 4,
    speed_bps: float = mbps(100),
    deadline: float = ms(200),
    options: AnalysisOptions | None = None,
) -> CircSensitivityResult:
    """Sweep CIRC via task-cost scaling and processor counts.

    ``n_interfaces_factor`` pads each switch with extra idle hosts so
    ``NINTERFACES`` (and hence CIRC) is realistic for an edge switch.
    """
    rows: list[CircSweepRow] = []
    for scale in cost_scales:
        cfg = SwitchConfig(c_route=us(2.7) * scale, c_send=us(1.0) * scale)
        net, flow = _mpeg_over_line(
            n_switches, cfg, speed_bps=speed_bps, deadline=deadline
        )
        _pad_interfaces(net, n_interfaces_factor, speed_bps)
        res = holistic_analysis(net, [flow], options)
        circ = net.circ("sw1")
        rows.append(
            CircSweepRow(
                label=f"task costs x{scale:g}",
                circ_us=circ * 1e6,
                bound=res.result("mpeg").worst_response,
                schedulable=res.schedulable,
            )
        )
    for m in processor_counts:
        cfg = SwitchConfig(c_route=us(2.7), c_send=us(1.0), n_processors=m)
        net, flow = _mpeg_over_line(
            n_switches, cfg, speed_bps=speed_bps, deadline=deadline
        )
        _pad_interfaces(net, n_interfaces_factor, speed_bps, multiple_of=m)
        res = holistic_analysis(net, [flow], options)
        circ = net.circ("sw1")
        rows.append(
            CircSweepRow(
                label=f"{m} processor(s)",
                circ_us=circ * 1e6,
                bound=res.result("mpeg").worst_response,
                schedulable=res.schedulable,
            )
        )
    return CircSensitivityResult(rows=tuple(rows))


def _pad_interfaces(net, factor: int, speed_bps: float, *, multiple_of: int = 1) -> None:
    """Attach idle hosts so every switch has >= factor interfaces (and a
    count divisible by the processor count)."""
    switches = [n.name for n in net.nodes() if n.is_switch]
    for sw in switches:
        current = net.n_interfaces(sw)
        target = max(factor, current)
        if target % multiple_of:
            target += multiple_of - (target % multiple_of)
        for i in range(target - current):
            pad = f"pad_{sw}_{i}"
            net.add_endhost(pad)
            net.add_duplex_link(pad, sw, speed_bps=speed_bps)


@dataclass(frozen=True)
class HopSweepRow:
    n_switches: int
    hops: int
    bound: float
    per_hop: float


@dataclass(frozen=True)
class HopSweepResult:
    rows: tuple[HopSweepRow, ...]

    def render(self) -> str:
        t = Table(
            ["switches", "hops", "bound (ms)", "bound/hop (ms)"],
            title="E7: end-to-end bound vs hop count",
        )
        for r in self.rows:
            t.add_row([r.n_switches, r.hops, r.bound * 1e3, r.per_hop * 1e3])
        return t.render()

    def roughly_linear(self, tolerance: float = 0.5) -> bool:
        """Per-hop cost varies by at most ``tolerance`` relative spread."""
        per_hop = [r.per_hop for r in self.rows]
        lo, hi = min(per_hop), max(per_hop)
        return (hi - lo) <= tolerance * hi


def run_hop_sweep(
    *,
    switch_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
    speed_bps: float = mbps(100),
    deadline: float = ms(500),
    options: AnalysisOptions | None = None,
) -> HopSweepResult:
    """End-to-end bound of the MPEG flow vs path length."""
    rows: list[HopSweepRow] = []
    for n in switch_counts:
        net, flow = _mpeg_over_line(
            n, SwitchConfig(), speed_bps=speed_bps, deadline=deadline
        )
        res = holistic_analysis(net, [flow], options)
        bound = res.result("mpeg").worst_response
        hops = flow.hops()
        rows.append(
            HopSweepRow(
                n_switches=n, hops=hops, bound=bound, per_hop=bound / hops
            )
        )
    return HopSweepResult(rows=tuple(rows))
