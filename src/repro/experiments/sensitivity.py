"""E6 + E7: sensitivity studies.

E6 — "It can be seen that CIRC(N), the time required until a task is
served again, heavily influences the delay" (paper conclusions).  Sweep
the switch task costs (scaling CROUTE+CSEND) and the processor count
(the conclusions' multiprocessor partitioning) and report the MPEG
flow's end-to-end bound.

E7 — the Fig. 6 composition is per-resource additive, so the bound
grows essentially linearly in the hop count; sweep path length on a
line topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.network import SwitchConfig
from repro.scenario.campaign import CampaignRunner
from repro.scenario.families import mpeg_over_line, pad_interfaces
from repro.scenario.registry import expand_grid, scenario_grid
from repro.util.tables import Table
from repro.util.units import mbps, ms, us


@dataclass(frozen=True)
class CircSweepRow:
    label: str
    circ_us: float
    bound: float
    schedulable: bool


@dataclass(frozen=True)
class CircSensitivityResult:
    rows: tuple[CircSweepRow, ...]

    def render(self) -> str:
        t = Table(
            ["switch configuration", "CIRC (us)", "end-to-end bound (ms)", "ok"],
            title="E6: end-to-end bound vs CIRC (conclusions claim)",
        )
        for r in self.rows:
            t.add_row([r.label, r.circ_us, r.bound * 1e3, r.schedulable])
        return t.render()

    def monotone_in_circ(self) -> bool:
        """Bound never decreases as CIRC grows (the paper's claim)."""
        ordered = sorted(self.rows, key=lambda r: r.circ_us)
        bounds = [r.bound for r in ordered if r.schedulable]
        return all(a <= b + 1e-12 for a, b in zip(bounds, bounds[1:]))


# The MPEG-over-line construction is shared with the ``mpeg-line``
# scenario family; see :func:`repro.scenario.families.mpeg_over_line`.
_mpeg_over_line = mpeg_over_line


def run_circ_sensitivity(
    *,
    cost_scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    processor_counts: Sequence[int] = (1, 2, 4),
    n_switches: int = 3,
    n_interfaces_factor: int = 4,
    speed_bps: float = mbps(100),
    deadline: float = ms(200),
    options: AnalysisOptions | None = None,
) -> CircSensitivityResult:
    """Sweep CIRC via task-cost scaling and processor counts.

    ``n_interfaces_factor`` pads each switch with extra idle hosts so
    ``NINTERFACES`` (and hence CIRC) is realistic for an edge switch.
    """
    rows: list[CircSweepRow] = []
    for scale in cost_scales:
        cfg = SwitchConfig(c_route=us(2.7) * scale, c_send=us(1.0) * scale)
        net, flow = _mpeg_over_line(
            n_switches, cfg, speed_bps=speed_bps, deadline=deadline
        )
        _pad_interfaces(net, n_interfaces_factor, speed_bps)
        res = holistic_analysis(net, [flow], options)
        circ = net.circ("sw1")
        rows.append(
            CircSweepRow(
                label=f"task costs x{scale:g}",
                circ_us=circ * 1e6,
                bound=res.result("mpeg").worst_response,
                schedulable=res.schedulable,
            )
        )
    for m in processor_counts:
        cfg = SwitchConfig(c_route=us(2.7), c_send=us(1.0), n_processors=m)
        net, flow = _mpeg_over_line(
            n_switches, cfg, speed_bps=speed_bps, deadline=deadline
        )
        _pad_interfaces(net, n_interfaces_factor, speed_bps, multiple_of=m)
        res = holistic_analysis(net, [flow], options)
        circ = net.circ("sw1")
        rows.append(
            CircSweepRow(
                label=f"{m} processor(s)",
                circ_us=circ * 1e6,
                bound=res.result("mpeg").worst_response,
                schedulable=res.schedulable,
            )
        )
    return CircSensitivityResult(rows=tuple(rows))


# Interface padding is likewise shared with the scenario families.
_pad_interfaces = pad_interfaces


@dataclass(frozen=True)
class HopSweepRow:
    n_switches: int
    hops: int
    bound: float
    per_hop: float


@dataclass(frozen=True)
class HopSweepResult:
    rows: tuple[HopSweepRow, ...]

    def render(self) -> str:
        t = Table(
            ["switches", "hops", "bound (ms)", "bound/hop (ms)"],
            title="E7: end-to-end bound vs hop count",
        )
        for r in self.rows:
            t.add_row([r.n_switches, r.hops, r.bound * 1e3, r.per_hop * 1e3])
        return t.render()

    def roughly_linear(self, tolerance: float = 0.5) -> bool:
        """Per-hop cost varies by at most ``tolerance`` relative spread."""
        per_hop = [r.per_hop for r in self.rows]
        lo, hi = min(per_hop), max(per_hop)
        return (hi - lo) <= tolerance * hi


def run_hop_sweep(
    *,
    switch_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
    speed_bps: float = mbps(100),
    deadline: float = ms(500),
    options: AnalysisOptions | None = None,
    jobs: int = 1,
    grid: Mapping | None = None,
) -> HopSweepResult:
    """End-to-end bound of the MPEG flow vs path length.

    The path-length sweep is a scenario grid over the ``mpeg-line``
    family, executed through a
    :class:`~repro.scenario.campaign.CampaignRunner`; ``grid``
    overrides the axes (quick mode passes ``dict(n_switches=(1, 2, 4))``)
    and ``jobs`` sets the worker count.
    """
    axes: dict = dict(
        n_switches=tuple(switch_counts),
        speed_bps=speed_bps,
        deadline=deadline,
    )
    if grid:
        axes.update(grid)
    points = expand_grid(**axes)
    units: Sequence = scenario_grid("mpeg-line", **axes)
    if options is not None:
        units = [spec.build().with_options(options) for spec in units]
    results = CampaignRunner(jobs=jobs, actions=("analyze",)).run(units)

    rows: list[HopSweepRow] = []
    for point, res in zip(points, results):
        n = point["n_switches"]
        bound = res.payload["flows"]["mpeg"]["worst_response"]
        hops = n + 1  # host -> sw0 -> ... -> sw{n-1} -> host
        rows.append(
            HopSweepRow(
                n_switches=n, hops=hops, bound=bound, per_hop=bound / hops
            )
        )
    return HopSweepResult(rows=tuple(rows))
