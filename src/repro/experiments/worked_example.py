"""E1 + E2: the paper's worked examples (Sec. 3.1 / Sec. 3.3).

E1 reproduces Fig. 3/4: the MPEG IBBPBBPBB stream on
``link(0,4)`` with ``linkspeed = 10^7 bit/s`` — per-frame transmission
times ``C_i^k``, Ethernet-frame counts, and the cycle sums
``CSUM/NSUM/TSUM``.  The paper's recoverable value ``TSUM = 270 ms`` is
asserted exactly; per-frame byte sizes of Fig. 4 are not recoverable
from the scan (DESIGN.md), so the canonical MPEG sizes of
:mod:`repro.workloads.mpeg` are used and reported.

E2 reproduces the CIRC arithmetic: the 4-interface example switch
(``CIRC = 4 x (2.7 + 1.0) us = 14.8 us``) and the conclusions' 48-port
16-processor network processor (``CIRC = 11.1 us``) including the
1 Gbit/s feasibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.demand import LinkDemand, build_link_demand
from repro.model.flow import Flow
from repro.switch.multiproc import (
    MultiprocessorPlan,
    max_linkspeed_supported,
    partition_interfaces,
)
from repro.util.tables import Table
from repro.util.units import mbps, us
from repro.workloads.mpeg import paper_fig3_flow


@dataclass(frozen=True)
class WorkedExampleResult:
    """Per-frame parameters and cycle sums of the Fig. 3/4 example."""

    flow: Flow
    demand: LinkDemand
    linkspeed_bps: float

    @property
    def tsum(self) -> float:
        return self.demand.tsum

    @property
    def csum(self) -> float:
        return self.demand.csum

    @property
    def nsum(self) -> int:
        return self.demand.nsum

    @property
    def mft(self) -> float:
        return self.demand.mft

    def render(self) -> str:
        t = Table(
            ["frame k", "type", "S (bits)", "T (ms)", "C (ms)", "eth frames"],
            title=(
                "E1: Fig. 3/4 worked example "
                f"(IBBPBBPBB on a {self.linkspeed_bps / 1e6:.0f} Mbit/s link)"
            ),
        )
        pattern = "XBBPBBPBB"
        spec = self.flow.spec
        for k in range(spec.n_frames):
            t.add_row(
                [
                    k,
                    "I+P" if pattern[k] == "X" else pattern[k],
                    spec.payload_bits[k],
                    spec.min_separations[k] * 1e3,
                    self.demand.c[k] * 1e3,
                    self.demand.n_eth[k],
                ]
            )
        footer = Table(["quantity", "value", "paper"], title="cycle sums")
        footer.add_row(["CSUM (ms)", self.csum * 1e3, "(not recoverable)"])
        footer.add_row(["NSUM (eth frames)", self.nsum, "(not recoverable)"])
        footer.add_row(["TSUM (ms)", self.tsum * 1e3, "270 (exact match)"])
        footer.add_row(["MFT (ms)", self.mft * 1e3, "12304 bits / linkspeed"])
        return t.render() + "\n" + footer.render()


def run_worked_example(linkspeed_bps: float = mbps(10)) -> WorkedExampleResult:
    """Compute the Fig. 3/4 per-link parameters of the MPEG example."""
    flow = paper_fig3_flow(route=("n0", "n4", "n6", "n3"))
    demand = build_link_demand(flow, linkspeed_bps)
    return WorkedExampleResult(flow=flow, demand=demand, linkspeed_bps=linkspeed_bps)


@dataclass(frozen=True)
class CircExamplesResult:
    """E2: the paper's CIRC numbers."""

    example_switch: MultiprocessorPlan
    network_processor: MultiprocessorPlan
    gigabit_feasible_speed: float

    def render(self) -> str:
        t = Table(
            ["configuration", "CIRC (us)", "paper", "max linkspeed (Gbit/s)"],
            title="E2: CIRC arithmetic (Sec. 3.3 example + conclusions)",
        )
        t.add_row(
            [
                "4 interfaces, 1 cpu",
                self.example_switch.circ * 1e6,
                "14.8",
                max_linkspeed_supported(4, 1) / 1e9,
            ]
        )
        t.add_row(
            [
                "48 ports, 16 cpus",
                self.network_processor.circ * 1e6,
                "11.1",
                self.gigabit_feasible_speed / 1e9,
            ]
        )
        return t.render()


def run_circ_examples() -> CircExamplesResult:
    """Reproduce CIRC = 14.8 us (example) and 11.1 us (48-port switch)."""
    return CircExamplesResult(
        example_switch=partition_interfaces(4, 1),
        network_processor=partition_interfaces(48, 16),
        gigabit_feasible_speed=max_linkspeed_supported(48, 16),
    )
