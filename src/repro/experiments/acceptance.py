"""E5: acceptance ratio vs offered utilisation — GMF vs baselines.

The paper's motivation: the sporadic model "is not a good match for
MPEG encoded video-traffic".  This experiment quantifies that: over
seeded random GMF workloads at swept utilisation levels, count how
often each analysis admits the whole flow set:

* ``gmf``       — the paper's analysis (this library);
* ``sporadic``  — sporadic collapse (min T, max S) + same machinery;
* ``cycle``     — cycle collapse (TSUM, summed S);
* ``util``      — the utilisation < 1 necessary condition (an upper
  envelope no sound analysis can beat).

Expected shape: gmf >= sporadic everywhere, with the gap widening with
burstiness (the sporadic collapse charges every frame at I-frame size
and minimum separation); all curves below ``util``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.baselines.bounds import demand_utilization_bound
from repro.baselines.sporadic import sporadic_holistic_analysis
from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.network import Network
from repro.scenario.campaign import CampaignRunner
from repro.scenario.model import Scenario, ScenarioSpec
from repro.scenario.registry import expand_grid
from repro.util.tables import Table
from repro.workloads.generator import RandomFlowConfig, random_flow_set
from repro.workloads.topologies import line_network


@dataclass(frozen=True)
class AcceptancePoint:
    utilization: float
    accepted: Mapping[str, int]
    trials: int

    def ratio(self, analysis: str) -> float:
        return self.accepted[analysis] / self.trials


@dataclass(frozen=True)
class AcceptanceResult:
    points: tuple[AcceptancePoint, ...]
    analyses: tuple[str, ...]

    def render(self) -> str:
        t = Table(
            ["utilization"] + [f"{a} ratio" for a in self.analyses],
            title="E5: acceptance ratio vs offered utilisation",
        )
        for p in self.points:
            t.add_row([p.utilization] + [p.ratio(a) for a in self.analyses])
        return t.render()

    def dominance_holds(self) -> bool:
        """gmf acceptance >= sporadic acceptance at every point."""
        return all(
            p.accepted["gmf"] >= p.accepted["sporadic"] for p in self.points
        )


def action_acceptance(scenario: Scenario) -> dict[str, Any]:
    """Campaign action: which analyses admit the scenario's flow set?

    Runs the paper's GMF analysis plus the three baselines on one
    scenario; the scenario's :class:`AnalysisOptions` drive all four.
    """
    net, flows, options = scenario.network, scenario.flows, scenario.options
    return {
        "gmf": bool(holistic_analysis(net, flows, options).schedulable),
        "sporadic": bool(
            sporadic_holistic_analysis(
                net, flows, options, collapse="sporadic"
            ).schedulable
        ),
        "cycle": bool(
            sporadic_holistic_analysis(
                net, flows, options, collapse="cycle"
            ).schedulable
        ),
        "util": bool(demand_utilization_bound(net, flows, options=options)),
    }


def _acceptance_seed(seed_base: int, trial: int, utilization: float) -> int:
    return seed_base + trial * 131 + int(utilization * 1000)


def _acceptance_scenario(
    point: Mapping,
    network: Network | None,
    options: AnalysisOptions | None,
    seed_base: int,
) -> Scenario:
    net = network or line_network(2, hosts_per_switch=2)
    u = point["utilization"]
    flows = random_flow_set(
        net,
        n_flows=point["n_flows"],
        total_utilization=u,
        seed=_acceptance_seed(seed_base, point["trial"], u),
        config=RandomFlowConfig(
            n_frames_range=(2, 6), burstiness=point["burstiness"]
        ),
    )
    return Scenario(
        name=f"acceptance[u={u:g},trial={point['trial']}]",
        network=net,
        flows=tuple(flows),
        options=options or AnalysisOptions(),
    )


def run_acceptance_sweep(
    *,
    utilizations: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    trials: int = 10,
    n_flows: int = 4,
    burstiness: float = 8.0,
    network: Network | None = None,
    options: AnalysisOptions | None = None,
    seed_base: int = 1000,
    jobs: int = 1,
    grid: Mapping | None = None,
) -> AcceptanceResult:
    """Sweep offered utilisation; count admissions per analysis.

    The (utilisation x trial) grid fans over a
    :class:`~repro.scenario.campaign.CampaignRunner`; when the topology
    is not overridden the scenarios ship as ``random-line`` specs and
    are generated inside the workers.  ``grid`` overrides the axes
    (quick mode) and ``jobs`` sets the worker count.
    """
    analyses = ("gmf", "sporadic", "cycle", "util")
    axes: dict = dict(
        utilization=tuple(utilizations),
        trial=tuple(range(trials)),
        n_flows=n_flows,
        burstiness=burstiness,
    )
    if grid:
        axes.update(grid)
    points = expand_grid(**axes)
    if network is None:
        units: Sequence = [
            ScenarioSpec.of(
                "random-line",
                seed=_acceptance_seed(
                    seed_base, p["trial"], p["utilization"]
                ),
                n_flows=p["n_flows"],
                utilization=p["utilization"],
                n_frames_min=2,
                n_frames_max=6,
                burstiness=p["burstiness"],
            )
            for p in points
        ]
        if options is not None:
            units = [spec.build().with_options(options) for spec in units]
    else:
        units = [
            _acceptance_scenario(p, network, options, seed_base)
            for p in points
        ]
    results = CampaignRunner(jobs=jobs, actions=(action_acceptance,)).run(
        units
    )

    per_u: dict[float, dict[str, int]] = {}
    trials_per_u: dict[float, int] = {}
    for point, res in zip(points, results):
        u = point["utilization"]
        accepted = per_u.setdefault(u, {a: 0 for a in analyses})
        trials_per_u[u] = trials_per_u.get(u, 0) + 1
        for a in analyses:
            accepted[a] += int(res.payload[a])
    acc_points = [
        AcceptancePoint(
            utilization=u, accepted=per_u[u], trials=trials_per_u[u]
        )
        for u in per_u
    ]
    return AcceptanceResult(points=tuple(acc_points), analyses=analyses)


# ----------------------------------------------------------------------
# E5b: the burstiness axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurstinessPoint:
    burstiness: float
    accepted: Mapping[str, int]
    trials: int

    def ratio(self, analysis: str) -> float:
        return self.accepted[analysis] / self.trials


@dataclass(frozen=True)
class BurstinessResult:
    points: tuple[BurstinessPoint, ...]
    utilization: float

    def render(self) -> str:
        t = Table(
            ["burstiness", "gmf ratio", "sporadic ratio"],
            title=(
                "E5b: acceptance vs frame-size burstiness "
                f"(offered utilisation {self.utilization:g})"
            ),
        )
        for p in self.points:
            t.add_row([p.burstiness, p.ratio("gmf"), p.ratio("sporadic")])
        return t.render()

    def gap_widens(self) -> bool:
        """The GMF-sporadic acceptance gap grows with burstiness."""
        gaps = [p.ratio("gmf") - p.ratio("sporadic") for p in self.points]
        return gaps[-1] >= gaps[0]


def run_burstiness_sweep(
    *,
    burstiness_levels: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    utilization: float = 0.5,
    trials: int = 10,
    n_flows: int = 4,
    network: Network | None = None,
    options: AnalysisOptions | None = None,
    seed_base: int = 5000,
) -> BurstinessResult:
    """Why GMF wins: sweep the frame-size ratio within a cycle.

    Flows are MPEG-shaped cycles: one "I-frame" of ``b`` units followed
    by unit-size frames, all separated by a constant 20 ms, payloads
    scaled so each flow's wire utilisation hits its UUniFast share.  At
    ``b = 1`` every frame is equal and the sporadic collapse (min-T /
    max-S) *is* the GMF spec, so both analyses must agree exactly; as
    ``b`` grows the collapse reserves ~``n*b/(b+n-1)`` times the real
    demand while the GMF analysis sees the true cycle.  This isolates
    the mechanism behind E5.
    """
    import numpy as np

    from repro.model.flow import Flow
    from repro.model.gmf import GmfSpec
    from repro.model.routing import shortest_route
    from repro.model.network import NodeKind
    from repro.workloads.generator import uunifast

    net = network or line_network(2, hosts_per_switch=2)
    endpoints = [
        n.name
        for n in net.nodes()
        if n.kind in (NodeKind.ENDHOST, NodeKind.ROUTER)
    ]
    sep = 20e-3
    points: list[BurstinessPoint] = []
    for b in burstiness_levels:
        accepted = {"gmf": 0, "sporadic": 0}
        for trial in range(trials):
            rng = np.random.default_rng(seed_base + trial * 977 + int(b * 31))
            shares = uunifast(rng, n_flows, utilization)
            flows = []
            for i, share in enumerate(shares):
                src, dst = rng.choice(endpoints, size=2, replace=False)
                route = shortest_route(net, str(src), str(dst))
                slowest = min(
                    net.linkspeed(a, c) for a, c in zip(route, route[1:])
                )
                n = int(rng.integers(4, 9))
                # One b-unit I-frame + (n-1) unit frames per cycle.
                base = max(64, int(share * n * sep * slowest / (b + n - 1)))
                payloads = (int(b * base),) + (base,) * (n - 1)
                flows.append(
                    Flow(
                        name=f"bf{i}",
                        spec=GmfSpec(
                            min_separations=(sep,) * n,
                            # Loose deadline: the binding constraint
                            # should be demand, not latency, so the
                            # sweep isolates the reservation effect.
                            deadlines=(10 * sep,) * n,
                            jitters=(0.0,) * n,
                            payload_bits=payloads,
                        ),
                        route=route,
                        priority=int(rng.integers(0, 8)),
                    )
                )
            if holistic_analysis(net, flows, options).schedulable:
                accepted["gmf"] += 1
            if sporadic_holistic_analysis(
                net, flows, options, collapse="sporadic"
            ).schedulable:
                accepted["sporadic"] += 1
        points.append(
            BurstinessPoint(burstiness=b, accepted=accepted, trials=trials)
        )
    return BurstinessResult(points=tuple(points), utilization=utilization)
