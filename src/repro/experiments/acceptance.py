"""E5: acceptance ratio vs offered utilisation — GMF vs baselines.

The paper's motivation: the sporadic model "is not a good match for
MPEG encoded video-traffic".  This experiment quantifies that: over
seeded random GMF workloads at swept utilisation levels, count how
often each analysis admits the whole flow set:

* ``gmf``       — the paper's analysis (this library);
* ``sporadic``  — sporadic collapse (min T, max S) + same machinery;
* ``cycle``     — cycle collapse (TSUM, summed S);
* ``util``      — the utilisation < 1 necessary condition (an upper
  envelope no sound analysis can beat).

Expected shape: gmf >= sporadic everywhere, with the gap widening with
burstiness (the sporadic collapse charges every frame at I-frame size
and minimum separation); all curves below ``util``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.baselines.bounds import demand_utilization_bound
from repro.baselines.sporadic import sporadic_holistic_analysis
from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.network import Network
from repro.util.tables import Table
from repro.workloads.generator import RandomFlowConfig, random_flow_set
from repro.workloads.topologies import line_network


@dataclass(frozen=True)
class AcceptancePoint:
    utilization: float
    accepted: Mapping[str, int]
    trials: int

    def ratio(self, analysis: str) -> float:
        return self.accepted[analysis] / self.trials


@dataclass(frozen=True)
class AcceptanceResult:
    points: tuple[AcceptancePoint, ...]
    analyses: tuple[str, ...]

    def render(self) -> str:
        t = Table(
            ["utilization"] + [f"{a} ratio" for a in self.analyses],
            title="E5: acceptance ratio vs offered utilisation",
        )
        for p in self.points:
            t.add_row([p.utilization] + [p.ratio(a) for a in self.analyses])
        return t.render()

    def dominance_holds(self) -> bool:
        """gmf acceptance >= sporadic acceptance at every point."""
        return all(
            p.accepted["gmf"] >= p.accepted["sporadic"] for p in self.points
        )


def run_acceptance_sweep(
    *,
    utilizations: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    trials: int = 10,
    n_flows: int = 4,
    burstiness: float = 8.0,
    network: Network | None = None,
    options: AnalysisOptions | None = None,
    seed_base: int = 1000,
) -> AcceptanceResult:
    """Sweep offered utilisation; count admissions per analysis."""
    net = network or line_network(2, hosts_per_switch=2)
    analyses = ("gmf", "sporadic", "cycle", "util")
    points: list[AcceptancePoint] = []
    cfg = RandomFlowConfig(n_frames_range=(2, 6), burstiness=burstiness)
    for u in utilizations:
        accepted = {a: 0 for a in analyses}
        for trial in range(trials):
            flows = random_flow_set(
                net,
                n_flows=n_flows,
                total_utilization=u,
                seed=seed_base + trial * 131 + int(u * 1000),
                config=cfg,
            )
            if holistic_analysis(net, flows, options).schedulable:
                accepted["gmf"] += 1
            if sporadic_holistic_analysis(
                net, flows, options, collapse="sporadic"
            ).schedulable:
                accepted["sporadic"] += 1
            if sporadic_holistic_analysis(
                net, flows, options, collapse="cycle"
            ).schedulable:
                accepted["cycle"] += 1
            if demand_utilization_bound(net, flows, options=options):
                accepted["util"] += 1
        points.append(
            AcceptancePoint(utilization=u, accepted=accepted, trials=trials)
        )
    return AcceptanceResult(points=tuple(points), analyses=analyses)


# ----------------------------------------------------------------------
# E5b: the burstiness axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurstinessPoint:
    burstiness: float
    accepted: Mapping[str, int]
    trials: int

    def ratio(self, analysis: str) -> float:
        return self.accepted[analysis] / self.trials


@dataclass(frozen=True)
class BurstinessResult:
    points: tuple[BurstinessPoint, ...]
    utilization: float

    def render(self) -> str:
        t = Table(
            ["burstiness", "gmf ratio", "sporadic ratio"],
            title=(
                "E5b: acceptance vs frame-size burstiness "
                f"(offered utilisation {self.utilization:g})"
            ),
        )
        for p in self.points:
            t.add_row([p.burstiness, p.ratio("gmf"), p.ratio("sporadic")])
        return t.render()

    def gap_widens(self) -> bool:
        """The GMF-sporadic acceptance gap grows with burstiness."""
        gaps = [p.ratio("gmf") - p.ratio("sporadic") for p in self.points]
        return gaps[-1] >= gaps[0]


def run_burstiness_sweep(
    *,
    burstiness_levels: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    utilization: float = 0.5,
    trials: int = 10,
    n_flows: int = 4,
    network: Network | None = None,
    options: AnalysisOptions | None = None,
    seed_base: int = 5000,
) -> BurstinessResult:
    """Why GMF wins: sweep the frame-size ratio within a cycle.

    Flows are MPEG-shaped cycles: one "I-frame" of ``b`` units followed
    by unit-size frames, all separated by a constant 20 ms, payloads
    scaled so each flow's wire utilisation hits its UUniFast share.  At
    ``b = 1`` every frame is equal and the sporadic collapse (min-T /
    max-S) *is* the GMF spec, so both analyses must agree exactly; as
    ``b`` grows the collapse reserves ~``n*b/(b+n-1)`` times the real
    demand while the GMF analysis sees the true cycle.  This isolates
    the mechanism behind E5.
    """
    import numpy as np

    from repro.model.flow import Flow
    from repro.model.gmf import GmfSpec
    from repro.model.routing import shortest_route
    from repro.model.network import NodeKind
    from repro.workloads.generator import uunifast

    net = network or line_network(2, hosts_per_switch=2)
    endpoints = [
        n.name
        for n in net.nodes()
        if n.kind in (NodeKind.ENDHOST, NodeKind.ROUTER)
    ]
    sep = 20e-3
    points: list[BurstinessPoint] = []
    for b in burstiness_levels:
        accepted = {"gmf": 0, "sporadic": 0}
        for trial in range(trials):
            rng = np.random.default_rng(seed_base + trial * 977 + int(b * 31))
            shares = uunifast(rng, n_flows, utilization)
            flows = []
            for i, share in enumerate(shares):
                src, dst = rng.choice(endpoints, size=2, replace=False)
                route = shortest_route(net, str(src), str(dst))
                slowest = min(
                    net.linkspeed(a, c) for a, c in zip(route, route[1:])
                )
                n = int(rng.integers(4, 9))
                # One b-unit I-frame + (n-1) unit frames per cycle.
                base = max(64, int(share * n * sep * slowest / (b + n - 1)))
                payloads = (int(b * base),) + (base,) * (n - 1)
                flows.append(
                    Flow(
                        name=f"bf{i}",
                        spec=GmfSpec(
                            min_separations=(sep,) * n,
                            # Loose deadline: the binding constraint
                            # should be demand, not latency, so the
                            # sweep isolates the reservation effect.
                            deadlines=(10 * sep,) * n,
                            jitters=(0.0,) * n,
                            payload_bits=payloads,
                        ),
                        route=route,
                        priority=int(rng.integers(0, 8)),
                    )
                )
            if holistic_analysis(net, flows, options).schedulable:
                accepted["gmf"] += 1
            if sporadic_holistic_analysis(
                net, flows, options, collapse="sporadic"
            ).schedulable:
                accepted["sporadic"] += 1
        points.append(
            BurstinessPoint(burstiness=b, accepted=accepted, trials=trials)
        )
    return BurstinessResult(points=tuple(points), utilization=utilization)
