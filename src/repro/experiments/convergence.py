"""E9: behaviour at the convergence boundary (Eqs. 20/34/35).

Scale one flow set towards (and past) utilisation 1 on its bottleneck
link and record: the Eq. 20/34/35-style utilisation report, whether the
holistic analysis converged, and the resulting bound.  Expected shape:
bounds grow sharply as utilisation approaches 1 and the analysis
cleanly reports divergence (rather than hanging) at and above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.core.utilization import network_convergence_report
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.util.tables import Table
from repro.util.units import mbps, ms
from repro.workloads.topologies import star_network


@dataclass(frozen=True)
class ConvergencePoint:
    scale: float
    max_utilization: float
    utilization_ok: bool
    converged: bool
    bound: float


@dataclass(frozen=True)
class ConvergenceResult:
    points: tuple[ConvergencePoint, ...]

    def render(self) -> str:
        t = Table(
            ["load scale", "max util", "util < 1", "converged", "bound (ms)"],
            title="E9: convergence boundary (Eqs. 20/34/35)",
        )
        for p in self.points:
            t.add_row(
                [
                    p.scale,
                    p.max_utilization,
                    p.utilization_ok,
                    p.converged,
                    p.bound * 1e3 if math.isfinite(p.bound) else math.inf,
                ]
            )
        return t.render()

    def divergence_detected_correctly(self) -> bool:
        """Every point with utilisation >= 1 is reported non-converged."""
        return all(p.converged is False for p in self.points if not p.utilization_ok)

    def bounds_monotone_in_load(self) -> bool:
        finite = [p for p in self.points if math.isfinite(p.bound)]
        ordered = sorted(finite, key=lambda p: p.scale)
        return all(
            a.bound <= b.bound + 1e-12 for a, b in zip(ordered, ordered[1:])
        )


def _scaled_flows(scale: float) -> list[Flow]:
    """Two flows contending on one egress link; payloads scale the load.

    At ``scale = 1.0`` the shared 10 Mbit/s egress link carries roughly
    95% wire utilisation, so the default sweep crosses utilisation 1
    just above it.
    """
    base = int(60_000 * scale)
    spec = GmfSpec(
        min_separations=(ms(10), ms(10)),
        deadlines=(ms(400), ms(400)),
        jitters=(0.0, 0.0),
        payload_bits=(max(64, base), max(64, base // 2)),
    )
    return [
        Flow("fa", spec, ("h0", "sw", "h2"), priority=2),
        Flow("fb", spec, ("h1", "sw", "h2"), priority=1),
    ]


def run_convergence_study(
    *,
    scales: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.3),
    speed_bps: float = mbps(10),
    options: AnalysisOptions | None = None,
) -> ConvergenceResult:
    """Scale contention on a 3-host star network through utilisation 1."""
    opts = options or AnalysisOptions(horizon_factor=100.0)
    points: list[ConvergencePoint] = []
    for scale in scales:
        net = star_network(3, speed_bps=speed_bps)
        flows = _scaled_flows(scale)
        ctx = AnalysisContext(net, flows, opts)
        report = network_convergence_report(ctx)
        res = holistic_analysis(net, flows, opts)
        bound = (
            max(r.worst_response for r in res.flow_results.values())
            if res.flow_results
            else math.inf
        )
        points.append(
            ConvergencePoint(
                scale=scale,
                max_utilization=report.max_utilization,
                utilization_ok=report.all_convergent,
                converged=res.converged,
                bound=bound,
            )
        )
    return ConvergenceResult(points=tuple(points))
