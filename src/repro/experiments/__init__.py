"""Experiment harness: regenerates every table/figure of EXPERIMENTS.md.

Each module exposes a ``run_*`` function returning a structured result
with a ``render()`` method producing the ASCII table the benchmarks and
``python -m repro.experiments.runner`` print.

Index (see DESIGN.md Sec. 4):

========  ==========================================================
E1        Fig. 3/4 worked example (per-frame C, CSUM/NSUM/TSUM)
E2        CIRC arithmetic (Sec. 3.3 example + conclusions table)
E3        End-to-end bounds on the Fig. 1/2 network
E4        Analysis vs simulation soundness + tightness
E5        Acceptance ratio vs utilisation (GMF vs baselines)
E6        Delay sensitivity to CIRC / multiprocessor switches
E7        End-to-end bound vs hop count
E8        Ablations (strict-paper terms, jitter handling)
E9        Convergence boundary (Eqs. 20/34/35)
========  ==========================================================
"""

from repro.experiments.worked_example import run_worked_example, run_circ_examples
from repro.experiments.endtoend import run_endtoend_example
from repro.experiments.validation import run_validation
from repro.experiments.acceptance import run_acceptance_sweep
from repro.experiments.sensitivity import run_circ_sensitivity, run_hop_sweep
from repro.experiments.ablation import run_ablation
from repro.experiments.convergence import run_convergence_study

__all__ = [
    "run_ablation",
    "run_acceptance_sweep",
    "run_circ_examples",
    "run_circ_sensitivity",
    "run_convergence_study",
    "run_endtoend_example",
    "run_hop_sweep",
    "run_validation",
    "run_worked_example",
]
