"""Datacenter-scale admission: hierarchical pods, O(changed-set) updates.

The classic :class:`~repro.core.admission.AdmissionController` re-runs
the holistic analysis over the *whole* admitted set per request.  That
is exact, but at datacenter scale (10^5 flows over a multi-pod fat
tree) even a warm-started confirming sweep touches every flow, so a
single admit costs seconds.  The key structural fact of such a topology
is locality: a flow's analysis depends only on the jitters of flows it
shares resources with, and almost all flows of a pod share nothing with
other pods except the pod-boundary uplinks.  The holistic worklist
engine (``core/holistic.py``) already encodes that dependency structure
as a readers map; this module makes the *flow set itself* incremental
so one admission touches only the candidate's dependency cone:

* :class:`MutableAnalysisContext` — an analysis context whose flow set
  mutates in place: per-link flow lists, ``hep`` caches, jitter-table
  registration, stage memos and flat demand matrices
  (``AnalysisOptions.flat_demand_arrays``) all update per admit/release
  instead of being rebuilt from the full set;
* :class:`DemandEnvelopes` — cached per-resource necessary-condition
  utilisations; the fast-reject of a request checks only the
  candidate's route (every other resource kept its previously sub-unit
  envelope), and the core tier's view of a pod is exactly these
  envelope entries on its boundary links;
* :class:`HierarchicalAdmissionController` — per-pod
  :class:`PodShard` bookkeeping plus the incremental admit/release
  engine.

Exactness
---------
Decisions and converged jitter tables are bit-identical to the
reference controller's (asserted by ``tests/test_hierarchy.py``):

* **admit** seeds the worklist with the candidate plus every flow whose
  stage participant set the candidate joined (derived from the same
  link-sharing rules as :func:`~repro.core.holistic.flow_read_set`);
  all other flows' inputs are untouched, so re-running them would
  reproduce their results bit for bit.  The admitted set's converged
  table is a sound warm start (adding interference only raises the
  least fixed point), and the monotone Gauss-Seidel iteration below —
  same admission order, same dirtiness propagation as the full
  worklist — reaches the same least fixed point.  A rejected
  candidate's writes are rolled back through the jitter-table undo log.
* **release** removes interference, which *lowers* the least fixed
  point; iterating affected flows from their old (now
  over-approximating) entries could stick above it.  The transitive
  closure of the readers map over the released flow is therefore reset
  to the cold defaults and re-solved; flows outside the closure read
  nothing the closure writes (otherwise they would be in it), so their
  entries and results are already at the from-scratch fixed point.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import telemetry as _telemetry
from repro.core.admission import AdmissionDecision
from repro.core.context import (
    AnalysisContext,
    AnalysisOptions,
    ResourceKey,
    ingress_resource,
    link_resource,
)
from repro.core.first_hop import first_hop_utilization
from repro.core.holistic import JITTER_TOLERANCE, flow_read_set
from repro.core.pipeline import analyze_flow
from repro.core.results import FlowResult, HolisticResult
from repro.core.switch_ingress import ingress_utilization
from repro.model.flow import Flow, hep_flows
from repro.model.network import Network
from repro.model.routing import validate_route


class MutableAnalysisContext(AnalysisContext):
    """An :class:`AnalysisContext` whose flow set mutates in place.

    The base context is rebuilt per flow set; at 10^5 admitted flows
    that rebuild (link caches, jitter registration, demand matrices)
    costs far more than the incremental analysis itself.  Here every
    flow-set-derived structure updates in O(route x link density):

    * ``self.flows`` is a *list* in admission order, appended on admit —
      so the base class's ordering contract (``flows_on_link`` filters
      the flow order, the holistic sweep iterates it) is preserved;
    * per-link flow lists are maintained directly instead of filtering
      the whole set per link;
    * ``hep`` results are cached per link so an admit/release drops
      only the touched links' entries;
    * :meth:`AnalysisContext.invalidate_link` bumps the flat demand
      matrices and stage memos of exactly the touched resources.
    """

    def __init__(
        self,
        network: Network,
        flows: Sequence[Flow] = (),
        options: AnalysisOptions | None = None,
    ):
        super().__init__(network, flows, options)
        self.flows = list(self.flows)  # admission order, mutated in place
        self._link_index: dict[tuple[str, str], list[Flow]] = {}
        for f in self.flows:
            for link in f.links():
                self._link_index.setdefault(link, []).append(f)
        # link -> {flow name -> hep tuple}; nested so invalidation of a
        # link is one pop instead of a scan over the flat base cache.
        self._hep_by_link: dict[
            tuple[str, str], dict[str, tuple[Flow, ...]]
        ] = {}

    # -- queries (same semantics as the base class, served incrementally)
    def flows_on_link(self, n1: str, n2: str) -> tuple[Flow, ...]:
        key = (n1, n2)
        hit = self._link_flows_cache.get(key)
        if hit is None:
            hit = tuple(self._link_index.get(key, ()))
            self._link_flows_cache[key] = hit
        return hit

    def hep(self, flow: Flow, n1: str, n2: str) -> tuple[Flow, ...]:
        per_link = self._hep_by_link.setdefault((n1, n2), {})
        hit = per_link.get(flow.name)
        if hit is None:
            hit = tuple(hep_flows(self.flows_on_link(n1, n2), flow, n1, n2))
            per_link[flow.name] = hit
        return hit

    # -- mutation
    def add_flow(self, flow: Flow) -> None:
        """Append ``flow`` to the admitted set (tentatively or finally)."""
        validate_route(self.network, flow.route)
        if flow.name in self._by_name:
            raise ValueError(f"flow name {flow.name!r} already admitted")
        self.flows.append(flow)
        self._by_name[flow.name] = flow
        self.jitters.add_flow(flow)
        for link in flow.links():
            self._link_index.setdefault(link, []).append(flow)
            self._touch_link(link)

    def remove_flow(self, flow_name: str) -> None:
        """Remove a flow and every structure derived from its presence."""
        flow = self._by_name.pop(flow_name)
        for i, f in enumerate(self.flows):
            if f is flow:
                del self.flows[i]
                break
        self.jitters.remove_flow(flow_name)
        for link in flow.links():
            entry = self._link_index.get(link, [])
            for i, f in enumerate(entry):
                if f is flow:
                    del entry[i]
                    break
            self._touch_link(link)

    def _touch_link(self, link: tuple[str, str]) -> None:
        self._link_flows_cache.pop(link, None)
        self._hep_by_link.pop(link, None)
        self.invalidate_link(*link)


class DemandEnvelopes:
    """Cached necessary-condition utilisations per route resource.

    The reference fast-reject sweeps the whole network
    (:func:`~repro.core.utilization.network_convergence_report`); an
    incremental controller only needs the candidate's route — every
    other resource kept its previously sub-unit utilisation.  Entries
    are computed by the *same* functions in the same summation order as
    the stage applicability checks and cached until a flow-set change
    on the underlying link drops them.  The core tier's "pod-boundary
    demand envelope" view is exactly these entries on boundary links.

    Note the link entry doubles as the worst egress-applicability value
    (Eqs. 34/35 plus own demand) over the link's flows: the
    minimum-priority flow's ``hep`` set is every other flow on the
    link, so its own+hep utilisation is the link total (Eq. 20).
    """

    def __init__(self, ctx: AnalysisContext):
        self._ctx = ctx
        self._cache: dict[ResourceKey, float] = {}

    def link_utilization(self, n1: str, n2: str) -> float:
        """Eq. 20 total demand fraction of ``link(n1, n2)``."""
        key = link_resource(n1, n2)
        val = self._cache.get(key)
        if val is None:
            val = first_hop_utilization(self._ctx, n1, n2)
            self._cache[key] = val
        return val

    def ingress_utilization(self, node: str, prev: str) -> float:
        """Ingress-path demand fraction at ``node`` from ``prev``."""
        key = ("in", node, prev)
        val = self._cache.get(key)
        if val is None:
            val = ingress_utilization(self._ctx, node, prev)
            self._cache[key] = val
        return val

    def invalidate_route(self, flow: Flow) -> int:
        """Drop the entries ``flow``'s presence affects; returns count."""
        dropped = 0
        route = flow.route
        for i in range(len(route) - 1):
            key = link_resource(route[i], route[i + 1])
            if self._cache.pop(key, None) is not None:
                dropped += 1
        for i in range(1, len(route) - 1):
            if self._cache.pop(("in", route[i], route[i - 1]), None) is not None:
                dropped += 1
        return dropped

    def violation(self, flow: Flow) -> tuple[ResourceKey, float] | None:
        """Worst over-unit resource on ``flow``'s route, if any."""
        route = flow.route
        checks = [
            (
                link_resource(route[0], route[1]),
                self.link_utilization(route[0], route[1]),
            )
        ]
        for i in range(1, len(route) - 1):
            checks.append(
                (
                    ("in", route[i], route[i - 1]),
                    self.ingress_utilization(route[i], route[i - 1]),
                )
            )
            checks.append(
                (
                    link_resource(route[i], route[i + 1]),
                    self.link_utilization(route[i], route[i + 1]),
                )
            )
        worst_key, worst = None, 0.0
        for key, val in checks:
            if val >= 1.0 and val > worst:
                worst_key, worst = key, val
        return (worst_key, worst) if worst_key is not None else None


@dataclass(frozen=True)
class PodMap:
    """Node -> pod classification of a multi-pod topology.

    Pods are inferred from the ``p{i}_`` node-name prefix used by
    :func:`repro.workloads.topologies.multi_pod_fat_tree_network`;
    every other node (``core*`` switches, unprefixed hosts) belongs to
    the shared core tier.  Pass an explicit ``node_pod`` mapping for
    topologies with different naming.
    """

    node_pod: Mapping[str, str]
    core: str = "core"

    @classmethod
    def from_network(cls, network: Network) -> "PodMap":
        mapping: dict[str, str] = {}
        for name in network.node_names():
            if name.startswith("p") and "_" in name:
                prefix = name.split("_", 1)[0]
                if prefix[1:].isdigit():
                    mapping[name] = prefix
        return cls(node_pod=mapping)

    def pod_of(self, node: str) -> str:
        return self.node_pod.get(node, self.core)

    def pods_of_route(self, route: Sequence[str]) -> tuple[str, ...]:
        """Ordered distinct pods a route touches (core tier excluded,
        unless the route touches nothing else)."""
        pods: list[str] = []
        for node in route:
            pod = self.pod_of(node)
            if pod != self.core and pod not in pods:
                pods.append(pod)
        return tuple(pods) if pods else (self.core,)

    def is_boundary_link(self, n1: str, n2: str) -> bool:
        return self.pod_of(n1) != self.pod_of(n2)


@dataclass
class PodShard:
    """Per-pod bookkeeping of the hierarchical controller.

    The exactness-critical state (jitter table, results) stays global:
    pods are coupled through their boundary links, and correctness
    comes from the readers topology confining re-analysis, not from
    partitioning the math.  The shard records which flows live in the
    pod and how much re-analysis work landed there — what the core tier
    reports and the scaling benchmarks assert on.
    """

    pod: str
    flows: set[str] = field(default_factory=set)
    admits: int = 0
    releases: int = 0
    resolves: int = 0  # flow re-analyses attributed to this pod


class HierarchicalAdmissionController:
    """Admission control with O(changed-set) incremental re-analysis.

    Drop-in decision-equivalent to
    :class:`~repro.core.admission.AdmissionController` (same accept /
    reject booleans, same converged jitter tables and per-flow bounds;
    rejection *messages* may name a different witness), but per-request
    work is proportional to the candidate's dependency cone instead of
    the admitted-set size — milliseconds at 10^5 admitted flows.

    ``request``/``release``/``admitted_flows`` mirror the reference
    API; :meth:`preload` bulk-admits a known-good set with one solve
    (state equals the sequential-admission outcome).
    """

    def __init__(
        self,
        network: Network,
        options: AnalysisOptions | None = None,
        initial_flows: Sequence[Flow] = (),
        *,
        fast_reject: bool = True,
        warm_start: bool = True,  # parity; incremental admits always warm-start
        retained_flows: int = 256,
        pod_map: PodMap | None = None,
    ):
        self.network = network
        self.options = options or AnalysisOptions()
        self.fast_reject = fast_reject
        self.warm_start = warm_start
        self.pod_map = pod_map or PodMap.from_network(network)
        self._ctx = MutableAnalysisContext(network, (), self.options)
        self._envelopes = DemandEnvelopes(self._ctx)
        self._results: dict[str, FlowResult] = {}
        # (subject flow, resource) -> reader flow names; the inverse of
        # the flows' read sets (core/holistic.py), maintained per
        # admit/release.  _reads_of is the forward direction, needed to
        # detach a flow's reader role in O(own read set).
        self._readers: dict[tuple[str, ResourceKey], set[str]] = {}
        self._reads_of: dict[str, set[tuple[str, ResourceKey]]] = {}
        self._order: dict[str, int] = {}
        self._next_order = 0
        self._retired: OrderedDict[str, dict] = OrderedDict()
        self._retained_flows = max(0, retained_flows)
        self._shards: dict[str, PodShard] = {}
        if initial_flows:
            self.preload(initial_flows)

    # ------------------------------------------------------------------
    @property
    def admitted_flows(self) -> tuple[Flow, ...]:
        return tuple(self._ctx.flows)

    @property
    def flow_results(self) -> Mapping[str, FlowResult]:
        """Converged per-flow results of the admitted set (live view)."""
        return self._results

    def jitter_snapshot(self) -> dict:
        """Converged explicit jitter entries of the admitted set."""
        return self._ctx.jitters.snapshot()

    def _shard(self, pod: str) -> PodShard:
        shard = self._shards.get(pod)
        if shard is None:
            shard = self._shards[pod] = PodShard(pod)
        return shard

    # ------------------------------------------------------------------
    # Retired demand-profile generations (same policy as the reference)
    # ------------------------------------------------------------------
    def _retire_demands(self, flow_name: str) -> None:
        entries = self._ctx.pop_demands(flow_name)
        if entries is None or not self._retained_flows:
            return
        self._retired.pop(flow_name, None)
        self._retired[flow_name] = entries
        while len(self._retired) > self._retained_flows:
            self._retired.popitem(last=False)

    def _revive_demands(self, flow_name: str) -> None:
        entries = self._retired.pop(flow_name, None)
        if entries is not None:
            self._ctx.install_demands(flow_name, entries)

    # ------------------------------------------------------------------
    # Reader-edge maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _route_resources(flow: Flow) -> list[ResourceKey]:
        """The resources a flow's Fig. 6 walk writes (its entry keys)."""
        route = flow.route
        keys = [link_resource(route[0], route[1])]
        for i in range(1, len(route) - 1):
            keys.append(ingress_resource(route[i]))
            keys.append(link_resource(route[i], route[i + 1]))
        return keys

    def _edge_changes(
        self, flow: Flow
    ) -> tuple[dict[tuple[str, ResourceKey], set[str]], set[tuple]]:
        """Reader edges ``flow``'s presence creates.

        Returns ``(gains, own_reads)``: ``gains`` maps each of the
        flow's jitter entries to the *other* flows that read it — the
        flows whose stage participant sets contain the flow, i.e.
        exactly the flows whose next analysis can differ from their
        cached result.  Derived from the subject's side of
        :func:`~repro.core.holistic.flow_read_set`: for each link
        ``(n1, n2)`` of the flow, a flow ``j`` sharing it reads the
        flow's entry

        * at the link resource when the link is ``j``'s first hop
          (first-hop interference ignores priority),
        * at ``in(n2)`` when ``j`` continues past ``n2`` (ingress
          interference is every flow on the incoming link),
        * at the link resource when the link is an egress hop of ``j``
          and the flow's priority there is >= ``j``'s (Eq. 2 ``hep``).
        """
        ctx = self._ctx
        gains: dict[tuple[str, ResourceKey], set[str]] = {}
        fname = flow.name
        for n1, n2 in flow.links():
            res = link_resource(n1, n2)
            ingress = ingress_resource(n2)
            prio = None
            for j in ctx.flows_on_link(n1, n2):
                if j.name == fname:
                    continue
                jroute = j.route
                if jroute[0] == n1 and jroute[1] == n2:
                    gains.setdefault((fname, res), set()).add(j.name)
                else:
                    if prio is None:
                        prio = flow.priority_on(n1, n2)
                    if prio >= j.priority_on(n1, n2):
                        gains.setdefault((fname, res), set()).add(j.name)
                if n2 != jroute[-1]:
                    gains.setdefault((fname, ingress), set()).add(j.name)
        return gains, flow_read_set(ctx, flow)

    def _install_edges(self, flow: Flow) -> set[str]:
        """Record the edges ``flow`` creates; returns the worklist seed
        (the flow plus every flow whose participant set it joined)."""
        gains, own_reads = self._edge_changes(flow)
        seed = {flow.name}
        for names in gains.values():
            seed |= names
        if self.options.use_jitter:
            # Mirror the worklist engine: with jitter modelling off the
            # readers map stays empty (no entry ever propagates).
            for key, names in gains.items():
                self._readers.setdefault(key, set()).update(names)
                for name in names:
                    self._reads_of.setdefault(name, set()).add(key)
            if own_reads:
                self._reads_of[flow.name] = set(own_reads)
                for key in own_reads:
                    self._readers.setdefault(key, set()).add(flow.name)
        return seed

    def _remove_edges(self, flow: Flow) -> None:
        fname = flow.name
        for key in self._reads_of.pop(fname, ()):
            readers = self._readers.get(key)
            if readers is not None:
                readers.discard(fname)
                if not readers:
                    del self._readers[key]
        for resource in self._route_resources(flow):
            readers = self._readers.pop((fname, resource), None)
            if readers:
                for name in readers:
                    reads = self._reads_of.get(name)
                    if reads is not None:
                        reads.discard((fname, resource))

    # ------------------------------------------------------------------
    # Incremental worklist solve
    # ------------------------------------------------------------------
    def _solve(
        self, seed: set[str]
    ) -> tuple[bool, dict[str, FlowResult], int, int]:
        """Sec. 3.5 worklist restricted to the dependency cone of ``seed``.

        Exactly :func:`~repro.core.holistic._worklist_analysis` with the
        initial pending set narrowed: within a round flows run in
        admission order (min-heap over order positions = the sweep's
        Gauss-Seidel reads), a changed jitter entry re-queues readers
        ahead in the current round and defers readers behind to the
        next, and convergence is the round write-delta falling within
        :data:`~repro.core.holistic.JITTER_TOLERANCE`.  Flows outside
        the cone are never touched: their inputs are unchanged, so
        re-running them would reproduce their stored results bit for
        bit (the worklist engine's defining invariant).

        Returns ``(converged, updated results, rounds, flow evals)``.
        """
        ctx = self._ctx
        order = self._order
        readers = self._readers
        max_iter = ctx.options.holistic_max_iterations
        updated: dict[str, FlowResult] = {}
        pending = set(seed)
        converged = False
        rounds = 0
        evals = 0
        for rounds in range(1, max_iter + 1):
            ctx.jitters.begin_round()
            heap = [(order[name], name) for name in pending]
            heapq.heapify(heap)
            queued = set(pending)
            next_pending: set[str] = set()
            while heap:
                position, name = heapq.heappop(heap)
                queued.discard(name)
                result = analyze_flow(ctx, ctx.flow(name))
                updated[name] = result
                evals += 1
                diverged = any(
                    math.isinf(fr.response) for fr in result.frames
                )
                for key in ctx.jitters.drain_changed_keys():
                    for reader in readers.get(key, ()):
                        rpos = order[reader]
                        if rpos > position:
                            if reader not in queued:
                                queued.add(reader)
                                heapq.heappush(heap, (rpos, reader))
                        else:
                            next_pending.add(reader)
                if diverged:
                    # Infinite responses never recover (monotone).
                    return False, updated, rounds, evals
            if ctx.jitters.round_delta() <= JITTER_TOLERANCE:
                converged = True
                break
            pending = next_pending
        return converged, updated, rounds, evals

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def request(self, flow: Flow) -> AdmissionDecision:
        """Try to admit ``flow``; accepted flows join the state."""
        reg = _telemetry.REGISTRY
        if reg is None:
            return self._request(flow)
        reg.add("admission.requests")
        start = time.perf_counter()
        decision = self._request(flow)
        reg.observe("admission.request_s", time.perf_counter() - start)
        if decision.accepted:
            reg.add("admission.accepted")
        else:
            reg.add("admission.rejected")
            if decision.analysis is None:
                reg.add("admission.fast_rejects")
        return decision

    def _request(self, flow: Flow) -> AdmissionDecision:
        ctx = self._ctx
        if flow.name in ctx._by_name:
            raise ValueError(f"flow name {flow.name!r} already admitted")
        self._revive_demands(flow.name)
        ctx.add_flow(flow)  # validates the route, invalidates its links
        self._note_invalidations(flow)

        if self.fast_reject:
            violation = self._envelopes.violation(flow)
            if violation is not None:
                key, value = violation
                self._withdraw(flow, edges_installed=False)
                return AdmissionDecision(
                    accepted=False,
                    reason=(
                        "necessary utilisation condition violated at "
                        f"{'/'.join(str(p) for p in key)} "
                        f"({value:.4f} >= 1)"
                    ),
                    analysis=None,
                )

        seed = self._install_edges(flow)
        self._order[flow.name] = self._next_order
        self._next_order += 1
        ctx.jitters.begin_undo()
        converged, updated, rounds, evals = self._solve(seed)
        if not converged:
            reason = "holistic analysis diverged (utilisation too high)"
        else:
            reason = self._first_violation(updated)
        analysis = HolisticResult(
            flow_results=dict(updated), iterations=rounds, converged=converged
        )
        self._note_pods(updated, evals)
        if reason is not None:
            ctx.jitters.rollback_undo()
            ctx.jitters.begin_round()  # drop the tentative write accounting
            self._withdraw(flow, edges_installed=True)
            return AdmissionDecision(
                accepted=False, reason=reason, analysis=analysis
            )
        ctx.jitters.commit_undo()
        self._results.update(updated)
        pods = self.pod_map.pods_of_route(flow.route)
        for pod in pods:
            shard = self._shard(pod)
            shard.flows.add(flow.name)
            shard.admits += 1
        reg = _telemetry.REGISTRY
        if reg is not None and len(pods) > 1:
            reg.add("hierarchy.cross_pod_admits")
        return AdmissionDecision(
            accepted=True, reason="all deadlines met", analysis=analysis
        )

    def _withdraw(self, flow: Flow, *, edges_installed: bool) -> None:
        """Undo a rejected candidate's structural changes."""
        if edges_installed:
            self._remove_edges(flow)
            self._order.pop(flow.name, None)
        self._ctx.remove_flow(flow.name)
        self._note_invalidations(flow)
        self._retire_demands(flow.name)

    def release(self, flow_name: str) -> None:
        """Remove an admitted flow; re-solves only its dependency cone."""
        ctx = self._ctx
        if flow_name not in ctx._by_name:
            raise KeyError(f"flow {flow_name!r} is not admitted")
        _telemetry.add("admission.releases")
        reg = _telemetry.REGISTRY
        start = time.perf_counter()
        flow = ctx._by_name[flow_name]

        # Transitive closure of the readers map over the released flow:
        # every flow whose least fixed point can drop.  Direct readers
        # are re-derived from the link occupancy (exact also with
        # jitter modelling off, where the readers map is empty but
        # participant sets still change).
        gains, _ = self._edge_changes(flow)
        frontier: set[str] = set()
        for names in gains.values():
            frontier |= names
        affected: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in affected:
                continue
            affected.add(name)
            for resource in self._route_resources(ctx.flow(name)):
                for reader in self._readers.get((name, resource), ()):
                    if reader not in affected:
                        frontier.add(reader)
        affected.discard(flow_name)

        self._remove_edges(flow)
        self._order.pop(flow_name, None)
        self._results.pop(flow_name, None)
        ctx.remove_flow(flow_name)
        self._note_invalidations(flow)
        self._retire_demands(flow_name)

        for name in affected:
            ctx.jitters.reset_flow(name)  # cold restart (see module doc)
        converged, updated, rounds, evals = self._solve(affected)
        if not converged:  # impossible: a subset of a convergent set
            raise RuntimeError(
                f"release of {flow_name!r} failed to re-converge"
            )
        self._results.update(updated)
        self._note_pods(updated, evals)
        for pod in self.pod_map.pods_of_route(flow.route):
            shard = self._shard(pod)
            shard.flows.discard(flow_name)
            shard.releases += 1
        if reg is not None:
            reg.add("hierarchy.releases")
            reg.observe("hierarchy.release_s", time.perf_counter() - start)

    def preload(self, flows: Sequence[Flow]) -> HolisticResult:
        """Bulk-admit a known-admissible set with a single solve.

        Final state (admitted set, jitter table, results) is identical
        to admitting the flows one by one in order — both converge to
        the least fixed point of the full set, the sequential path just
        pays one tentative solve per flow.  Raises :class:`ValueError`
        if the combined set is not schedulable; the controller should
        be discarded in that case.
        """
        ctx = self._ctx
        added: list[Flow] = []
        for flow in flows:
            self._revive_demands(flow.name)
            ctx.add_flow(flow)
            self._note_invalidations(flow)
            self._order[flow.name] = self._next_order
            self._next_order += 1
            added.append(flow)
        if self.options.use_jitter:
            # Rebuild the readers map wholesale (covers edges the new
            # flows create towards previously admitted ones too).
            self._readers.clear()
            self._reads_of.clear()
            for f in ctx.flows:
                reads = flow_read_set(ctx, f)
                if reads:
                    self._reads_of[f.name] = set(reads)
                    for key in reads:
                        self._readers.setdefault(key, set()).add(f.name)
        converged, updated, rounds, evals = self._solve(
            {f.name for f in ctx.flows}
        )
        if not converged:
            reason = "holistic analysis diverged (utilisation too high)"
        else:
            reason = self._first_violation(updated)
        if reason is not None:
            raise ValueError(f"preloaded flow set not admissible: {reason}")
        self._results.update(updated)
        self._note_pods(updated, evals)
        for flow in added:
            for pod in self.pod_map.pods_of_route(flow.route):
                shard = self._shard(pod)
                shard.flows.add(flow.name)
                shard.admits += 1
        _telemetry.add("hierarchy.preload_flows", len(added))
        return HolisticResult(
            flow_results=dict(updated), iterations=rounds, converged=True
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hierarchy snapshot: pod shards and core boundary envelopes."""
        pods = {
            shard.pod: {
                "flows": len(shard.flows),
                "admits": shard.admits,
                "releases": shard.releases,
                "resolves": shard.resolves,
            }
            for shard in sorted(
                self._shards.values(), key=lambda s: s.pod
            )
        }
        boundary = {}
        for n1, n2 in sorted(self._ctx._link_index):
            if self._ctx._link_index[(n1, n2)] and self.pod_map.is_boundary_link(n1, n2):
                boundary[f"{n1}->{n2}"] = self._envelopes.link_utilization(
                    n1, n2
                )
        return {
            "flows": len(self._ctx.flows),
            "pods": pods,
            "boundary_utilization": boundary,
        }

    def _note_invalidations(self, flow: Flow) -> None:
        dropped = self._envelopes.invalidate_route(flow)
        if dropped:
            _telemetry.add("hierarchy.envelope_invalidations", dropped)

    def _note_pods(
        self, updated: Mapping[str, FlowResult], evals: int
    ) -> None:
        """Attribute re-analysis work to pod shards (telemetry)."""
        touched: set[str] = set()
        for name in updated:
            f = self._ctx._by_name.get(name)
            if f is None:
                continue  # the candidate, already withdrawn
            pods = self.pod_map.pods_of_route(f.route)
            touched.update(pods)
            for pod in pods:
                self._shard(pod).resolves += 1
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.add("hierarchy.pod_resolves", float(len(touched)))
            reg.add("hierarchy.flow_resolves", float(evals))
            reg.add("hierarchy.changed_set", float(len(updated)))

    @staticmethod
    def _first_violation(results: Mapping[str, FlowResult]) -> str | None:
        for name, result in sorted(results.items()):
            for frame in result.frames:
                if not frame.schedulable:
                    return (
                        f"flow {name!r} frame {frame.frame}: bound "
                        f"{frame.response:.6g}s exceeds deadline "
                        f"{frame.deadline:.6g}s"
                    )
        return None
