"""Switch-ingress analysis (Sec. 3.3, Eqs. 21-27).

Inside a software switch (Fig. 5) each incoming network interface has a
dedicated software task that dequeues Ethernet frames from the NIC FIFO,
classifies them and enqueues them into the correct prioritised output
queue.  The processor runs all tasks with stride scheduling configured as
round-robin, so a task is served once every

    ``CIRC(N) = NINTERFACES(N) * (CROUTE(N) + CSEND(N))``

and every Ethernet frame waiting in the NIC FIFO costs one ``CIRC(N)``
service slot in the worst case.  Interference therefore comes only from
flows sharing the *same incoming link* ``link(prec(tau_i, N), N)``, and
is counted in Ethernet frames via ``NX`` (Eq. 13), each weighted by
``CIRC(N)``.

**Reconstruction note** (DESIGN.md): the printed own-flow terms
(``q x CIRC`` in Eq. 23, a single ``+CIRC`` in Eq. 25) are only sound
when every UDP packet is one Ethernet frame.  The default model accounts
for all ``NSUM_i`` Ethernet frames of the flow's previous cycles and all
``nframes_i^k`` Ethernet frames of the analysed packet;
``AnalysisOptions.strict_paper`` restores the printed terms.

:func:`ingress_stage` analyses all frames of the flow in one call with
batched :class:`~repro.core.demand.InterferenceSet` queries and the
safeguarded fixed-point acceleration (see ``util/fixed_point.py``); the
per-frame :func:`ingress_response_time` wrapper is kept for tests.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, ingress_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import LinearLowerBound, solve_cached


def ingress_utilization(ctx: AnalysisContext, node: str, prev: str) -> float:
    """Processor-time fraction the ingress path of ``node`` spends on
    frames arriving over ``link(prev, node)``.

    Analogue of Eq. 20 for the ingress stage: every Ethernet frame costs
    one ``CIRC(node)`` slot, so the demand rate of flow ``j`` is
    ``NSUM_j * CIRC / TSUM_j``.
    """
    circ = ctx.circ_task(node, prev)
    total = 0.0
    for j in ctx.flows_on_link(prev, node):
        dem = ctx.demand(j, prev, node)
        total += dem.nsum * circ / dem.tsum
    return total


def ingress_stage(
    ctx: AnalysisContext, flow: Flow, node: str
) -> list[StageResult]:
    """``R_i^{k,in(N)}`` (Eq. 26) for every frame ``k``: from all
    Ethernet frames of the frame received at switch ``node`` until all
    are enqueued in the priority queue of the outgoing interface."""
    prev = flow.prec(node)
    resource = ingress_resource(node)
    # The ingress task serving this flow belongs to the incoming
    # interface; its service period is CIRC(N) under round-robin and
    # the per-interface stride bound under weighted tickets.
    circ = ctx.circ_task(node, prev)
    strict = ctx.options.strict_paper
    n = flow.spec.n_frames

    interferers = ctx.flows_on_link(prev, node)  # includes `flow`
    dem_i = ctx.demand(flow, prev, node)
    tsum_i = dem_i.tsum
    horizon = ctx.horizon_for(flow)

    if ingress_utilization(ctx, node, prev) >= 1.0:
        return [diverged_stage(StageKind.INGRESS, resource)] * n

    extras = {j.name: ctx.extra(j, resource) for j in interferers}
    if any(math.isinf(e) for e in extras.values()):
        return [diverged_stage(StageKind.INGRESS, resource)] * n

    all_set = ctx.interference(
        interferers,
        prev,
        node,
        [extras[j.name] for j in interferers],
        strict=strict,
    )
    others = [j for j in interferers if j.name != flow.name]
    others_set = ctx.interference(
        others,
        prev,
        node,
        [extras[j.name] for j in others],
        strict=strict,
    )
    accelerate = ctx.options.accelerate_fixed_points
    anderson = ctx.options.anderson_fixed_points
    busy_accel = None
    others_rate = others_intercept = 0.0
    if accelerate:
        busy_accel = LinearLowerBound(*all_set.nx_support(circ))
        others_rate, others_intercept = others_set.nx_support(circ)

    # Eq. 22: busy period counted in CIRC-weighted Ethernet frames.
    def busy_update(t: float) -> float:
        return circ * all_set.nx_sum(t)

    # Both fixed points depend on the frame only through their seed /
    # backlog value, so they are memoized on it per stage call (frames
    # with equal Ethernet-frame counts share them).
    busy_cache: dict[float, float | None] = {}
    w_cache: dict[float, float | None] = {}

    def busy_for(seed: float, what: str) -> float | None:
        return solve_cached(
            busy_cache,
            seed,
            busy_update,
            seed=seed,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=what,
            accelerator=busy_accel,
            anderson=anderson,
        )

    def w_for(own_backlog: float, what: str) -> float | None:
        return solve_cached(
            w_cache,
            own_backlog,
            lambda w: own_backlog + circ * others_set.nx_sum(w),
            seed=own_backlog,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=what,
            accelerator=(
                LinearLowerBound(others_rate, others_intercept + own_backlog)
                if accelerate
                else None
            ),
            anderson=anderson,
        )

    results: list[StageResult] = []
    for frame in range(n):
        frames_k = dem_i.n_eth[frame]  # Ethernet frames of the packet
        seed = circ if strict else frames_k * circ
        busy = busy_for(
            seed, f"ingress busy period of {flow.name}[{frame}] at {node}"
        )
        if busy is None:
            results.append(diverged_stage(StageKind.INGRESS, resource))
            continue

        q_max = max(1, math.ceil(busy / tsum_i))  # Eq. 27

        worst = 0.0
        diverged = False
        for q in range(q_max):
            if strict:
                own_backlog = q * circ  # Eq. 23/24 as printed
            else:
                # q previous cycles = q*NSUM_i frames, plus the analysed
                # packet's own frames except the last (finished by the
                # +CIRC below).
                own_backlog = (q * dem_i.nsum + frames_k - 1) * circ
            w_q = w_for(
                own_backlog,
                f"ingress w({q}) of {flow.name}[{frame}] at {node}",
            )
            if w_q is None:
                diverged = True
                break
            # Eq. 25: the final CIRC services the last Ethernet frame.
            worst = max(worst, w_q - q * tsum_i + circ)

        if diverged:
            results.append(diverged_stage(StageKind.INGRESS, resource))
            continue

        results.append(
            StageResult(
                kind=StageKind.INGRESS,
                resource=resource,
                response=worst,
                busy_period=busy,
                n_instances=q_max,
                converged=True,
            )
        )
    return results


def ingress_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int, node: str
) -> StageResult:
    """``R_i^{k,in(N)}`` (Eq. 26) for a single frame ``k``."""
    return ingress_stage(ctx, flow, node)[frame]
