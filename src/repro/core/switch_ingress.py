"""Switch-ingress analysis (Sec. 3.3, Eqs. 21-27).

Inside a software switch (Fig. 5) each incoming network interface has a
dedicated software task that dequeues Ethernet frames from the NIC FIFO,
classifies them and enqueues them into the correct prioritised output
queue.  The processor runs all tasks with stride scheduling configured as
round-robin, so a task is served once every

    ``CIRC(N) = NINTERFACES(N) * (CROUTE(N) + CSEND(N))``

and every Ethernet frame waiting in the NIC FIFO costs one ``CIRC(N)``
service slot in the worst case.  Interference therefore comes only from
flows sharing the *same incoming link* ``link(prec(tau_i, N), N)``, and
is counted in Ethernet frames via ``NX`` (Eq. 13), each weighted by
``CIRC(N)``.

**Reconstruction note** (DESIGN.md): the printed own-flow terms
(``q x CIRC`` in Eq. 23, a single ``+CIRC`` in Eq. 25) are only sound
when every UDP packet is one Ethernet frame.  The default model accounts
for all ``NSUM_i`` Ethernet frames of the flow's previous cycles and all
``nframes_i^k`` Ethernet frames of the analysed packet;
``AnalysisOptions.strict_paper`` restores the printed terms.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, ingress_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import FixedPointDiverged, iterate_fixed_point


def ingress_utilization(ctx: AnalysisContext, node: str, prev: str) -> float:
    """Processor-time fraction the ingress path of ``node`` spends on
    frames arriving over ``link(prev, node)``.

    Analogue of Eq. 20 for the ingress stage: every Ethernet frame costs
    one ``CIRC(node)`` slot, so the demand rate of flow ``j`` is
    ``NSUM_j * CIRC / TSUM_j``.
    """
    circ = ctx.circ_task(node, prev)
    total = 0.0
    for j in ctx.flows_on_link(prev, node):
        dem = ctx.demand(j, prev, node)
        total += dem.nsum * circ / dem.tsum
    return total


def ingress_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int, node: str
) -> StageResult:
    """``R_i^{k,in(N)}`` (Eq. 26): from all Ethernet frames of frame ``k``
    received at switch ``node`` until all are enqueued in the priority
    queue of the outgoing interface."""
    prev = flow.prec(node)
    resource = ingress_resource(node)
    # The ingress task serving this flow belongs to the incoming
    # interface; its service period is CIRC(N) under round-robin and
    # the per-interface stride bound under weighted tickets.
    circ = ctx.circ_task(node, prev)
    strict = ctx.options.strict_paper

    interferers = ctx.flows_on_link(prev, node)  # includes `flow`
    dem_i = ctx.demand(flow, prev, node)
    tsum_i = dem_i.tsum
    frames_k = dem_i.n_eth[frame]  # Ethernet frames of the analysed packet
    horizon = ctx.horizon_for(flow)

    if ingress_utilization(ctx, node, prev) >= 1.0:
        return diverged_stage(StageKind.INGRESS, resource)

    extras = {j.name: ctx.extra(j, resource) for j in interferers}
    if any(math.isinf(e) for e in extras.values()):
        return diverged_stage(StageKind.INGRESS, resource)

    demands = {j.name: ctx.demand(j, prev, node) for j in interferers}

    # Eq. 22: busy period counted in CIRC-weighted Ethernet frames.
    def busy_update(t: float) -> float:
        return circ * sum(
            demands[j.name].nx(t + extras[j.name]) for j in interferers
        )

    seed = circ if strict else frames_k * circ
    try:
        busy = iterate_fixed_point(
            busy_update,
            seed=seed,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=f"ingress busy period of {flow.name}[{frame}] at {node}",
        ).value
    except FixedPointDiverged:
        return diverged_stage(StageKind.INGRESS, resource)

    q_max = max(1, math.ceil(busy / tsum_i))  # Eq. 27

    others = [j for j in interferers if j.name != flow.name]
    worst = 0.0
    for q in range(q_max):
        if strict:
            own_backlog = q * circ  # Eq. 23/24 as printed
        else:
            # q previous cycles = q*NSUM_i frames, plus the analysed
            # packet's own frames except the last (finished by +CIRC below).
            own_backlog = (q * dem_i.nsum + frames_k - 1) * circ

        def queue_update(w: float) -> float:
            return own_backlog + circ * sum(
                demands[j.name].nx(w + extras[j.name]) for j in others
            )

        try:
            w_q = iterate_fixed_point(
                queue_update,
                seed=own_backlog,
                horizon=horizon,
                max_iterations=ctx.options.max_fp_iterations,
                what=f"ingress w({q}) of {flow.name}[{frame}] at {node}",
            ).value
        except FixedPointDiverged:
            return diverged_stage(StageKind.INGRESS, resource)
        # Eq. 25: the final CIRC services the packet's last Ethernet frame.
        worst = max(worst, w_q - q * tsum_i + circ)

    return StageResult(
        kind=StageKind.INGRESS,
        resource=resource,
        response=worst,
        busy_period=busy,
        n_instances=q_max,
        converged=True,
    )
