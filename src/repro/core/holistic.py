"""Holistic analysis: the Sec. 3.5 jitter fixed point.

Fig. 6 assumes the generalized jitters of *other* flows at every
resource are known.  In practice only the source jitters are specified,
so the paper extends Tindell & Clark's holistic schedulability analysis:

1. assume zero jitter for every flow at every non-source resource;
2. run Fig. 6 for every flow (which writes each flow's per-resource
   jitters as accumulated upstream responses);
3. repeat until the jitter table stops changing.

Responses are monotone non-decreasing in the interfering jitters, and
jitters are accumulated responses, so the iteration is monotone: it
either converges to the least fixed point or grows past the divergence
horizon (unschedulable).

Worklist engine
---------------
``analyze_flow`` is a deterministic function of the flow's spec and the
jitters of its interferers at the resources along its route, so a flow
whose inputs did not change since its last analysis would reproduce its
previous result bit for bit — re-running it is pure waste.  The default
engine therefore precomputes the *read set* of every flow (which
``(flow, resource)`` jitter entries its first-hop / ingress / egress
stages consult, via ``flows_on_link`` and ``hep``), inverts it into a
readers map, and each round re-analyses only the flows whose read set
intersects the entries that changed bit-wise in the previous round.

Convergence is judged exactly like the full sweep: a round whose
largest write-delta is within :data:`JITTER_TOLERANCE` is the fixed
point (the :class:`~repro.core.context.JitterTable` tracks write deltas
with the same semantics the snapshot comparison had, including counting
a first explicit write as its own magnitude).  Because skipped flows
would have reproduced their cached results exactly, the worklist
trajectory — per-round table state, round count, final bounds — is
bit-identical to the full sweep's; the equivalence tests assert this.
``AnalysisOptions.incremental_holistic=False`` forces the full sweep.

The per-stage memo (``AnalysisOptions.memoize_stages``, implemented in
``core/pipeline.py``) composes with either engine: when a re-walked
flow reaches a stage whose exact jitter inputs are unchanged, the
cached :class:`~repro.core.results.StageResult` objects are replayed
instead of re-running the stage's fixed points.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro import telemetry as _telemetry
from repro.core.context import (
    AnalysisContext,
    AnalysisOptions,
    ingress_resource,
    link_resource,
)
from repro.core.pipeline import analyze_flow
from repro.core.results import FlowResult, HolisticResult
from repro.model.flow import Flow
from repro.model.network import Network

#: Absolute tolerance (seconds) below which a jitter change counts as
#: converged.  1 ns is far below any modelled quantity (CIRC ~ 15 us).
JITTER_TOLERANCE = 1e-9


def holistic_analysis(
    network: Network,
    flows: Sequence[Flow],
    options: AnalysisOptions | None = None,
    *,
    context: AnalysisContext | None = None,
) -> HolisticResult:
    """Run the holistic fixed point; returns the final per-flow results.

    Parameters
    ----------
    network, flows, options:
        Problem description (ignored when ``context`` is given).
    context:
        Optionally reuse an existing context (its jitter table is used
        as the starting point — useful for incremental admission).
    """
    ctx = context or AnalysisContext(network, flows, options)
    if ctx.options.incremental_holistic:
        return _worklist_analysis(ctx)
    return _full_sweep_analysis(ctx)


def _full_sweep_analysis(ctx: AnalysisContext) -> HolisticResult:
    """The plain Sec. 3.5 iteration: every flow, every round."""
    max_iter = ctx.options.holistic_max_iterations

    results: dict[str, FlowResult] = {}
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        before = ctx.jitters.snapshot()
        results = {f.name: analyze_flow(ctx, f) for f in ctx.flows}
        if _any_diverged(results):
            # A diverged stage yields infinite jitters downstream; the
            # iteration can never recover (monotone), so stop now.
            _note_analysis(ctx, iterations, iterations * len(ctx.flows), 0)
            return HolisticResult(
                flow_results=results, iterations=iterations, converged=False
            )
        delta = ctx.jitters.max_abs_delta(before)
        if delta <= JITTER_TOLERANCE:
            converged = True
            break
    _note_analysis(ctx, iterations, iterations * len(ctx.flows), 0)
    return HolisticResult(
        flow_results=results, iterations=iterations, converged=converged
    )


def _worklist_analysis(ctx: AnalysisContext) -> HolisticResult:
    """Dependency-aware worklist evaluation of the Sec. 3.5 iteration."""
    max_iter = ctx.options.holistic_max_iterations

    # Invert the read sets into a readers map once per analysis.  With
    # jitter modelling disabled every read returns 0 and the map is
    # empty: nothing ever gets dirty and the engine stops after the
    # confirming round, like the sweep.
    readers: dict[tuple, set[str]] = {}
    if ctx.options.use_jitter:
        for f in ctx.flows:
            for key in flow_read_set(ctx, f):
                readers.setdefault(key, set()).add(f.name)

    # The sweep analyses flows in order, so within a round a flow sees
    # the *current-round* writes of flows earlier in the order
    # (Gauss-Seidel).  The worklist mirrors that exactly: a changed
    # entry dirties readers still ahead in the current round
    # immediately, and readers already passed for the next round.
    order = {f.name: i for i, f in enumerate(ctx.flows)}
    results: dict[str, FlowResult] = {}
    pending: set[str] = {f.name for f in ctx.flows}
    converged = False
    iterations = 0
    flow_evals = 0
    invalidations = 0
    for iterations in range(1, max_iter + 1):
        ctx.jitters.begin_round()
        next_pending: set[str] = set()
        for f in ctx.flows:  # sweep order preserved (Gauss-Seidel reads)
            if f.name not in pending:
                continue
            results[f.name] = analyze_flow(ctx, f)
            flow_evals += 1
            position = order[f.name]
            for key in ctx.jitters.drain_changed_keys():
                for reader in readers.get(key, ()):
                    invalidations += 1
                    if order[reader] > position:
                        pending.add(reader)
                    else:
                        next_pending.add(reader)
        if _any_diverged(results):
            _note_analysis(ctx, iterations, flow_evals, invalidations)
            return HolisticResult(
                flow_results=results, iterations=iterations, converged=False
            )
        if ctx.jitters.round_delta() <= JITTER_TOLERANCE:
            converged = True
            break
        pending = next_pending
    _note_analysis(ctx, iterations, flow_evals, invalidations)
    return HolisticResult(
        flow_results=results, iterations=iterations, converged=converged
    )


def flow_read_set(ctx: AnalysisContext, flow: Flow) -> set[tuple]:
    """The jitter-table entries ``flow``'s Fig. 6 walk reads.

    Mirrors the stage analyses: the first hop reads every flow sharing
    the first link, each switch ingress reads every flow sharing the
    incoming link, each egress reads the ``hep`` set on the outgoing
    link.  The flow's *own* entries are excluded: the walk overwrites
    them from its spec and the upstream responses before reading them,
    so they are outputs, not inputs.
    """
    keys: set[tuple] = set()
    route = flow.route
    src = route[0]
    first = link_resource(src, route[1])
    # (core/hierarchy.py derives the same edges from the subject's side
    # when a flow is admitted; keep both in sync.)
    for j in ctx.flows_on_link(src, route[1]):
        if j.name != flow.name:
            keys.add((j.name, first))
    if len(route) > 2:
        n1, n2 = src, route[1]
        while n2 != flow.destination:
            n3 = flow.succ(n2)
            ingress = ingress_resource(n2)
            for j in ctx.flows_on_link(n1, n2):
                if j.name != flow.name:
                    keys.add((j.name, ingress))
            egress = link_resource(n2, n3)
            for j in ctx.hep(flow, n2, n3):
                keys.add((j.name, egress))
            n1, n2 = n2, n3
    return keys


def _note_analysis(
    ctx: AnalysisContext, rounds: int, flow_evals: int, invalidations: int
) -> None:
    """Record one holistic analysis's totals (once, at its exit)."""
    reg = _telemetry.REGISTRY
    if reg is None:
        return
    reg.add("engine.holistic.analyses")
    reg.add("engine.holistic.rounds", rounds)
    reg.add("engine.holistic.flow_analyses", flow_evals)
    reg.add(
        "engine.holistic.worklist_skips",
        rounds * len(ctx.flows) - flow_evals,
    )
    reg.add("engine.holistic.invalidations", invalidations)


def _any_diverged(results: dict[str, FlowResult]) -> bool:
    return any(
        math.isinf(frame.response)
        for r in results.values()
        for frame in r.frames
    )
