"""Holistic analysis: the Sec. 3.5 jitter fixed point.

Fig. 6 assumes the generalized jitters of *other* flows at every
resource are known.  In practice only the source jitters are specified,
so the paper extends Tindell & Clark's holistic schedulability analysis:

1. assume zero jitter for every flow at every non-source resource;
2. run Fig. 6 for every flow (which writes each flow's per-resource
   jitters as accumulated upstream responses);
3. repeat until the jitter table stops changing.

Responses are monotone non-decreasing in the interfering jitters, and
jitters are accumulated responses, so the iteration is monotone: it
either converges to the least fixed point or grows past the divergence
horizon (unschedulable).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.pipeline import analyze_flow
from repro.core.results import FlowResult, HolisticResult
from repro.model.flow import Flow
from repro.model.network import Network

#: Absolute tolerance (seconds) below which a jitter change counts as
#: converged.  1 ns is far below any modelled quantity (CIRC ~ 15 us).
JITTER_TOLERANCE = 1e-9


def holistic_analysis(
    network: Network,
    flows: Sequence[Flow],
    options: AnalysisOptions | None = None,
    *,
    context: AnalysisContext | None = None,
) -> HolisticResult:
    """Run the holistic fixed point; returns the final per-flow results.

    Parameters
    ----------
    network, flows, options:
        Problem description (ignored when ``context`` is given).
    context:
        Optionally reuse an existing context (its jitter table is used
        as the starting point — useful for incremental admission).
    """
    ctx = context or AnalysisContext(network, flows, options)
    max_iter = ctx.options.holistic_max_iterations

    results: dict[str, FlowResult] = {}
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        before = ctx.jitters.snapshot()
        results = {f.name: analyze_flow(ctx, f) for f in ctx.flows}
        if _any_diverged(results):
            # A diverged stage yields infinite jitters downstream; the
            # iteration can never recover (monotone), so stop now.
            return HolisticResult(
                flow_results=results, iterations=iterations, converged=False
            )
        delta = ctx.jitters.max_abs_delta(before)
        if delta <= JITTER_TOLERANCE:
            converged = True
            break
    return HolisticResult(
        flow_results=results, iterations=iterations, converged=converged
    )


def _any_diverged(results: dict[str, FlowResult]) -> bool:
    return any(
        math.isinf(frame.response)
        for r in results.values()
        for frame in r.frames
    )
