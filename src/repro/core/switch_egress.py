"""Switch-egress analysis (Sec. 3.4, Eqs. 28-35).

From all Ethernet frames of a UDP packet enqueued in the prioritised
output queue of switch ``N`` towards ``succ(tau_i, N)`` until all have
been received by the successor node.  Three effects combine:

* **static-priority queueing** (IEEE 802.1p): higher-or-equal-priority
  flows (``hep``, Eq. 2) interfere with their full transmission demand
  ``MX`` (Eq. 11);
* **non-preemptive blocking**: one already-transmitting lower-priority
  Ethernet frame of maximum size — the ``MFT`` term (Eq. 1);
* **stride-scheduling self-suspension**: the egress task that refills
  the NIC FIFO runs only once per ``CIRC(N)``, so the link may idle up
  to ``CIRC(N)`` before each Ethernet frame even when the queue is
  non-empty — the ``NX * CIRC`` terms (Eqs. 29/31).

Applicability (Eqs. 34/35): the combined utilisation of the flow and its
``hep`` set on the link must be below 1.

**Reconstruction note** (DESIGN.md): as printed, the flow's own Ethernet
frames pay no CIRC self-suspension; the default model charges
``NSUM_i * CIRC`` per previous cycle and ``nframes_i^k * CIRC`` for the
analysed packet, because the egress task serves the flow's own frames
one ``CIRC`` apart as well.  ``strict_paper`` restores the printed form.

:func:`egress_stage` analyses all frames of the flow in one call with
batched :class:`~repro.core.demand.InterferenceSet` queries and the
safeguarded fixed-point acceleration (see ``util/fixed_point.py``); the
per-frame :func:`egress_response_time` wrapper is kept for tests.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, link_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import (
    FixedPointDiverged,
    LinearLowerBound,
    iterate_fixed_point,
)


def egress_utilization(ctx: AnalysisContext, flow: Flow, node: str) -> float:
    """Left-hand side of Eqs. 34/35 *plus the flow's own utilisation*.

    The printed condition sums over ``hep`` only; the busy period also
    contains the analysed flow's own demand, so we include it (a flow
    alone with utilisation >= 1 can never converge either).
    """
    nxt = flow.succ(node)
    total = ctx.demand(flow, node, nxt).utilization
    for j in ctx.hep(flow, node, nxt):
        total += ctx.demand(j, node, nxt).utilization
    return total


def egress_stage(
    ctx: AnalysisContext, flow: Flow, node: str
) -> list[StageResult]:
    """``R_i^{k,link(N, succ(tau_i, N))}`` (Eq. 33) for every frame."""
    nxt = flow.succ(node)
    resource = link_resource(node, nxt)
    # The egress task refilling this link belongs to the outgoing
    # interface; all hep frames on the link are served by it too.
    circ = ctx.circ_task(node, nxt)
    strict = ctx.options.strict_paper
    n = flow.spec.n_frames

    dem_i = ctx.demand(flow, node, nxt)
    mft = dem_i.mft
    tsum_i = dem_i.tsum
    horizon = ctx.horizon_for(flow)

    if egress_utilization(ctx, flow, node) >= 1.0:
        return [diverged_stage(StageKind.EGRESS, resource)] * n

    hep = ctx.hep(flow, node, nxt)
    participants = (*hep, flow)  # busy period includes own demand
    extras = {j.name: ctx.extra(j, resource) for j in participants}
    if any(math.isinf(e) for e in extras.values()):
        return [diverged_stage(StageKind.EGRESS, resource)] * n

    all_set = ctx.interference(
        participants,
        node,
        nxt,
        [extras[j.name] for j in participants],
        strict=strict,
    )
    hep_set = ctx.interference(
        hep,
        node,
        nxt,
        [extras[j.name] for j in hep],
        strict=strict,
    )
    accelerate = ctx.options.accelerate_fixed_points
    anderson = ctx.options.anderson_fixed_points
    busy_accel = None
    hep_rate = hep_intercept = 0.0
    if accelerate:
        rate, intercept = all_set.mixed_support(circ)
        busy_accel = LinearLowerBound(rate, intercept + mft)
        hep_rate, hep_intercept = hep_set.mixed_support(circ)

    # Eq. 29: level-i busy period, seeded with MFT (Eq. 28).  Neither
    # the busy period nor the per-instance queuing times depend on the
    # analysed frame (the seed is MFT and the backlog is q cycles of
    # own demand), so they are computed once per stage; only the
    # completion term (Eq. 32) is per-frame.
    def busy_update(t: float) -> float:
        return mft + all_set.mixed_sum(t, circ)

    try:
        busy = iterate_fixed_point(
            busy_update,
            seed=mft,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=f"egress busy period of {flow.name} on {node}->{nxt}",
            accelerator=busy_accel,
            anderson=anderson,
        ).value
    except FixedPointDiverged:
        return [diverged_stage(StageKind.EGRESS, resource)] * n

    q_max = max(1, math.ceil(busy / tsum_i))

    # max over q of (w(q) - q*TSUM_i); per-frame completion added below.
    base = -math.inf
    for q in range(q_max):
        if strict:
            own_backlog = q * dem_i.csum  # Eq. 30/31 as printed
        else:
            own_backlog = q * (dem_i.csum + dem_i.nsum * circ)

        def queue_update(w: float) -> float:
            return mft + own_backlog + hep_set.mixed_sum(w, circ)

        accel = (
            LinearLowerBound(hep_rate, hep_intercept + mft + own_backlog)
            if accelerate
            else None
        )
        try:
            w_q = iterate_fixed_point(
                queue_update,
                seed=mft + own_backlog,  # Eq. 30
                horizon=horizon,
                max_iterations=ctx.options.max_fp_iterations,
                what=f"egress w({q}) of {flow.name} on {node}->{nxt}",
                accelerator=accel,
                anderson=anderson,
            ).value
        except FixedPointDiverged:
            return [diverged_stage(StageKind.EGRESS, resource)] * n
        base = max(base, w_q - q * tsum_i)

    prop = ctx.network.prop(node, nxt)
    results: list[StageResult] = []
    for frame in range(n):
        if strict:
            completion = dem_i.c[frame]  # Eq. 32
        else:
            completion = dem_i.c[frame] + dem_i.n_eth[frame] * circ
        # Eq. 32 max over q, then Eq. 33 propagation delay.
        worst = max(0.0, base + completion)
        results.append(
            StageResult(
                kind=StageKind.EGRESS,
                resource=resource,
                response=worst + prop,
                busy_period=busy,
                n_instances=q_max,
                converged=True,
            )
        )
    return results


def egress_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int, node: str
) -> StageResult:
    """``R_i^{k,link(N, succ(tau_i, N))}`` (Eq. 33) for one frame."""
    return egress_stage(ctx, flow, node)[frame]
