"""Switch-egress analysis (Sec. 3.4, Eqs. 28-35).

From all Ethernet frames of a UDP packet enqueued in the prioritised
output queue of switch ``N`` towards ``succ(tau_i, N)`` until all have
been received by the successor node.  Three effects combine:

* **static-priority queueing** (IEEE 802.1p): higher-or-equal-priority
  flows (``hep``, Eq. 2) interfere with their full transmission demand
  ``MX`` (Eq. 11);
* **non-preemptive blocking**: one already-transmitting lower-priority
  Ethernet frame of maximum size — the ``MFT`` term (Eq. 1);
* **stride-scheduling self-suspension**: the egress task that refills
  the NIC FIFO runs only once per ``CIRC(N)``, so the link may idle up
  to ``CIRC(N)`` before each Ethernet frame even when the queue is
  non-empty — the ``NX * CIRC`` terms (Eqs. 29/31).

Applicability (Eqs. 34/35): the combined utilisation of the flow and its
``hep`` set on the link must be below 1.

**Reconstruction note** (DESIGN.md): as printed, the flow's own Ethernet
frames pay no CIRC self-suspension; the default model charges
``NSUM_i * CIRC`` per previous cycle and ``nframes_i^k * CIRC`` for the
analysed packet, because the egress task serves the flow's own frames
one ``CIRC`` apart as well.  ``strict_paper`` restores the printed form.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, link_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import FixedPointDiverged, iterate_fixed_point


def egress_utilization(ctx: AnalysisContext, flow: Flow, node: str) -> float:
    """Left-hand side of Eqs. 34/35 *plus the flow's own utilisation*.

    The printed condition sums over ``hep`` only; the busy period also
    contains the analysed flow's own demand, so we include it (a flow
    alone with utilisation >= 1 can never converge either).
    """
    nxt = flow.succ(node)
    total = ctx.demand(flow, node, nxt).utilization
    for j in ctx.hep(flow, node, nxt):
        total += ctx.demand(j, node, nxt).utilization
    return total


def egress_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int, node: str
) -> StageResult:
    """``R_i^{k,link(N, succ(tau_i, N))}`` (Eq. 33) for switch ``node``."""
    nxt = flow.succ(node)
    resource = link_resource(node, nxt)
    # The egress task refilling this link belongs to the outgoing
    # interface; all hep frames on the link are served by it too.
    circ = ctx.circ_task(node, nxt)
    strict = ctx.options.strict_paper

    dem_i = ctx.demand(flow, node, nxt)
    mft = dem_i.mft
    tsum_i = dem_i.tsum
    c_k = dem_i.c[frame]
    frames_k = dem_i.n_eth[frame]
    horizon = ctx.horizon_for(flow)

    if egress_utilization(ctx, flow, node) >= 1.0:
        return diverged_stage(StageKind.EGRESS, resource)

    hep = ctx.hep(flow, node, nxt)
    participants = (*hep, flow)  # busy period includes own demand
    extras = {j.name: ctx.extra(j, resource) for j in participants}
    if any(math.isinf(e) for e in extras.values()):
        return diverged_stage(StageKind.EGRESS, resource)

    demands = {j.name: ctx.demand(j, node, nxt) for j in participants}

    def demand_of(j_name: str, t: float) -> float:
        """One flow's MX + NX*CIRC contribution at horizon ``t``.

        Corrected mode uses the uncapped arrival-work bound (see
        LinkDemand.mx_work); strict mode keeps the printed Eq. 10 cap.
        """
        dem = demands[j_name]
        shifted = t + extras[j_name]
        mx = dem.mx(shifted) if strict else dem.mx_work(shifted)
        return mx + dem.nx(shifted) * circ

    # Eq. 29: level-i busy period, seeded with MFT (Eq. 28).
    def busy_update(t: float) -> float:
        return mft + sum(demand_of(j.name, t) for j in participants)

    try:
        busy = iterate_fixed_point(
            busy_update,
            seed=mft,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=f"egress busy period of {flow.name}[{frame}] on {node}->{nxt}",
        ).value
    except FixedPointDiverged:
        return diverged_stage(StageKind.EGRESS, resource)

    q_max = max(1, math.ceil(busy / tsum_i))

    worst = 0.0
    for q in range(q_max):
        if strict:
            own_backlog = q * dem_i.csum  # Eq. 30/31 as printed
            completion = c_k  # Eq. 32
        else:
            own_backlog = q * (dem_i.csum + dem_i.nsum * circ)
            completion = c_k + frames_k * circ

        def queue_update(w: float) -> float:
            return (
                mft
                + own_backlog
                + sum(demand_of(j.name, w) for j in hep)
            )

        try:
            w_q = iterate_fixed_point(
                queue_update,
                seed=mft + own_backlog,  # Eq. 30
                horizon=horizon,
                max_iterations=ctx.options.max_fp_iterations,
                what=f"egress w({q}) of {flow.name}[{frame}] on {node}->{nxt}",
            ).value
        except FixedPointDiverged:
            return diverged_stage(StageKind.EGRESS, resource)
        # Eq. 32: completion of the q-th instance.
        worst = max(worst, w_q - q * tsum_i + completion)

    # Eq. 33: add the link's propagation delay.
    response = worst + ctx.network.prop(node, nxt)
    return StageResult(
        kind=StageKind.EGRESS,
        resource=resource,
        response=response,
        busy_period=busy,
        n_instances=q_max,
        converged=True,
    )
