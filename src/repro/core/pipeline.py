"""End-to-end composition: the Fig. 6 algorithm.

Walks a flow's route resource by resource.  At each resource the
accumulated jitter ``JSUM`` (source jitter plus all upstream stage
responses) is recorded as the flow's generalized jitter *at that
resource* — this is what other flows' analyses read via ``extra_j`` —
then the per-resource analysis runs and both ``RSUM`` and ``JSUM``
advance by its response.  The end-to-end bound of frame ``k`` is the
final ``RSUM`` (which Fig. 6 line 3 initialises to ``GJ_i^k``).

The walk processes **all frames of the flow together**, stage by stage:
this is exactly Fig. 6 run for every ``k``, but it keeps the flow's own
per-frame jitter entries coherent at each resource before the next
stage's analysis reads them.

Stages per route ``S -> W1 -> ... -> Wm -> D`` (Fig. 6 loop):

* first hop on ``link(S, W1)`` (Sec. 3.2);
* for each switch ``Wj``: ingress at ``Wj`` (Sec. 3.3) then egress on
  ``link(Wj, next)`` (Sec. 3.4).

A route with no switch (``S -> D``) degenerates to the first hop alone
(the paper's Fig. 6 loop body never runs for it; see DESIGN.md).
"""

from __future__ import annotations

import math

from repro import telemetry as _telemetry
from repro.core.context import AnalysisContext, ingress_resource, link_resource
from repro.core.first_hop import first_hop_stage
from repro.core.results import FlowResult, FrameResult, StageResult
from repro.core.switch_egress import egress_stage
from repro.core.switch_ingress import ingress_stage
from repro.model.flow import Flow


def analyze_flow(ctx: AnalysisContext, flow: Flow) -> FlowResult:
    """Run Fig. 6 for every frame of ``flow``; updates the jitter table.

    Other flows' jitters are read from the context's current jitter
    table (the holistic iteration of Sec. 3.5 refreshes them); this
    flow's own per-resource jitters are written as the walk progresses.

    Each stage is analysed for all frames in one call (the interferer
    tables are shared across the flow's frames; see the stage modules),
    then frames whose accumulated jitter already diverged upstream are
    masked to diverged stages.
    """
    spec = flow.spec
    n = spec.n_frames
    # Fig. 6 line 3: RSUM := GJ_i^k; JSUM := GJ_i^k.
    rsum = [float(j) for j in spec.jitters]
    jsum = [float(j) for j in spec.jitters]
    stages: list[list[StageResult]] = [[] for _ in range(n)]

    memoize = ctx.options.memoize_stages

    def run_stage(resource, participants, stage) -> None:
        """Set this flow's jitters at ``resource``, analyse all frames,
        and advance RSUM/JSUM by the responses.

        Fig. 6 lines 8/13/17: the jitter at a resource is the JSUM
        accumulated *before* the resource.

        ``participants`` are the flows whose jitters at ``resource`` the
        stage analysis reads (its only inputs that vary over the
        context's lifetime, besides this flow's own jitters).  With
        ``memoize_stages`` the stage is replayed from cache whenever
        those inputs are unchanged since its last run.
        """
        ctx.jitters.set(flow.name, resource, jsum)
        if memoize:
            inputs = (tuple(jsum), ctx.extras(participants, resource))
            hit = ctx.stage_memo_get(flow.name, resource)
            reg = _telemetry.REGISTRY
            if hit is not None and hit[0] == inputs:
                if reg is not None:
                    reg.add("engine.stage_memo.hits")
                results = hit[1]
            else:
                if reg is not None:
                    reg.add("engine.stage_memo.misses")
                results = stage()
                ctx.stage_memo_put(flow.name, resource, inputs, results)
        else:
            results = stage()
        for k in range(n):
            result = results[k]
            if math.isinf(jsum[k]) and not math.isinf(result.response):
                # An upstream stage diverged for this frame but the
                # stage analysis (e.g. with jitter modelling disabled)
                # did not see it; short-circuit the frame.
                from repro.core.results import diverged_stage

                result = diverged_stage(_stage_kind_for(resource), resource)
            stages[k].append(result)
            rsum[k] += result.response
            jsum[k] += result.response

    route = flow.route
    src = route[0]

    if len(route) == 2:
        # Degenerate source->destination route: first hop only.
        run_stage(
            link_resource(src, route[1]),
            ctx.flows_on_link(src, route[1]),
            lambda: first_hop_stage(ctx, flow),
        )
    else:
        n1, n2 = src, route[1]
        while n2 != flow.destination:
            n3 = flow.succ(n2)
            if n1 == src:
                run_stage(
                    link_resource(n1, n2),
                    ctx.flows_on_link(n1, n2),
                    lambda: first_hop_stage(ctx, flow),
                )
            run_stage(
                ingress_resource(n2),
                ctx.flows_on_link(n1, n2),
                lambda _n=n2: ingress_stage(ctx, flow, _n),
            )
            run_stage(
                link_resource(n2, n3),
                (*ctx.hep(flow, n2, n3), flow),
                lambda _n=n2: egress_stage(ctx, flow, _n),
            )
            n1, n2 = n2, n3

    frames = tuple(
        FrameResult(
            frame=k,
            response=rsum[k],
            deadline=spec.deadlines[k],
            stages=tuple(stages[k]),
        )
        for k in range(n)
    )
    return FlowResult(flow_name=flow.name, frames=frames)


def _stage_kind_for(resource) -> "StageKind":
    from repro.core.results import StageKind

    return StageKind.INGRESS if resource[0] == "in" else StageKind.EGRESS


def analyze_flow_frame(ctx: AnalysisContext, flow: Flow, frame: int) -> FrameResult:
    """Fig. 6 for a single frame ``k`` (convenience wrapper).

    Runs the full per-flow walk (needed to keep the flow's own jitter
    entries coherent) and returns the requested frame's result.
    """
    if not (0 <= frame < flow.spec.n_frames):
        raise IndexError(
            f"frame {frame} outside 0..{flow.spec.n_frames - 1} of {flow.name!r}"
        )
    return analyze_flow(ctx, flow).frame(frame)
