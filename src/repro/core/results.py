"""Result records of the analysis.

The Fig. 6 pipeline produces, per frame of a flow, a sequence of
per-resource *stage* results whose responses sum (together with the
source jitter) to the end-to-end bound ``R_i^k``; the holistic iteration
wraps those per-flow results with convergence metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence


class StageKind(Enum):
    """Which of the paper's three analyses produced a stage result."""

    FIRST_HOP = "first_hop"  # Sec. 3.2, Eqs. 14-20
    INGRESS = "ingress"      # Sec. 3.3, Eqs. 21-27
    EGRESS = "egress"        # Sec. 3.4, Eqs. 28-35


@dataclass(frozen=True)
class StageResult:
    """Response-time bound of one frame at one resource.

    Attributes
    ----------
    kind:
        Which analysis produced this stage.
    resource:
        ``("link", N1, N2)`` or ``("in", N)``.
    response:
        The stage bound ``R_i^{k,resource}`` in seconds (``inf`` when the
        busy period diverged — unschedulable).
    busy_period:
        Length of the (level-i) busy period the analysis explored.
    n_instances:
        ``Q_i^k``: how many instances of the frame were checked.
    converged:
        False exactly when ``response`` is ``inf`` due to divergence.
    """

    kind: StageKind
    resource: tuple
    response: float
    busy_period: float = 0.0
    n_instances: int = 0
    converged: bool = True

    @property
    def diverged(self) -> bool:
        return not self.converged


def diverged_stage(kind: StageKind, resource: tuple) -> StageResult:
    """A stage marking divergence (response ``inf``)."""
    return StageResult(
        kind=kind,
        resource=resource,
        response=math.inf,
        busy_period=math.inf,
        n_instances=0,
        converged=False,
    )


@dataclass(frozen=True)
class FrameResult:
    """End-to-end result for frame ``k`` of a flow.

    ``response`` is ``GJ_i^k`` plus the sum of stage responses (Fig. 6
    initialises ``RSUM := GJ_i^k``).
    """

    frame: int
    response: float
    deadline: float
    stages: tuple[StageResult, ...]

    @property
    def schedulable(self) -> bool:
        """True when the bound meets the frame's end-to-end deadline."""
        return self.response <= self.deadline

    @property
    def slack(self) -> float:
        """Deadline minus bound; negative when unschedulable."""
        return self.deadline - self.response

    def stage_breakdown(self) -> list[tuple[str, float]]:
        """Human-readable ``(stage, response)`` rows."""
        rows: list[tuple[str, float]] = []
        for s in self.stages:
            if s.kind is StageKind.INGRESS:
                label = f"in({s.resource[1]})"
            else:
                label = f"{s.kind.value} link({s.resource[1]},{s.resource[2]})"
            rows.append((label, s.response))
        return rows


@dataclass(frozen=True)
class FlowResult:
    """Per-flow analysis outcome: one :class:`FrameResult` per frame."""

    flow_name: str
    frames: tuple[FrameResult, ...]

    @property
    def schedulable(self) -> bool:
        return all(f.schedulable for f in self.frames)

    @property
    def worst_response(self) -> float:
        return max(f.response for f in self.frames)

    @property
    def worst_slack(self) -> float:
        return min(f.slack for f in self.frames)

    def frame(self, k: int) -> FrameResult:
        return self.frames[k]


@dataclass(frozen=True)
class HolisticResult:
    """Outcome of the holistic fixed-point analysis (Sec. 3.5).

    Attributes
    ----------
    flow_results:
        Final per-flow results, keyed by flow name.
    iterations:
        Outer jitter-update iterations performed.
    converged:
        True when the jitter table reached a fixed point.  When False
        (divergence or iteration cap) the flow set must be treated as
        unschedulable even if individual responses look finite.
    """

    flow_results: Mapping[str, FlowResult]
    iterations: int
    converged: bool

    @property
    def schedulable(self) -> bool:
        """The admission test: converged and every deadline met."""
        return self.converged and all(
            r.schedulable for r in self.flow_results.values()
        )

    def result(self, flow_name: str) -> FlowResult:
        return self.flow_results[flow_name]

    def response(self, flow_name: str, frame: int | None = None) -> float:
        """End-to-end bound of a frame (or the flow's worst frame)."""
        fr = self.flow_results[flow_name]
        if frame is None:
            return fr.worst_response
        return fr.frame(frame).response

    def summary_rows(self) -> list[tuple[str, float, float, bool]]:
        """``(flow, worst R, worst slack, schedulable)`` rows."""
        return [
            (name, r.worst_response, r.worst_slack, r.schedulable)
            for name, r in sorted(self.flow_results.items())
        ]
