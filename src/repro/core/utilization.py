"""Convergence / applicability conditions (Eqs. 20, 34, 35).

Each per-resource analysis converges only when the long-run demand on
the resource stays below capacity:

* first hop (Eq. 20): the summed ``CSUM/TSUM`` of *all* flows on the
  link < 1 (any work-conserving discipline, so everyone interferes);
* ingress: each Ethernet frame costs one ``CIRC`` processor slot, so
  the frame-rate-weighted ``CIRC`` demand on the incoming link < 1;
* egress (Eqs. 34/35): the ``CSUM/TSUM`` of the flow plus its
  higher-or-equal-priority set on the link < 1 (lower-priority flows
  only contribute the single bounded ``MFT`` blocking).

:func:`network_convergence_report` evaluates every resource a flow set
touches, which the experiments use to characterise the feasible region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.context import AnalysisContext
from repro.core.first_hop import first_hop_utilization
from repro.core.switch_egress import egress_utilization
from repro.core.switch_ingress import ingress_utilization
from repro.model.flow import Flow
from repro.model.network import Network, NodeKind


def link_utilization(ctx: AnalysisContext, n1: str, n2: str) -> float:
    """Raw wire utilisation of ``link(n1, n2)`` (all flows, Eq. 20 LHS)."""
    return first_hop_utilization(ctx, n1, n2)


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilisation of one analysed resource and its convergence verdict."""

    resource: tuple
    utilization: float

    @property
    def convergent(self) -> bool:
        """Whether the corresponding analysis can converge (< 1)."""
        return self.utilization < 1.0


@dataclass(frozen=True)
class ConvergenceReport:
    """Utilisations of every resource used by the flow set."""

    entries: tuple[ResourceUtilization, ...]

    @property
    def all_convergent(self) -> bool:
        return all(e.convergent for e in self.entries)

    @property
    def max_utilization(self) -> float:
        return max((e.utilization for e in self.entries), default=0.0)

    def bottleneck(self) -> ResourceUtilization | None:
        """The most loaded resource (None for an empty flow set)."""
        if not self.entries:
            return None
        return max(self.entries, key=lambda e: e.utilization)


def network_convergence_report(ctx: AnalysisContext) -> ConvergenceReport:
    """Evaluate Eqs. 20/34/35-style conditions on every used resource.

    For egress links the per-flow ``hep`` sets differ, so the entry
    records the *worst* (lowest-priority flow's) utilisation — the one
    that binds convergence of the whole analysis.
    """
    entries: list[ResourceUtilization] = []
    seen_links: set[tuple[str, str]] = set()
    seen_ingress: set[tuple[str, str]] = set()

    for flow in ctx.flows:
        route = flow.route
        # First hop.
        first = (route[0], route[1])
        if first not in seen_links:
            seen_links.add(first)
            entries.append(
                ResourceUtilization(
                    resource=("link", *first),
                    utilization=first_hop_utilization(ctx, *first),
                )
            )
        # Switch stages.
        for node in flow.intermediate_switches():
            prev = flow.prec(node)
            nxt = flow.succ(node)
            ikey = (prev, node)
            if ikey not in seen_ingress:
                seen_ingress.add(ikey)
                entries.append(
                    ResourceUtilization(
                        resource=("in", node, prev),
                        utilization=ingress_utilization(ctx, node, prev),
                    )
                )
            ekey = (node, nxt)
            if ekey not in seen_links:
                seen_links.add(ekey)
                # Worst hep-utilisation over flows using the link: the
                # lowest-priority flow sees everyone.
                worst = max(
                    egress_utilization(ctx, f, node)
                    for f in ctx.flows_on_link(node, nxt)
                )
                entries.append(
                    ResourceUtilization(
                        resource=("link", *ekey), utilization=worst
                    )
                )
    return ConvergenceReport(entries=tuple(entries))
