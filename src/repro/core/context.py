"""Analysis context: network + flow set + jitter table + caches.

The per-resource analyses (first hop, ingress, egress) all need the same
queries: "which flows share this resource", "what is flow j's demand
profile on this link", "what is flow j's generalized jitter at this
resource" (``extra_j``, Sec. 3.2).  :class:`AnalysisContext` centralises
them, caches the expensive :class:`~repro.core.demand.LinkDemand`
construction, and owns the mutable jitter table that the Fig. 6 pipeline
writes and the holistic iteration (Sec. 3.5) drives to a fixed point.

Resources are identified by :data:`ResourceKey` tuples:

* ``("link", N1, N2)`` — the prioritised output queue feeding
  ``link(N1, N2)`` (used both by the first-hop and the egress analyses);
* ``("in", N)`` — the ingress path of switch ``N`` (NIC FIFO → priority
  queue).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.core.demand import LinkDemand, build_link_demand
from repro.core.packetization import DEFAULT_CONFIG, STRICT_CONFIG, PacketizationConfig
from repro.model.flow import Flow, check_unique_names, flows_on_link, hep_flows
from repro.model.network import Network, NodeKind

#: ``("link", N1, N2)`` or ``("in", N)``.
ResourceKey = tuple


def link_resource(n1: str, n2: str) -> ResourceKey:
    """Resource key of the output queue feeding ``link(n1, n2)``."""
    return ("link", n1, n2)


def ingress_resource(n: str) -> ResourceKey:
    """Resource key of switch ``n``'s ingress path."""
    return ("in", n)


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the analysis; defaults reproduce the corrected model.

    Attributes
    ----------
    strict_paper:
        Use the paper's equations exactly as printed (see DESIGN.md OCR
        table): remainder fragments cost ``rem+304`` bits, and the
        ingress/egress own-flow terms assume one Ethernet frame per UDP
        packet.  Default False = documented sound reconstruction.
    use_jitter:
        When False, all generalized jitters are treated as zero
        (ablation E8: quantifies how much the jitter propagation
        contributes to the bound).
    horizon_factor:
        Busy periods longer than ``horizon_factor * max(TSUM_i, D_i)``
        are declared divergent (unschedulable); backstop for utilisation
        near 1 where Eqs. 20/34/35 technically hold but convergence is
        astronomically slow.
    max_fp_iterations:
        Iteration cap per fixed point.
    holistic_max_iterations:
        Cap on the outer holistic jitter iterations (Sec. 3.5).
    accelerate_fixed_points:
        Use the safeguarded certified-floor acceleration of
        ``util/fixed_point.py`` for the busy-period recurrences.  The
        accelerated iteration provably converges to the same least
        fixed point as plain Picard; disable to run the plain seed
        solver (used by the engine-equivalence tests).
    incremental_holistic:
        Drive the Sec. 3.5 outer iteration with the dependency-aware
        worklist engine (see ``core/holistic.py``), re-analysing only
        flows whose interfering jitters changed.  Produces bit-identical
        results to the full sweep; disable to force the full sweep.
    anderson_fixed_points:
        Opt-in Anderson(1)/secant extrapolation in the fixed-point
        solver (see ``util/fixed_point.py``), layered on top of the
        certified floor and defended by the same overshoot safeguard
        (any non-increase at a jump target restarts plain Picard; a
        jump can never prove divergence).  Off by default and **not**
        part of the bit-identical engine family: unlike the floor, the
        jumps carry no certificate, so on multi-crossing demand
        staircases the returned bound can be a non-least fixed point —
        still a sound (pessimistic) upper bound, since every stage and
        the holistic iteration are monotone in it, but not exact.
    memoize_stages:
        Cache each (flow, resource) stage analysis on its exact varying
        inputs — the flow's own per-frame jitters at the resource and
        every participant's ``extra_j`` there (all other stage inputs
        are fixed for the context's lifetime).  A holistic round that
        re-walks a flow then recomputes only the stages whose inputs
        actually moved; untouched stages replay their cached
        :class:`~repro.core.results.StageResult` objects bit for bit.
        Purely a perf knob — disable to re-run every stage analysis.
    flat_demand_arrays:
        Serve stage interference sets from per-link
        :class:`~repro.core.demand.LinkDemandMatrix` stores (stacked,
        spec-class-deduplicated window matrices gathered by row index)
        instead of packing per-flow ``LinkDemand`` objects per stage.
        Queries are bit-identical — same shared window arrays, same
        reduction order — so this is purely a memory/speed knob; it is
        what keeps 10^5-flow links from thrashing the per-set packing
        cache.  Disable to force the object-per-flow construction.
    """

    strict_paper: bool = False
    use_jitter: bool = True
    horizon_factor: float = 1000.0
    max_fp_iterations: int = 100_000
    holistic_max_iterations: int = 200
    accelerate_fixed_points: bool = True
    anderson_fixed_points: bool = False
    incremental_holistic: bool = True
    memoize_stages: bool = True
    flat_demand_arrays: bool = True

    @property
    def packetization(self) -> PacketizationConfig:
        return STRICT_CONFIG if self.strict_paper else DEFAULT_CONFIG


class JitterTable:
    """Per-flow, per-resource, per-frame generalized jitters.

    ``GJ_i^{k,resource}`` of the paper.  Defaults: at a flow's first
    resource (the output queue of its source) the jitter is the flow's
    specified source jitter ``GJ_i^k``; everywhere else it defaults to 0
    until the pipeline walk fills it in (holistic initialisation,
    Sec. 3.5).

    The table tracks its own writes so the holistic engine can run
    per-round fixed-point detection without copying the whole table:
    :meth:`begin_round` resets the accounting, :meth:`round_delta`
    mirrors the magnitude :meth:`max_abs_delta` would report against a
    round-start snapshot (a first explicit write counts as its own
    magnitude, matching the snapshot semantics), and
    :meth:`drain_changed_keys` yields the keys whose *effective* value
    (as seen through :meth:`get`) changed bit-wise — the worklist
    engine's dirtiness signal.
    """

    _MISSING = object()  # undo-log marker: key absent before the write

    def __init__(self, flows: Sequence[Flow]):
        self._specs = {f.name: f.spec for f in flows}
        self._first_resource = {
            f.name: link_resource(f.route[0], f.route[1]) for f in flows
        }
        self._table: dict[tuple[str, ResourceKey], tuple[float, ...]] = {}
        # Flow name -> explicit resource keys; lets flow removal and
        # cold resets run in O(own entries) instead of a table scan.
        self._keys_by_flow: dict[str, set[ResourceKey]] = {}
        self._round_delta = 0.0
        self._changed: set[tuple[str, ResourceKey]] = set()
        # Flow name -> {resource -> max per-frame jitter}: memoises
        # :meth:`extra`, the single hottest query of the stage memo
        # (every memoised stage rebuilds its input tuple from it).
        # Keyed flow-first so removal/reset/rollback drop a flow's
        # cached extras in one pop; defaults are cached too (they are
        # constant per flow), explicit writes refresh their entry.
        self._extra_cache: dict[str, dict[ResourceKey, float]] = {}
        # When a dict, `set` records each key's pre-write value on first
        # touch; see begin_undo / rollback_undo (incremental admission).
        self._undo: dict[tuple[str, ResourceKey], object] | None = None

    def get(self, flow_name: str, resource: ResourceKey) -> tuple[float, ...]:
        """Per-frame jitters of a flow at a resource."""
        key = (flow_name, resource)
        if key in self._table:
            return self._table[key]
        spec = self._specs[flow_name]
        if resource == self._first_resource[flow_name]:
            return spec.jitters
        return (0.0,) * spec.n_frames

    def set(
        self, flow_name: str, resource: ResourceKey, jitters: Sequence[float]
    ) -> None:
        spec = self._specs[flow_name]
        jit = tuple(float(j) for j in jitters)
        if len(jit) != spec.n_frames:
            raise ValueError(
                f"flow {flow_name!r}: {len(jit)} jitters for "
                f"{spec.n_frames} frames"
            )
        key = (flow_name, resource)
        old = self._table.get(key)
        if self._undo is not None and key not in self._undo:
            self._undo[key] = old if old is not None else self._MISSING
        if old is None:
            # First explicit write: the snapshot-based delta counts a
            # newly-appearing entry as its own magnitude, but dirtiness
            # is judged against the implicit default `get` returned.
            delta = max((abs(x) for x in jit), default=0.0)
            if jit != self.get(flow_name, resource):
                self._changed.add(key)
        else:
            delta = 0.0
            for x, y in zip(jit, old):
                if math.isinf(x) and math.isinf(y):
                    continue
                delta = max(delta, abs(x - y))
            if jit != old:
                self._changed.add(key)
        if delta > self._round_delta:
            self._round_delta = delta
        if old is None:
            self._keys_by_flow.setdefault(flow_name, set()).add(resource)
        self._table[key] = jit
        per_flow = self._extra_cache.get(flow_name)
        if per_flow is None:
            per_flow = self._extra_cache[flow_name] = {}
        per_flow[resource] = max(jit)

    # ------------------------------------------------------------------
    # Incremental flow-set mutation (core/hierarchy.py)
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> None:
        """Register a new flow; its entries start at the defaults."""
        if flow.name in self._specs:
            raise ValueError(f"flow {flow.name!r} already in table")
        self._specs[flow.name] = flow.spec
        self._first_resource[flow.name] = link_resource(
            flow.route[0], flow.route[1]
        )

    def remove_flow(self, flow_name: str) -> None:
        """Drop a flow and all its explicit entries."""
        self._specs.pop(flow_name)
        self._first_resource.pop(flow_name)
        self._extra_cache.pop(flow_name, None)
        for resource in self._keys_by_flow.pop(flow_name, ()):
            self._table.pop((flow_name, resource), None)

    def reset_flow(self, flow_name: str) -> None:
        """Drop a flow's explicit entries (back to defaults).

        Cold restart for incremental release: removing interference
        lowers the least fixed point, so re-iterating an affected flow
        from its old (now over-approximating) entries could stick at a
        non-least fixed point; from the defaults the monotone iteration
        reaches the same least fixed point a from-scratch analysis does.
        """
        self._extra_cache.pop(flow_name, None)
        for resource in self._keys_by_flow.pop(flow_name, ()):
            self._table.pop((flow_name, resource), None)

    # ------------------------------------------------------------------
    # Undo log (tentative incremental admission)
    # ------------------------------------------------------------------
    def begin_undo(self) -> None:
        """Start recording pre-write values for :meth:`rollback_undo`."""
        self._undo = {}

    def commit_undo(self) -> None:
        """Accept all writes since :meth:`begin_undo`."""
        self._undo = None

    def rollback_undo(self) -> None:
        """Restore every entry written since :meth:`begin_undo`."""
        undo, self._undo = self._undo, None
        for (name, resource), old in undo.items():
            # Dropping the whole per-flow extras dict (not just the
            # touched resource) is safe: defaults recompute lazily.
            self._extra_cache.pop(name, None)
            if old is self._MISSING:
                self._table.pop((name, resource), None)
                keys = self._keys_by_flow.get(name)
                if keys is not None:
                    keys.discard(resource)
            else:
                self._table[(name, resource)] = old

    def begin_round(self) -> None:
        """Reset per-round write accounting (holistic engine)."""
        self._round_delta = 0.0
        self._changed.clear()

    def round_delta(self) -> float:
        """Largest change any write made since :meth:`begin_round`."""
        return self._round_delta

    def drain_changed_keys(self) -> set[tuple[str, ResourceKey]]:
        """Keys whose effective value changed since :meth:`begin_round`."""
        changed = self._changed
        self._changed = set()
        return changed

    def seed(
        self,
        entries: Mapping[tuple[str, ResourceKey], Sequence[float]],
    ) -> None:
        """Install explicit entries wholesale (snapshot restore).

        Entries of unknown flows are skipped so a table restored from a
        superset snapshot stays consistent; known-flow entries are
        length-validated against the flow's frame count.
        """
        for (name, resource), jit in entries.items():
            if name not in self._specs:
                continue
            jit = tuple(float(j) for j in jit)
            if len(jit) != self._specs[name].n_frames:
                raise ValueError(
                    f"flow {name!r}: {len(jit)} jitters for "
                    f"{self._specs[name].n_frames} frames"
                )
            resource = tuple(resource)
            self._table[(name, resource)] = jit
            self._keys_by_flow.setdefault(name, set()).add(resource)
            self._extra_cache.pop(name, None)

    def warm_start_from(self, other: "JitterTable") -> None:
        """Seed entries from a converged table of a *subset* flow set.

        Admission hot path: the admitted flows' converged jitters are a
        sound starting point for the tentative (superset) analysis —
        adding a flow only increases interference, so the old least
        fixed point lies below the new one and the monotone iteration
        started from it converges to the same result, in fewer rounds.
        """
        for (name, resource), jit in other._table.items():
            if name in self._specs:
                self._table[(name, resource)] = jit
                self._keys_by_flow.setdefault(name, set()).add(resource)
                self._extra_cache.pop(name, None)

    def extra(self, flow_name: str, resource: ResourceKey) -> float:
        """``extra_j(N, i)``: the largest per-frame jitter at the resource."""
        per_flow = self._extra_cache.get(flow_name)
        if per_flow is None:
            per_flow = self._extra_cache[flow_name] = {}
        value = per_flow.get(resource)
        if value is None:
            value = per_flow[resource] = max(self.get(flow_name, resource))
        return value

    def snapshot(self) -> dict[tuple[str, ResourceKey], tuple[float, ...]]:
        """Copy of the explicit entries (for fixed-point comparison)."""
        return dict(self._table)

    def max_abs_delta(self, other: Mapping[tuple[str, ResourceKey], tuple[float, ...]]) -> float:
        """Largest elementwise change vs a previous snapshot."""
        keys = set(self._table) | set(other)
        worst = 0.0
        for key in keys:
            a = self._table.get(key)
            b = other.get(key)
            if a is None or b is None:
                # A newly-appearing entry counts as its own magnitude.
                present = a if a is not None else b
                worst = max(worst, max(abs(x) for x in present))
                continue
            for x, y in zip(a, b):
                if math.isinf(x) and math.isinf(y):
                    continue
                worst = max(worst, abs(x - y))
        return worst


class AnalysisContext:
    """Everything the per-resource analyses need, with caching.

    Parameters
    ----------
    network:
        The multihop topology.
    flows:
        All flows admitted to the network (routes must be valid for
        ``network``; checked on construction).
    options:
        Analysis knobs; see :class:`AnalysisOptions`.
    """

    def __init__(
        self,
        network: Network,
        flows: Sequence[Flow],
        options: AnalysisOptions | None = None,
        *,
        _shared_demand_cache: dict | None = None,
    ):
        from repro.model.routing import validate_route  # cycle-free import

        check_unique_names(flows)
        for f in flows:
            validate_route(network, f.route)
        self.network = network
        self.flows: tuple[Flow, ...] = tuple(flows)
        self.options = options or AnalysisOptions()
        self.jitters = JitterTable(self.flows)
        self._by_name = {f.name: f for f in self.flows}
        # Maps flow name -> {(n1, n2) -> (flow object, LinkDemand)}.
        # Keyed by name first so an admission release/rejection evicts a
        # flow's profiles in O(1) instead of scanning the whole cache.
        # The flow object is kept for a value check (identity fast
        # path): the cache may be structurally shared across contexts
        # (admission hot path), and a released name could later be
        # reused by a different flow.
        self._demand_cache: dict[
            str, dict[tuple[str, str], tuple[Flow, LinkDemand]]
        ] = _shared_demand_cache if _shared_demand_cache is not None else {}
        self._link_flows_cache: dict[tuple[str, str], tuple[Flow, ...]] = {}
        self._hep_cache: dict[tuple[str, str, str], tuple[Flow, ...]] = {}
        # resource -> {flow name -> (jitter inputs, stage results)}; see
        # AnalysisOptions.memoize_stages.  Never shared across contexts:
        # the cached results embed the flow *set* (interferer demand
        # tables), which with_flows changes.  Keyed resource-first so a
        # mutable context (core/hierarchy.py) can invalidate everything
        # a flow-set change at one link touches in O(1).
        self._stage_cache: dict[ResourceKey, dict[str, tuple]] = {}
        # (n1, n2) -> (version, LinkDemandMatrix); versions only move in
        # mutable subclasses (the flow set of a base context is fixed).
        self._matrix_cache: dict[tuple[str, str], tuple[int, object]] = {}
        self._link_versions: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Flow / topology queries
    # ------------------------------------------------------------------
    def flow(self, name: str) -> Flow:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown flow {name!r}") from None

    def flows_on_link(self, n1: str, n2: str) -> tuple[Flow, ...]:
        """``flows(N1, N2)``: flows whose route uses the link."""
        key = (n1, n2)
        if key not in self._link_flows_cache:
            self._link_flows_cache[key] = tuple(
                flows_on_link(self.flows, n1, n2)
            )
        return self._link_flows_cache[key]

    def hep(self, flow: Flow, n1: str, n2: str) -> tuple[Flow, ...]:
        """``hep(tau_i, N1, N2)`` (Eq. 2), excluding ``flow`` itself."""
        key = (flow.name, n1, n2)
        if key not in self._hep_cache:
            self._hep_cache[key] = tuple(hep_flows(self.flows, flow, n1, n2))
        return self._hep_cache[key]

    def demand(self, flow: Flow, n1: str, n2: str) -> LinkDemand:
        """Cached :class:`LinkDemand` of ``flow`` on ``link(n1, n2)``.

        Entries are value-checked (with an identity fast path): a
        profile is a pure function of the flow's value and the link, so
        an equal flow parsed from the wire or unpickled by a shard
        worker reuses the cached profile, while a *different* flow
        reusing a released name can never be served a stale one.
        """
        per_flow = self._demand_cache.get(flow.name)
        if per_flow is None:
            per_flow = self._demand_cache[flow.name] = {}
        entry = per_flow.get((n1, n2))
        reg = _telemetry.REGISTRY
        if entry is None or (entry[0] is not flow and entry[0] != flow):
            if reg is not None:
                reg.add("engine.demand_cache.misses")
            entry = (
                flow,
                build_link_demand(
                    flow,
                    self.network.linkspeed(n1, n2),
                    self.options.packetization,
                ),
            )
            per_flow[(n1, n2)] = entry
        else:
            if reg is not None:
                reg.add("engine.demand_cache.hits")
            if entry[0] is not flow:
                # Equal value, new object (e.g. a re-parsed request):
                # rekey so later lookups take the identity fast path.
                entry = (flow, entry[1])
                per_flow[(n1, n2)] = entry
        return entry[1]

    def pop_demands(
        self, flow_name: str
    ) -> dict[tuple[str, str], tuple[Flow, LinkDemand]] | None:
        """Detach and return a flow's cached demand profiles (or None).

        The admission controller retires released flows' profiles into a
        bounded store instead of discarding them; :meth:`install_demands`
        puts them back on re-admission.  Entries stay value-checked
        (see :meth:`demand`), so reinstalling profiles of a reused
        name now naming a different flow can never serve a wrong
        profile — it just rebuilds on first access.
        """
        return self._demand_cache.pop(flow_name, None)

    def install_demands(
        self,
        flow_name: str,
        entries: dict[tuple[str, str], tuple[Flow, LinkDemand]],
    ) -> None:
        """Re-attach demand profiles previously detached by
        :meth:`pop_demands`."""
        self._demand_cache[flow_name] = entries

    # ------------------------------------------------------------------
    # Flat demand arrays / interference sets
    # ------------------------------------------------------------------
    def link_matrix(self, n1: str, n2: str):
        """The :class:`~repro.core.demand.LinkDemandMatrix` of a link.

        Built lazily from the link's flows in context order and cached
        against the link's flow-set version (bumped by the mutable
        context on admit/release of a flow using the link).
        """
        from repro.core.demand import LinkDemandMatrix

        key = (n1, n2)
        version = self._link_versions.get(key, 0)
        hit = self._matrix_cache.get(key)
        if hit is not None and hit[0] == version:
            return hit[1]
        flows = self.flows_on_link(n1, n2)
        matrix = LinkDemandMatrix(
            [self.demand(f, n1, n2) for f in flows],
            self.network.linkspeed(n1, n2),
            [max(f.spec.jitters) for f in flows],
            [f.priority_on(n1, n2) for f in flows],
        )
        self._matrix_cache[key] = (version, matrix)
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.add("engine.flat_arrays.rebuilds")
        return matrix

    def invalidate_link(self, n1: str, n2: str) -> None:
        """Note a flow-set change on a link (mutable contexts).

        Bumps the link's matrix version and drops the stage memos whose
        participant set the change touched: every stage analysed at the
        link's output-queue resource (first hop and egress share it)
        and at the downstream ingress resource.
        """
        key = (n1, n2)
        self._link_versions[key] = self._link_versions.get(key, 0) + 1
        self._stage_cache.pop(link_resource(n1, n2), None)
        self._stage_cache.pop(ingress_resource(n2), None)

    def interference(
        self,
        flows_seq: Sequence[Flow],
        n1: str,
        n2: str,
        shifts: Sequence[float],
        *,
        strict: bool = False,
    ):
        """Stage :class:`~repro.core.demand.InterferenceSet` on a link.

        With ``options.flat_demand_arrays`` the set is gathered from the
        link's flat matrix (one fancy index); otherwise it is packed
        from the per-flow profiles.  Both constructions answer every
        query bit-identically.
        """
        from repro.core.demand import InterferenceSet

        if not self.options.flat_demand_arrays:
            return InterferenceSet(
                [self.demand(j, n1, n2) for j in flows_seq],
                shifts,
                strict=strict,
            )
        return self.link_matrix(n1, n2).subset(
            [j.name for j in flows_seq], shifts, strict=strict
        )

    # ------------------------------------------------------------------
    # Stage memo (AnalysisOptions.memoize_stages; core/pipeline.py)
    # ------------------------------------------------------------------
    def stage_memo_get(self, flow_name: str, resource: ResourceKey):
        """Cached ``(inputs, stage results)`` of a flow at a resource."""
        per_resource = self._stage_cache.get(resource)
        if per_resource is None:
            return None
        return per_resource.get(flow_name)

    def stage_memo_put(
        self, flow_name: str, resource: ResourceKey, inputs, results
    ) -> None:
        self._stage_cache.setdefault(resource, {})[flow_name] = (
            inputs,
            results,
        )

    def circ(self, node: str) -> float:
        """``CIRC(N)`` of a switch node (round-robin configuration)."""
        return self.network.circ(node)

    def circ_task(self, node: str, interface: str) -> float:
        """Service period of ``interface``'s tasks at ``node``.

        Equal to ``CIRC(N)`` for the paper's round-robin configuration;
        per-interface with weighted stride tickets (extension).
        """
        return self.network.circ_task(node, interface)

    # ------------------------------------------------------------------
    # Jitter queries (``extra_j``)
    # ------------------------------------------------------------------
    def extra(self, flow: Flow, resource: ResourceKey) -> float:
        """``extra_j(N, i)``: max generalized jitter of ``flow`` at the
        resource, or 0 when jitter modelling is disabled (ablation)."""
        if not self.options.use_jitter:
            return 0.0
        return self.jitters.extra(flow.name, resource)

    def extras(
        self, flows_seq: Sequence[Flow], resource: ResourceKey
    ) -> tuple[float, ...]:
        """``extra_j`` of every flow in ``flows_seq`` at the resource.

        Bulk form of :meth:`extra` for the stage-memo input tuple — the
        hottest query of the incremental engines (one call per
        participant per stage per flow walk).
        """
        if not self.options.use_jitter:
            return (0.0,) * len(flows_seq)
        extra = self.jitters.extra
        return tuple(extra(f.name, resource) for f in flows_seq)

    def frame_jitters(self, flow: Flow, resource: ResourceKey) -> tuple[float, ...]:
        if not self.options.use_jitter:
            return (0.0,) * flow.spec.n_frames
        return self.jitters.get(flow.name, resource)

    # ------------------------------------------------------------------
    # Divergence horizon
    # ------------------------------------------------------------------
    def horizon_for(self, flow: Flow) -> float:
        """Busy-period divergence cut-off for analyses of ``flow``."""
        base = max(flow.spec.tsum, max(flow.spec.deadlines))
        return self.options.horizon_factor * base

    # ------------------------------------------------------------------
    # Derived contexts
    # ------------------------------------------------------------------
    def with_flows(
        self, flows: Sequence[Flow], *, share_demand_cache: bool = False
    ) -> "AnalysisContext":
        """A fresh context for a different flow set (admission control).

        The jitter table and flow-set-dependent caches are always fresh.
        With ``share_demand_cache`` the per-(flow, link) demand profiles
        — which depend only on the flow and the link, not on the flow
        set — are structurally shared with this context, so an online
        admission controller only builds profiles for the candidate
        flow.  Entries are value-checked against the flow, so a reused
        name can never serve a stale profile.
        """
        return AnalysisContext(
            self.network,
            flows,
            self.options,
            _shared_demand_cache=(
                self._demand_cache if share_demand_cache else None
            ),
        )

    def with_options(self, options: AnalysisOptions) -> "AnalysisContext":
        """A fresh context (cleared caches) with different options."""
        return AnalysisContext(self.network, self.flows, options)
