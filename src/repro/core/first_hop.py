"""First-hop analysis (Sec. 3.2, Eqs. 14-20).

The first link of a route leaves the source node, which the network
operator does not control: the source may be a normal PC whose network
stack ignores priorities.  The analysis therefore assumes only that the
source's output queue is *work-conserving*, so **every** flow sharing
``link(S, succ(tau_i, S))`` interferes with frame ``k`` of ``tau_i``
regardless of priority.

The analysis is a busy-period exploration:

* Eq. 15 — the busy period ``t`` is the least fixed point of the total
  demand ``sum_j MX(tau_j, S, succ, t + extra_j)`` (the seed printed in
  Eq. 14 is 0, a degenerate fixed point; we seed with the analysed
  frame's own transmission time ``C_i^k`` — see DESIGN.md);
* Eq. 17 — for each instance ``q`` of frame ``k`` in the busy period,
  the queuing time ``w(q)`` is the least fixed point of ``q * CSUM_i``
  (own previous cycles) plus all other flows' demand;
* Eqs. 18-19 — ``R(q) = w(q) - q*TSUM_i + C_i^k``; the stage response is
  the max over ``q`` plus the link's propagation delay.

Applicability (Eq. 20): the sum of ``CSUM/TSUM`` over all flows on the
link must be below 1, otherwise the busy period grows without bound.

:func:`first_hop_stage` analyses **all frames of the flow in one call**:
the interferer set, jitter shifts, batched
:class:`~repro.core.demand.InterferenceSet` tables and acceleration
certificates are built once per stage and reused across every frame's
busy-period and queuing-time fixed points.  The per-frame
:func:`first_hop_response_time` wrapper is kept for targeted tests.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, link_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import LinearLowerBound, solve_cached


def first_hop_utilization(ctx: AnalysisContext, n1: str, n2: str) -> float:
    """Left-hand side of Eq. 20 for ``link(n1, n2)``.

    The demand of *all* flows on the link relative to time; the analysis
    requires this to be strictly below 1.
    """
    return sum(
        ctx.demand(j, n1, n2).utilization for j in ctx.flows_on_link(n1, n2)
    )


def first_hop_stage(ctx: AnalysisContext, flow: Flow) -> list[StageResult]:
    """``R_i^{k,link(S, succ(tau_i, S))}`` (Eq. 19) for every frame ``k``.

    Returns diverged stages (response ``inf``) when Eq. 20 fails or the
    fixed points exceed the context's divergence horizon.
    """
    src = flow.source
    dst = flow.succ(src)
    resource = link_resource(src, dst)
    n = flow.spec.n_frames

    interferers = ctx.flows_on_link(src, dst)  # includes `flow` itself
    dem_i = ctx.demand(flow, src, dst)
    tsum_i = dem_i.tsum
    horizon = ctx.horizon_for(flow)

    # Eq. 20 applicability check.
    if first_hop_utilization(ctx, src, dst) >= 1.0:
        return [diverged_stage(StageKind.FIRST_HOP, resource)] * n

    extras = {j.name: ctx.extra(j, resource) for j in interferers}
    if any(math.isinf(e) for e in extras.values()):
        # An upstream divergence already propagated into a jitter.
        return [diverged_stage(StageKind.FIRST_HOP, resource)] * n

    # Corrected mode uses the uncapped arrival-work bound; strict mode
    # keeps the printed Eq. 10/11 cap (see LinkDemand.mx_work).
    strict = ctx.options.strict_paper
    all_set = ctx.interference(
        interferers,
        src,
        dst,
        [extras[j.name] for j in interferers],
        strict=strict,
    )
    others = [j for j in interferers if j.name != flow.name]
    others_set = ctx.interference(
        others,
        src,
        dst,
        [extras[j.name] for j in others],
        strict=strict,
    )
    accelerate = ctx.options.accelerate_fixed_points
    anderson = ctx.options.anderson_fixed_points
    busy_accel = None
    others_rate = others_intercept = 0.0
    if accelerate:
        busy_accel = LinearLowerBound(*all_set.mx_support())
        others_rate, others_intercept = others_set.mx_support()

    # Frames with equal C_i^k share the busy-period fixed point and all
    # frames share the per-instance queuing fixed points (they depend
    # only on the q*CSUM backlog), so both are memoized per stage call —
    # the recomputation they replace is deterministic in those inputs.
    busy_cache: dict[float, float | None] = {}
    w_cache: dict[float, float | None] = {}

    def busy_for(c_k: float, what: str) -> float | None:
        return solve_cached(
            busy_cache,
            c_k,
            all_set.mx_sum,
            seed=c_k,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=what,
            accelerator=busy_accel,
            anderson=anderson,
        )

    def w_for(own_backlog: float, what: str) -> float | None:
        return solve_cached(
            w_cache,
            own_backlog,
            lambda w: own_backlog + others_set.mx_sum(w),
            seed=own_backlog,  # Eq. 16
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=what,
            accelerator=(
                LinearLowerBound(others_rate, others_intercept + own_backlog)
                if accelerate
                else None
            ),
            anderson=anderson,
        )

    results: list[StageResult] = []
    for frame in range(n):
        c_k = dem_i.c[frame]

        # Eq. 15: busy period = least fixed point of the total demand.
        busy = busy_for(
            c_k,
            f"first-hop busy period of {flow.name}[{frame}] on {src}->{dst}",
        )
        if busy is None:
            results.append(diverged_stage(StageKind.FIRST_HOP, resource))
            continue

        # Number of instances of frame k within the busy period.
        q_max = max(1, math.ceil(busy / tsum_i))

        worst = 0.0
        diverged = False
        for q in range(q_max):
            own_backlog = q * dem_i.csum  # Eq. 16/17 own-cycle term
            w_q = w_for(
                own_backlog,
                f"first-hop w({q}) of {flow.name}[{frame}] on {src}->{dst}",
            )
            if w_q is None:
                diverged = True
                break
            # Eq. 18: response of the q-th instance.
            worst = max(worst, w_q - q * tsum_i + c_k)

        if diverged:
            results.append(diverged_stage(StageKind.FIRST_HOP, resource))
            continue

        # Eq. 19: add the link's propagation delay.
        results.append(
            StageResult(
                kind=StageKind.FIRST_HOP,
                resource=resource,
                response=worst + ctx.network.prop(src, dst),
                busy_period=busy,
                n_instances=q_max,
                converged=True,
            )
        )
    return results


def first_hop_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int
) -> StageResult:
    """``R_i^{k,link(S, succ(tau_i, S))}`` (Eq. 19) for ``frame`` = k."""
    return first_hop_stage(ctx, flow)[frame]
