"""First-hop analysis (Sec. 3.2, Eqs. 14-20).

The first link of a route leaves the source node, which the network
operator does not control: the source may be a normal PC whose network
stack ignores priorities.  The analysis therefore assumes only that the
source's output queue is *work-conserving*, so **every** flow sharing
``link(S, succ(tau_i, S))`` interferes with frame ``k`` of ``tau_i``
regardless of priority.

The analysis is a busy-period exploration:

* Eq. 15 — the busy period ``t`` is the least fixed point of the total
  demand ``sum_j MX(tau_j, S, succ, t + extra_j)`` (the seed printed in
  Eq. 14 is 0, a degenerate fixed point; we seed with the analysed
  frame's own transmission time ``C_i^k`` — see DESIGN.md);
* Eq. 17 — for each instance ``q`` of frame ``k`` in the busy period,
  the queuing time ``w(q)`` is the least fixed point of ``q * CSUM_i``
  (own previous cycles) plus all other flows' demand;
* Eqs. 18-19 — ``R(q) = w(q) - q*TSUM_i + C_i^k``; the stage response is
  the max over ``q`` plus the link's propagation delay.

Applicability (Eq. 20): the sum of ``CSUM/TSUM`` over all flows on the
link must be below 1, otherwise the busy period grows without bound.
"""

from __future__ import annotations

import math

from repro.core.context import AnalysisContext, link_resource
from repro.core.results import StageKind, StageResult, diverged_stage
from repro.model.flow import Flow
from repro.util.fixed_point import FixedPointDiverged, iterate_fixed_point


def first_hop_utilization(ctx: AnalysisContext, n1: str, n2: str) -> float:
    """Left-hand side of Eq. 20 for ``link(n1, n2)``.

    The demand of *all* flows on the link relative to time; the analysis
    requires this to be strictly below 1.
    """
    return sum(
        ctx.demand(j, n1, n2).utilization for j in ctx.flows_on_link(n1, n2)
    )


def first_hop_response_time(
    ctx: AnalysisContext, flow: Flow, frame: int
) -> StageResult:
    """``R_i^{k,link(S, succ(tau_i, S))}`` (Eq. 19) for ``frame`` = k.

    Returns a diverged stage (response ``inf``) when Eq. 20 fails or the
    fixed points exceed the context's divergence horizon.
    """
    src = flow.source
    dst = flow.succ(src)
    resource = link_resource(src, dst)

    interferers = ctx.flows_on_link(src, dst)  # includes `flow` itself
    dem_i = ctx.demand(flow, src, dst)
    c_k = dem_i.c[frame]
    tsum_i = dem_i.tsum
    horizon = ctx.horizon_for(flow)

    # Eq. 20 applicability check.
    if first_hop_utilization(ctx, src, dst) >= 1.0:
        return diverged_stage(StageKind.FIRST_HOP, resource)

    extras = {j.name: ctx.extra(j, resource) for j in interferers}
    if any(math.isinf(e) for e in extras.values()):
        # An upstream divergence already propagated into a jitter.
        return diverged_stage(StageKind.FIRST_HOP, resource)

    demands = {j.name: ctx.demand(j, src, dst) for j in interferers}
    # Corrected mode uses the uncapped arrival-work bound; strict mode
    # keeps the printed Eq. 10/11 cap (see LinkDemand.mx_work).
    strict = ctx.options.strict_paper

    def mx_of(j_name: str, t: float) -> float:
        dem = demands[j_name]
        return dem.mx(t) if strict else dem.mx_work(t)

    # Eq. 15: busy period = least fixed point of the total demand.
    def busy_update(t: float) -> float:
        return sum(mx_of(j.name, t + extras[j.name]) for j in interferers)

    try:
        busy = iterate_fixed_point(
            busy_update,
            seed=c_k,
            horizon=horizon,
            max_iterations=ctx.options.max_fp_iterations,
            what=f"first-hop busy period of {flow.name}[{frame}] on {src}->{dst}",
        ).value
    except FixedPointDiverged:
        return diverged_stage(StageKind.FIRST_HOP, resource)

    # Number of instances of frame k within the busy period.
    q_max = max(1, math.ceil(busy / tsum_i))

    others = [j for j in interferers if j.name != flow.name]
    worst = 0.0
    for q in range(q_max):
        own_backlog = q * dem_i.csum  # Eq. 16/17 own-cycle term

        def queue_update(w: float) -> float:
            return own_backlog + sum(
                mx_of(j.name, w + extras[j.name]) for j in others
            )

        try:
            w_q = iterate_fixed_point(
                queue_update,
                seed=own_backlog,  # Eq. 16
                horizon=horizon,
                max_iterations=ctx.options.max_fp_iterations,
                what=(
                    f"first-hop w({q}) of {flow.name}[{frame}] on {src}->{dst}"
                ),
            ).value
        except FixedPointDiverged:
            return diverged_stage(StageKind.FIRST_HOP, resource)
        # Eq. 18: response of the q-th instance.
        worst = max(worst, w_q - q * tsum_i + c_k)

    # Eq. 19: add the link's propagation delay.
    response = worst + ctx.network.prop(src, dst)
    return StageResult(
        kind=StageKind.FIRST_HOP,
        resource=resource,
        response=response,
        busy_period=busy,
        n_instances=q_max,
        converged=True,
    )
