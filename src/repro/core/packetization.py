"""Sec. 3.1 "Basic parameters": UDP packets on the Ethernet wire.

Derives, from a frame's payload size ``S_i^k`` (bits):

* ``nbits_i^k`` — the UDP packet size including transport headers;
* the fragmentation into Ethernet frames (IP fragmentation: every
  fragment carries an IP header, full fragments carry 1480 bytes of
  transport data);
* ``C_i^{k,link(s,d)}`` — the wire transmission time on a link of known
  bit rate, including all per-Ethernet-frame overheads;
* ``MFT(link)`` — Eq. 1, the maximum transmission time of a single
  Ethernet frame, the blocking term of the egress analysis.

Wire-format constants (paper values)::

    Ethernet payload        1500 bytes (of which 20 = IP header)
    Ethernet header           14 bytes
    CRC                        4 bytes
    preamble + SFD             8 bytes
    inter-frame gap           12 bytes
    -> max wire size       1538 bytes = 12304 bits
    -> transport data/frame 1480 bytes = 11840 bits

**OCR note** (see DESIGN.md): the printed remainder-fragment cost adds
only 304 bits (Ethernet overhead) to the leftover transport bits; a real
last fragment also carries its own 160-bit IP header and is padded to the
64-byte Ethernet minimum.  The corrected model is the default;
``strict_paper=True`` reproduces the printed formula exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.model.flow import Transport

# Transport / network header sizes, bits.
UDP_HEADER_BITS = 8 * 8
RTP_HEADER_BITS = 16 * 8
IP_HEADER_BITS = 20 * 8

# Ethernet wire format, bits.
ETH_HEADER_BITS = 14 * 8
ETH_CRC_BITS = 4 * 8
ETH_PREAMBLE_BITS = 8 * 8
ETH_IFG_BITS = 12 * 8
#: Per-Ethernet-frame overhead outside the 1500-byte payload field.
ETH_WIRE_OVERHEAD_BITS = (
    ETH_HEADER_BITS + ETH_CRC_BITS + ETH_PREAMBLE_BITS + ETH_IFG_BITS
)  # = 304
#: Maximum size of one Ethernet frame on the wire (Sec. 3.1): 12304 bits.
ETH_MAX_WIRE_BITS = 1500 * 8 + ETH_WIRE_OVERHEAD_BITS
#: Transport-layer bits carried by one full Ethernet frame: 11840.
ETH_DATA_BITS = 1500 * 8 - IP_HEADER_BITS
#: Minimum wire size: 64-byte frame + preamble/SFD + IFG = 84 bytes.
ETH_MIN_WIRE_BITS = 64 * 8 + ETH_PREAMBLE_BITS + ETH_IFG_BITS

assert ETH_WIRE_OVERHEAD_BITS == 304
assert ETH_MAX_WIRE_BITS == 12304
assert ETH_DATA_BITS == 11840


@dataclass(frozen=True)
class PacketizationConfig:
    """Switches selecting the paper-literal vs corrected wire model.

    Attributes
    ----------
    strict_paper:
        When True, the remainder fragment costs ``rem + 304`` bits as
        printed in the paper (no IP header, no minimum-size padding).
        When False (default), it costs ``max(rem + 464, 672)`` bits.
    """

    strict_paper: bool = False

    def remainder_wire_bits(self, remainder_data_bits: int) -> int:
        """Wire cost of the last (partial) fragment of a UDP packet."""
        if remainder_data_bits <= 0:
            raise ValueError("remainder must be positive")
        if self.strict_paper:
            return remainder_data_bits + ETH_WIRE_OVERHEAD_BITS
        return max(
            remainder_data_bits + IP_HEADER_BITS + ETH_WIRE_OVERHEAD_BITS,
            ETH_MIN_WIRE_BITS,
        )


DEFAULT_CONFIG = PacketizationConfig()
STRICT_CONFIG = PacketizationConfig(strict_paper=True)


def udp_packet_bits(payload_bits: int, transport: Transport = Transport.UDP) -> int:
    """``nbits_i^k``: UDP packet size in bits including transport headers.

    The payload is rounded up to whole bytes (a UDP packet has an
    integral number of bytes), then the 8-byte UDP header — and for RTP
    flows the 16-byte RTP header — is added (Sec. 3.1 formulas).
    """
    if payload_bits <= 0:
        raise ValueError("payload must be positive")
    nbits = math.ceil(payload_bits / 8) * 8 + UDP_HEADER_BITS
    if transport is Transport.RTP:
        nbits += RTP_HEADER_BITS
    return nbits


@dataclass(frozen=True)
class Packetization:
    """Fragmentation of one UDP packet into Ethernet frames.

    ``fragment_wire_bits`` lists the wire cost of each Ethernet frame in
    transmission order; the simulator transmits exactly these sizes, and
    the analysis uses their sum (``wire_bits``) and count
    (``n_eth_frames``).
    """

    udp_bits: int
    fragment_wire_bits: tuple[int, ...]

    @property
    def n_eth_frames(self) -> int:
        """Number of Ethernet frames the packet fragments into."""
        return len(self.fragment_wire_bits)

    @property
    def wire_bits(self) -> int:
        """Total bits occupying the wire for this UDP packet."""
        return sum(self.fragment_wire_bits)

    def transmission_time(self, linkspeed_bps: float) -> float:
        """``C_i^{k,link}``: wire time of the whole packet on a link."""
        if linkspeed_bps <= 0:
            raise ValueError("linkspeed must be positive")
        return self.wire_bits / linkspeed_bps

    def fragment_times(self, linkspeed_bps: float) -> tuple[float, ...]:
        """Per-Ethernet-frame transmission times on a link."""
        if linkspeed_bps <= 0:
            raise ValueError("linkspeed must be positive")
        return tuple(b / linkspeed_bps for b in self.fragment_wire_bits)


def packetize(
    payload_bits: int,
    transport: Transport = Transport.UDP,
    config: PacketizationConfig = DEFAULT_CONFIG,
) -> Packetization:
    """Fragment a UDP payload into Ethernet frames (Sec. 3.1).

    Full fragments carry ``ETH_DATA_BITS`` (11840) transport bits and
    cost ``ETH_MAX_WIRE_BITS`` (12304) on the wire; the remainder (if
    any) costs ``config.remainder_wire_bits(rem)``.

    >>> p = packetize(11840 * 2)   # exactly two full frames of data... plus header
    >>> p.n_eth_frames
    3
    """
    nbits = udp_packet_bits(payload_bits, transport)
    full, rem = divmod(nbits, ETH_DATA_BITS)
    fragments = [ETH_MAX_WIRE_BITS] * full
    if rem:
        fragments.append(config.remainder_wire_bits(rem))
    return Packetization(udp_bits=nbits, fragment_wire_bits=tuple(fragments))


def transmission_time(
    payload_bits: int,
    linkspeed_bps: float,
    transport: Transport = Transport.UDP,
    config: PacketizationConfig = DEFAULT_CONFIG,
) -> float:
    """``C_i^{k,link(s,d)}`` directly from payload size and link speed."""
    return packetize(payload_bits, transport, config).transmission_time(linkspeed_bps)


def eth_frame_count(
    payload_bits: int,
    transport: Transport = Transport.UDP,
) -> int:
    """Number of Ethernet frames of one UDP packet (``ceil(nbits/11840)``)."""
    nbits = udp_packet_bits(payload_bits, transport)
    return math.ceil(nbits / ETH_DATA_BITS)


def max_frame_transmission_time(linkspeed_bps: float) -> float:
    """``MFT(link)`` (Eq. 1): ``12304 / linkspeed``."""
    if linkspeed_bps <= 0:
        raise ValueError("linkspeed must be positive")
    return ETH_MAX_WIRE_BITS / linkspeed_bps


def max_payload_per_udp_packet() -> int:
    """Largest UDP payload that still fits a single Ethernet frame (bits)."""
    return ETH_DATA_BITS - UDP_HEADER_BITS
