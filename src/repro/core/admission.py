"""Admission control (Sec. 3.5, last paragraph).

The holistic analysis "forms an admission controller": a new flow is
accepted exactly when the holistic fixed point converges for the
*combined* flow set and every frame of every flow (existing and new)
still meets its end-to-end deadline.  Resource reservation needs no
billing and topology knowledge is complete (paper introduction), so the
controller simply re-runs the analysis.

Online hot path
---------------
An online controller answers a stream of requests over a mostly-stable
admitted set, so the per-request work is kept incremental:

* the per-(flow, link) :class:`~repro.core.demand.LinkDemand` profiles
  are structurally shared across requests via
  :meth:`AnalysisContext.with_flows` — only the candidate flow's
  profiles are built (entries are value-checked, so a re-used flow
  name can never serve a stale profile, and a rejected candidate's
  entries are retired);
* the admitted set's converged jitter table warm-starts the tentative
  analysis.  Admitting a flow only adds interference, so the previous
  least fixed point lies below the new one and the monotone holistic
  iteration started from it converges to the same bounds in fewer
  rounds (releases cold-start instead: removing a flow lowers the fixed
  point, so the old table would be an over-approximation);
* released (and rejected) flows' demand profiles are *retired* into a
  bounded store rather than discarded, so a release followed by
  re-admission of the same flow — the dominant churn pattern of a call
  service — rebuilds no :class:`~repro.core.demand.LinkDemand` at all.
  Retired entries keep their value check, so a reused flow name can
  never resurrect a stale profile — while an *equal* flow re-parsed
  from the wire (the service path) still reuses every profile.

The controller's converged state (admitted flows + jitter table) is
exportable via :meth:`AdmissionController.export_state` and can be
reconstructed with :meth:`AdmissionController.restore` without
re-admitting flow by flow — the basis of the service layer's
snapshot/restore (:mod:`repro.service.state`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.core.context import AnalysisContext, AnalysisOptions
from repro.telemetry import tracing as _tracing
from repro.core.holistic import holistic_analysis
from repro.core.results import HolisticResult
from repro.model.flow import Flow
from repro.model.network import Network
from repro.model.routing import validate_route


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission request.

    Attributes
    ----------
    accepted:
        True when the candidate flow was admitted.
    reason:
        Human-readable explanation (which flow/frame would miss, or
        divergence).
    analysis:
        The holistic result of the *tentative* flow set (accepted or
        not); callers can inspect per-flow bounds.  ``None`` when the
        fast utilisation pre-check rejected the request before any
        response-time analysis ran.
    """

    accepted: bool
    reason: str
    analysis: HolisticResult | None


class AdmissionController:
    """Stateful admission controller over a fixed topology.

    >>> ctrl = AdmissionController(network)          # doctest: +SKIP
    >>> decision = ctrl.request(flow)                # doctest: +SKIP
    >>> decision.accepted                            # doctest: +SKIP
    """

    def __init__(
        self,
        network: Network,
        options: AnalysisOptions | None = None,
        initial_flows: Sequence[Flow] = (),
        *,
        fast_reject: bool = True,
        warm_start: bool = True,
        retained_flows: int = 256,
    ):
        #: When True, requests failing the cheap necessary utilisation
        #: condition (Eqs. 20/34/35-style, O(flows x links)) are
        #: rejected without running the full holistic analysis —
        #: important for an online controller under overload attack.
        self.fast_reject = fast_reject
        #: When True, the tentative analysis starts from the admitted
        #: set's converged jitter table (see module docstring).
        self.warm_start = warm_start
        self.network = network
        self.options = options or AnalysisOptions()
        self._flows: list[Flow] = []
        self._ctx = AnalysisContext(network, (), self.options)
        self._last_analysis: HolisticResult | None = None
        #: Retired demand-profile generations of released/rejected
        #: flows, keyed by flow name; bounded FIFO of ``retained_flows``
        #: entries.  See the module docstring's online-hot-path notes.
        self._retired: OrderedDict[str, dict] = OrderedDict()
        self._retained_flows = max(0, retained_flows)
        for f in initial_flows:
            decision = self.request(f)
            if not decision.accepted:
                raise ValueError(
                    f"initial flow {f.name!r} not admissible: {decision.reason}"
                )

    # ------------------------------------------------------------------
    @property
    def admitted_flows(self) -> tuple[Flow, ...]:
        return tuple(self._flows)

    @property
    def last_analysis(self) -> HolisticResult | None:
        """Holistic result of the currently admitted set (None if empty)."""
        return self._last_analysis

    # ------------------------------------------------------------------
    # Retired demand-profile generations
    # ------------------------------------------------------------------
    def _retire_demands(self, flow_name: str) -> None:
        """Move a flow's demand profiles to the bounded retired store."""
        entries = self._ctx.pop_demands(flow_name)
        if entries is None or not self._retained_flows:
            return
        self._retired.pop(flow_name, None)
        self._retired[flow_name] = entries
        while len(self._retired) > self._retained_flows:
            self._retired.popitem(last=False)

    def _revive_demands(self, flow_name: str) -> None:
        """Reinstall a retired flow's profiles ahead of re-admission."""
        entries = self._retired.pop(flow_name, None)
        if entries is not None:
            self._ctx.install_demands(flow_name, entries)

    def request(self, flow: Flow) -> AdmissionDecision:
        """Try to admit ``flow``; accepted flows become part of the state."""
        reg = _telemetry.REGISTRY
        tr = _tracing.TRACER
        if reg is None and tr is None:
            return self._request(flow)
        span = (
            tr.span("admission.request")
            if tr is not None
            else _tracing.NULL_SPAN
        )
        with span:
            if reg is None:
                return self._request(flow)
            reg.add("admission.requests")
            start = time.perf_counter()
            decision = self._request(flow)
            reg.observe("admission.request_s", time.perf_counter() - start)
            if decision.accepted:
                reg.add("admission.accepted")
            else:
                reg.add("admission.rejected")
                if decision.analysis is None:
                    reg.add("admission.fast_rejects")
            span.annotate("accepted", 1.0 if decision.accepted else 0.0)
            return decision

    def _request(self, flow: Flow) -> AdmissionDecision:
        validate_route(self.network, flow.route)
        if any(f.name == flow.name for f in self._flows):
            raise ValueError(f"flow name {flow.name!r} already admitted")
        self._revive_demands(flow.name)

        tentative = [*self._flows, flow]
        ctx = self._ctx.with_flows(tentative, share_demand_cache=True)
        if self.fast_reject:
            from repro.core.utilization import network_convergence_report

            report = network_convergence_report(ctx)
            if not report.all_convergent:
                bottleneck = report.bottleneck()
                self._retire_demands(flow.name)
                return AdmissionDecision(
                    accepted=False,
                    reason=(
                        "necessary utilisation condition violated at "
                        f"{'/'.join(str(p) for p in bottleneck.resource)} "
                        f"({bottleneck.utilization:.4f} >= 1)"
                    ),
                    analysis=None,
                )
        if self.warm_start and self._flows:
            ctx.jitters.warm_start_from(self._ctx.jitters)
            _telemetry.add("admission.warm_starts")
        analysis = holistic_analysis(
            self.network, tentative, self.options, context=ctx
        )
        if not analysis.converged:
            self._retire_demands(flow.name)
            return AdmissionDecision(
                accepted=False,
                reason="holistic analysis diverged (utilisation too high)",
                analysis=analysis,
            )
        violation = self._first_violation(analysis)
        if violation is not None:
            self._retire_demands(flow.name)
            return AdmissionDecision(
                accepted=False, reason=violation, analysis=analysis
            )
        self._flows = tentative
        self._ctx = ctx  # keeps the converged jitter table for warm starts
        self._last_analysis = analysis
        return AdmissionDecision(
            accepted=True, reason="all deadlines met", analysis=analysis
        )

    def release(self, flow_name: str) -> None:
        """Remove a previously admitted flow (its session ended).

        The released flow's demand profiles are retired, not discarded
        — re-admitting the same flow (churn) rebuilds nothing.  The
        remaining set's :class:`LinkDemand` profiles stay structurally
        shared, so the re-analysis below only redoes the jitter fixed
        point, never the demand construction.
        """
        before = len(self._flows)
        self._flows = [f for f in self._flows if f.name != flow_name]
        if len(self._flows) == before:
            raise KeyError(f"flow {flow_name!r} is not admitted")
        _telemetry.add("admission.releases")
        self._retire_demands(flow_name)
        # Cold jitter start: removing interference lowers the fixed
        # point, so warm-starting from the old table would be unsound.
        self._ctx = self._ctx.with_flows(self._flows, share_demand_cache=True)
        self._last_analysis = (
            holistic_analysis(
                self.network, self._flows, self.options, context=self._ctx
            )
            if self._flows
            else None
        )

    # ------------------------------------------------------------------
    # State export / restore (service snapshots)
    # ------------------------------------------------------------------
    def export_state(self) -> tuple[tuple[Flow, ...], dict]:
        """Converged state: ``(admitted flows, jitter-table entries)``.

        The jitter entries are the explicit, converged
        ``(flow name, resource) -> per-frame jitters`` mapping of the
        admitted set — exactly what :meth:`restore` needs to rebuild an
        equivalent controller without re-admitting flow by flow.
        """
        return tuple(self._flows), self._ctx.jitters.snapshot()

    @classmethod
    def restore(
        cls,
        network: Network,
        options: AnalysisOptions | None = None,
        *,
        flows: Sequence[Flow],
        jitters: Mapping | None = None,
        fast_reject: bool = True,
        warm_start: bool = True,
        retained_flows: int = 256,
    ) -> "AdmissionController":
        """Rebuild a controller from :meth:`export_state` output.

        The admitted set is installed wholesale and one holistic
        analysis re-derives ``last_analysis``; seeded with the exported
        converged jitter table, the monotone iteration confirms the
        fixed point immediately instead of re-running the per-flow
        admission sequence.  The restored controller's subsequent
        decisions are identical to the original's: both hold the same
        admitted set and the same converged table, and every fast path
        (warm starts, shared demand caches, stage memos) is
        exactness-preserving.
        """
        ctrl = cls(
            network,
            options,
            fast_reject=fast_reject,
            warm_start=warm_start,
            retained_flows=retained_flows,
        )
        ctrl._flows = list(flows)
        ctrl._ctx = AnalysisContext(network, ctrl._flows, ctrl.options)
        if jitters:
            ctrl._ctx.jitters.seed(jitters)
        ctrl._last_analysis = (
            holistic_analysis(
                network, ctrl._flows, ctrl.options, context=ctrl._ctx
            )
            if ctrl._flows
            else None
        )
        return ctrl

    @staticmethod
    def _first_violation(analysis: HolisticResult) -> str | None:
        for name, result in sorted(analysis.flow_results.items()):
            for frame in result.frames:
                if not frame.schedulable:
                    return (
                        f"flow {name!r} frame {frame.frame}: bound "
                        f"{frame.response:.6g}s exceeds deadline "
                        f"{frame.deadline:.6g}s"
                    )
        return None


def make_admission_controller(
    network: Network,
    options: AnalysisOptions | None = None,
    initial_flows: Sequence[Flow] = (),
    *,
    hierarchical: bool = False,
    **kwargs,
):
    """Build an admission controller for ``network``.

    With ``hierarchical=True`` the returned controller is the
    datacenter-scale :class:`~repro.core.hierarchy.\
HierarchicalAdmissionController` (per-pod shards, demand envelopes,
    O(changed-set) incremental re-analysis); otherwise the reference
    :class:`AdmissionController`.  Both answer requests bit-identically
    — the hierarchical one just answers them in time proportional to
    the interference closure of the candidate instead of the admitted
    set.  Extra keyword arguments pass through to the chosen class
    (``fast_reject``, ``warm_start``, ``retained_flows``, and for the
    hierarchical controller also ``pod_map``).
    """
    if hierarchical:
        # Local import: hierarchy.py imports from this module.
        from repro.core.hierarchy import HierarchicalAdmissionController

        return HierarchicalAdmissionController(
            network, options, initial_flows, **kwargs
        )
    return AdmissionController(network, options, initial_flows, **kwargs)
