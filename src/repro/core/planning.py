"""Capacity planning on top of the analysis.

The admission controller answers "does this flow set fit?"; planning
answers the operator's follow-up questions:

* :func:`minimum_link_speed_scale` — by how much must every link be
  scaled (uniformly) for the set to become schedulable?  (Monotone in
  the scale, so bisection applies.)
* :func:`max_admissible_scale` — how much can the *traffic* grow
  (uniform payload scaling) before the set stops being schedulable?
* :func:`worst_slack_per_flow` — where is the headroom?
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network


def scale_link_speeds(network: Network, scale: float) -> Network:
    """A copy of ``network`` with every link's bit rate scaled."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    out = Network()
    for node in network.nodes():
        out.add_node(
            type(node)(name=node.name, kind=node.kind, switch=node.switch)
        )
    for link in network.links():
        out.add_link(
            link.src,
            link.dst,
            speed_bps=link.speed_bps * scale,
            prop_delay=link.prop_delay,
        )
    return out


def scale_payloads(flows: Sequence[Flow], scale: float) -> list[Flow]:
    """Copies of ``flows`` with every frame payload scaled (min 1 bit)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    out = []
    for f in flows:
        spec = f.spec
        out.append(
            f.with_spec(
                GmfSpec(
                    min_separations=spec.min_separations,
                    deadlines=spec.deadlines,
                    jitters=spec.jitters,
                    payload_bits=tuple(
                        max(1, int(s * scale)) for s in spec.payload_bits
                    ),
                )
            )
        )
    return out


def _schedulable_at_speed(
    network: Network,
    flows: Sequence[Flow],
    scale: float,
    options: AnalysisOptions | None,
) -> bool:
    return holistic_analysis(
        scale_link_speeds(network, scale), flows, options
    ).schedulable


def minimum_link_speed_scale(
    network: Network,
    flows: Sequence[Flow],
    *,
    options: AnalysisOptions | None = None,
    tolerance: float = 0.01,
    max_scale: float = 1e6,
) -> float | None:
    """Smallest uniform link-speed multiplier making the set schedulable.

    Returns None when even ``max_scale`` does not help — i.e. a
    deadline is violated by speed-independent terms (source jitter,
    switch task costs, propagation).  Result is within ``tolerance``
    (relative) of the true threshold, always rounded *up* (the returned
    scale is guaranteed schedulable).
    """
    if not flows:
        return 1.0
    if not _schedulable_at_speed(network, flows, max_scale, options):
        return None
    lo, hi = 0.0, 1.0
    if _schedulable_at_speed(network, flows, 1.0, options):
        # Already schedulable: search downwards for the threshold.
        while hi > 1e-9 and _schedulable_at_speed(network, flows, hi, options):
            lo, hi = hi / 2, hi / 2
        lo, hi = hi, hi * 2
    else:
        while hi < max_scale and not _schedulable_at_speed(
            network, flows, hi, options
        ):
            lo, hi = hi, hi * 2
    # Invariant: lo unschedulable (or 0), hi schedulable.
    while (hi - lo) > tolerance * hi:
        mid = 0.5 * (lo + hi)
        if _schedulable_at_speed(network, flows, mid, options):
            hi = mid
        else:
            lo = mid
    return hi


def max_admissible_scale(
    network: Network,
    flows: Sequence[Flow],
    *,
    options: AnalysisOptions | None = None,
    tolerance: float = 0.01,
    max_scale: float = 1e6,
) -> float | None:
    """Largest uniform payload multiplier keeping the set schedulable.

    Returns None when the set is unschedulable even with vanishing
    payloads (a structural problem: jitter/CIRC already too large).
    The result is rounded *down* (the returned scale is schedulable).
    """

    def ok(scale: float) -> bool:
        return holistic_analysis(
            network, scale_payloads(flows, scale), options
        ).schedulable

    if not flows:
        return math.inf
    if not ok(1e-9):
        return None
    lo, hi = 1e-9, 1.0
    if ok(1.0):
        while hi < max_scale and ok(hi):
            lo, hi = hi, hi * 2
        if hi >= max_scale and ok(hi):
            return hi
    # Invariant: lo schedulable, hi unschedulable.
    while (hi - lo) > tolerance * hi:
        mid = 0.5 * (lo + hi)
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def worst_slack_per_flow(
    network: Network,
    flows: Sequence[Flow],
    *,
    options: AnalysisOptions | None = None,
) -> Mapping[str, float]:
    """Per-flow worst slack (deadline minus bound; negative = miss)."""
    result = holistic_analysis(network, flows, options)
    return {
        name: r.worst_slack for name, r in result.flow_results.items()
    }
