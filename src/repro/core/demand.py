"""GMF demand-bound functions on a link (Eqs. 4-13).

For a flow ``tau_j`` crossing ``link(N1, N2)`` the paper defines:

* ``CSUM_j`` (Eq. 4)  — total transmission time of one cycle;
* ``NSUM_j`` (Eq. 5)  — total Ethernet-frame count of one cycle;
* ``TSUM_j`` (Eq. 6)  — total minimum separation of one cycle;
* windowed variants over ``k2`` consecutive frames starting at ``k1``
  (Eqs. 7-9; note Eq. 9 sums one fewer term: the time between the first
  and the last arrival of the window);
* ``MXS/MX`` (Eqs. 10-11) — the maximum link time the flow can demand in
  any interval of length ``t`` (``MXS`` for ``0 < t < TSUM``, ``MX`` for
  all ``t`` by peeling off whole cycles);
* ``NXS/NX`` (Eqs. 12-13) — the same for Ethernet-frame counts.

:class:`LinkDemand` precomputes all ``O(n^2)`` windows once with numpy
prefix sums and answers ``mx/nx`` queries in ``O(log n)`` via
sorted-window prefix maxima, because the busy-period iterations evaluate
these functions thousands of times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.packetization import (
    DEFAULT_CONFIG,
    PacketizationConfig,
    max_frame_transmission_time,
    packetize,
)
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec


@dataclass(frozen=True)
class LinkDemand:
    """Per-(flow, link) demand profile: Eqs. 4-13 pre-evaluated.

    Construct via :func:`build_link_demand`.  All times are seconds.

    Attributes
    ----------
    flow_name:
        The flow this profile belongs to (for error messages).
    c:
        ``C_j^{k,link}`` per frame ``k`` (transmission times).
    n_eth:
        Ethernet-frame counts per frame ``k`` (the ``ceil(C/MFT)`` of
        Eq. 5, computed exactly from the fragmentation).
    t:
        ``T_j^k`` per frame.
    mft:
        ``MFT(link)`` (Eq. 1).
    """

    flow_name: str
    c: tuple[float, ...]
    n_eth: tuple[int, ...]
    t: tuple[float, ...]
    mft: float
    # Sorted windows for O(log n) queries; built in build_link_demand.
    _win_t: np.ndarray = field(repr=False, compare=False, default=None)
    _cmax_prefix: np.ndarray = field(repr=False, compare=False, default=None)
    _nmax_prefix: np.ndarray = field(repr=False, compare=False, default=None)

    # ------------------------------------------------------------------
    # Full-cycle sums (Eqs. 4-6)
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        return len(self.c)

    @property
    def csum(self) -> float:
        """``CSUM_j^{link}`` (Eq. 4)."""
        return float(sum(self.c))

    @property
    def nsum(self) -> int:
        """``NSUM_j^{link}`` (Eq. 5)."""
        return int(sum(self.n_eth))

    @property
    def tsum(self) -> float:
        """``TSUM_j`` (Eq. 6)."""
        return float(sum(self.t))

    @property
    def utilization(self) -> float:
        """``CSUM / TSUM``: the long-run link utilisation of the flow."""
        return self.csum / self.tsum

    @property
    def max_c(self) -> float:
        """Largest single-frame transmission time on this link."""
        return max(self.c)

    # ------------------------------------------------------------------
    # Windowed sums (Eqs. 7-9)
    # ------------------------------------------------------------------
    def csum_window(self, k1: int, k2: int) -> float:
        """``CSUM_j(k1, k2)`` (Eq. 7): transmission time of ``k2``
        consecutive frames starting at frame ``k1`` (indices mod n)."""
        self._check_window(k1, k2)
        n = self.n_frames
        return float(sum(self.c[k % n] for k in range(k1, k1 + k2)))

    def nsum_window(self, k1: int, k2: int) -> int:
        """``NSUM_j(k1, k2)`` (Eq. 8): Ethernet frames in the window."""
        self._check_window(k1, k2)
        n = self.n_frames
        return int(sum(self.n_eth[k % n] for k in range(k1, k1 + k2)))

    def tsum_window(self, k1: int, k2: int) -> float:
        """``TSUM_j(k1, k2)`` (Eq. 9): minimum time between the first and
        last arrival of the window (``k2 - 1`` separations)."""
        self._check_window(k1, k2)
        n = self.n_frames
        return float(sum(self.t[k % n] for k in range(k1, k1 + k2 - 1)))

    def _check_window(self, k1: int, k2: int) -> None:
        if not (0 <= k1 < self.n_frames):
            raise IndexError(f"window start {k1} outside 0..{self.n_frames - 1}")
        if k2 < 1:
            raise ValueError("window must contain at least one frame")

    # ------------------------------------------------------------------
    # Demand-bound functions (Eqs. 10-13)
    # ------------------------------------------------------------------
    def mxs(self, t: float) -> float:
        """``MXS(tau_j, N1, N2, t)`` (Eq. 10) for ``0 <= t < TSUM``.

        The most link time any window of frames that *can* arrive within
        an interval of length ``t`` can demand, capped at ``t`` itself
        (the flow cannot occupy the link for longer than the interval).
        """
        if t <= 0.0:
            return 0.0
        if t >= self.tsum:
            raise ValueError(
                f"MXS only defined for t < TSUM ({self.tsum}); got {t}"
            )
        return min(t, self._best_c_within(t))

    def mx(self, t: float) -> float:
        """``MX(tau_j, N1, N2, t)`` (Eq. 11) for any ``t >= 0``.

        ``floor(t / TSUM)`` whole cycles of demand plus the best window
        in the remainder.
        """
        if t <= 0.0:
            return 0.0
        cycles, rem = self._split_cycles(t)
        small = min(rem, self._best_c_within(rem)) if rem > 0.0 else 0.0
        return cycles * self.csum + small

    def mx_work(self, t: float) -> float:
        """Uncapped arrival-work bound: the corrected form of Eq. 11.

        Maximum total transmission time of frames that can *arrive*
        within a right-closed window of length ``t`` — i.e. Eq. 11
        without Eq. 10's ``min(t, .)`` cap, and with arrivals at the
        window boundary included (like ``NX``).

        The cap is correct for *completed service* but makes the
        queuing-time recurrences (Eqs. 17/31) degenerate: at the seed
        ``w = 0`` a capped ``MX`` charges zero interference from
        packets arriving together with the analysed one, yielding the
        spurious fixed point "no queuing at all".  The analyses use
        this uncapped bound unless ``strict_paper`` is set (DESIGN.md).
        """
        if t < 0.0:
            return 0.0
        cycles, rem = self._split_cycles(t)
        return cycles * self.csum + self._best_c_within(rem)

    def nxs(self, t: float) -> int:
        """``NXS(tau_j, N1, N2, t)`` (Eq. 12) for ``0 <= t < TSUM``.

        The most Ethernet frames receivable from the flow within ``t``.
        Unlike ``MXS`` there is no ``min(t, .)`` cap: a burst of frames
        (zero separations / jitter) can all land in an arbitrarily small
        interval.
        """
        if t < 0.0:
            return 0
        if t >= self.tsum:
            raise ValueError(
                f"NXS only defined for t < TSUM ({self.tsum}); got {t}"
            )
        return self._best_n_within(t)

    def nx(self, t: float) -> int:
        """``NX(tau_j, N1, N2, t)`` (Eq. 13) for any ``t >= 0``."""
        if t < 0.0:
            return 0
        cycles, rem = self._split_cycles(t)
        return cycles * self.nsum + self._best_n_within(rem)

    def _split_cycles(self, t: float) -> tuple[int, float]:
        """Peel off whole GMF cycles; returns ``(floor(t/TSUM), rem)``.

        Guards against floating-point drift: a remainder within one ulp
        of ``TSUM`` is promoted to a full cycle.
        """
        cycles = int(math.floor(t / self.tsum))
        rem = t - cycles * self.tsum
        if rem >= self.tsum:  # t/tsum rounded down but subtraction says not
            cycles += 1
            rem = 0.0
        return cycles, max(0.0, rem)

    @staticmethod
    def _boundary(t: float) -> float:
        """Nudge ``t`` up a few ulps before the window search.

        Window lengths come from prefix-sum differences, which can land
        one ulp above the mathematically equal direct sum; without the
        nudge a window with ``TSUM(k1,k2) == t`` could be excluded.
        Including a boundary window is conservative (the demand bound
        can only grow), so the nudge is sound.
        """
        return t * (1.0 + 1e-12) + 1e-18

    def _best_c_within(self, t: float) -> float:
        """Max ``CSUM(k1,k2)`` over windows with ``TSUM(k1,k2) <= t``."""
        idx = np.searchsorted(self._win_t, self._boundary(t), side="right")
        if idx == 0:
            return 0.0
        return float(self._cmax_prefix[idx - 1])

    def _best_n_within(self, t: float) -> int:
        """Max ``NSUM(k1,k2)`` over windows with ``TSUM(k1,k2) <= t``."""
        idx = np.searchsorted(self._win_t, self._boundary(t), side="right")
        if idx == 0:
            return 0
        return int(self._nmax_prefix[idx - 1])


def build_link_demand(
    flow: Flow,
    linkspeed_bps: float,
    config: PacketizationConfig = DEFAULT_CONFIG,
) -> LinkDemand:
    """Build the :class:`LinkDemand` of ``flow`` on a link of given speed.

    Precomputes all windows ``(k1, k2)`` with ``k1 in 0..n-1`` and
    ``k2 in 1..n`` — windows longer than ``n`` frames always span at
    least ``TSUM`` and are handled by the cycle-peeling of Eqs. 11/13.
    """
    spec: GmfSpec = flow.spec
    packets = [
        packetize(s, flow.transport, config) for s in spec.payload_bits
    ]
    c = tuple(p.transmission_time(linkspeed_bps) for p in packets)
    n_eth = tuple(p.n_eth_frames for p in packets)
    t = tuple(float(x) for x in spec.min_separations)
    n = len(c)

    # Vectorised window sums via doubled prefix arrays.
    c2 = np.concatenate([np.asarray(c), np.asarray(c)])
    n2 = np.concatenate([np.asarray(n_eth, dtype=np.int64)] * 2)
    t2 = np.concatenate([np.asarray(t), np.asarray(t)])
    pc = np.concatenate([[0.0], np.cumsum(c2)])
    pn = np.concatenate([[0], np.cumsum(n2)])
    pt = np.concatenate([[0.0], np.cumsum(t2)])

    starts = np.arange(n)[:, None]          # k1
    counts = np.arange(1, n + 1)[None, :]   # k2
    ends = starts + counts
    win_c = (pc[ends] - pc[starts]).ravel()
    win_n = (pn[ends] - pn[starts]).ravel()
    win_t = (pt[ends - 1] - pt[starts]).ravel()  # k2 - 1 separations

    order = np.argsort(win_t, kind="stable")
    win_t_sorted = win_t[order]
    cmax_prefix = np.maximum.accumulate(win_c[order])
    nmax_prefix = np.maximum.accumulate(win_n[order])

    return LinkDemand(
        flow_name=flow.name,
        c=c,
        n_eth=n_eth,
        t=t,
        mft=max_frame_transmission_time(linkspeed_bps),
        _win_t=win_t_sorted,
        _cmax_prefix=cmax_prefix,
        _nmax_prefix=nmax_prefix,
    )
