"""GMF demand-bound functions on a link (Eqs. 4-13).

For a flow ``tau_j`` crossing ``link(N1, N2)`` the paper defines:

* ``CSUM_j`` (Eq. 4)  — total transmission time of one cycle;
* ``NSUM_j`` (Eq. 5)  — total Ethernet-frame count of one cycle;
* ``TSUM_j`` (Eq. 6)  — total minimum separation of one cycle;
* windowed variants over ``k2`` consecutive frames starting at ``k1``
  (Eqs. 7-9; note Eq. 9 sums one fewer term: the time between the first
  and the last arrival of the window);
* ``MXS/MX`` (Eqs. 10-11) — the maximum link time the flow can demand in
  any interval of length ``t`` (``MXS`` for ``0 < t < TSUM``, ``MX`` for
  all ``t`` by peeling off whole cycles);
* ``NXS/NX`` (Eqs. 12-13) — the same for Ethernet-frame counts.

:class:`LinkDemand` precomputes all ``O(n^2)`` windows once with numpy
prefix sums and answers ``mx/nx`` queries in ``O(log n)`` via
sorted-window prefix maxima, because the busy-period iterations evaluate
these functions thousands of times.

Batched interference queries
----------------------------
The busy-period recurrences evaluate ``sum_j MX/NX(tau_j, t + extra_j)``
over a whole interferer set at every iterate.  :class:`InterferenceSet`
packs the interferers' sorted-window tables into padded matrices once
per stage and answers the summed query with a handful of vectorised
numpy operations instead of per-flow Python calls.  The per-flow values
are gathered from exactly the same precomputed arrays and accumulated in
the same left-to-right order as the scalar path, so the results are
bit-identical — the engine-equivalence guarantees rely on this.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from functools import cached_property, lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.packetization import (
    DEFAULT_CONFIG,
    PacketizationConfig,
    max_frame_transmission_time,
    packetize,
)
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec


@dataclass(frozen=True)
class LinkDemand:
    """Per-(flow, link) demand profile: Eqs. 4-13 pre-evaluated.

    Construct via :func:`build_link_demand`.  All times are seconds.

    Attributes
    ----------
    flow_name:
        The flow this profile belongs to (for error messages).
    c:
        ``C_j^{k,link}`` per frame ``k`` (transmission times).
    n_eth:
        Ethernet-frame counts per frame ``k`` (the ``ceil(C/MFT)`` of
        Eq. 5, computed exactly from the fragmentation).
    t:
        ``T_j^k`` per frame.
    mft:
        ``MFT(link)`` (Eq. 1).
    """

    flow_name: str
    c: tuple[float, ...]
    n_eth: tuple[int, ...]
    t: tuple[float, ...]
    mft: float
    # Sorted windows for O(log n) queries; built in build_link_demand.
    _win_t: np.ndarray | None = field(repr=False, compare=False, default=None)
    _cmax_prefix: np.ndarray | None = field(
        repr=False, compare=False, default=None
    )
    _nmax_prefix: np.ndarray | None = field(
        repr=False, compare=False, default=None
    )

    # ------------------------------------------------------------------
    # Full-cycle sums (Eqs. 4-6)
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        return len(self.c)

    @cached_property
    def csum(self) -> float:
        """``CSUM_j^{link}`` (Eq. 4)."""
        return float(sum(self.c))

    @cached_property
    def nsum(self) -> int:
        """``NSUM_j^{link}`` (Eq. 5)."""
        return int(sum(self.n_eth))

    @cached_property
    def tsum(self) -> float:
        """``TSUM_j`` (Eq. 6)."""
        return float(sum(self.t))

    @cached_property
    def utilization(self) -> float:
        """``CSUM / TSUM``: the long-run link utilisation of the flow."""
        return self.csum / self.tsum

    @cached_property
    def nx_rate(self) -> float:
        """Long-run Ethernet-frame rate ``NSUM / TSUM`` (frames/second)."""
        return self.nsum / self.tsum

    @property
    def max_c(self) -> float:
        """Largest single-frame transmission time on this link."""
        return max(self.c)

    @cached_property
    def mx_support_gamma(self) -> float:
        """Certified intercept: ``mx_work(s) >= utilization*s + gamma``.

        The windowed demand staircase lies on or above its long-run-rate
        support line; the intercept is the smallest vertical gap over
        one cycle, evaluated at each plateau's right edge (the staircase
        only touches the line at whole-cycle boundaries).  Used by the
        safeguarded fixed-point acceleration to certify a region that
        provably contains no fixed point.  Clamped at 0 from below only
        in exact arithmetic; float residue may leave it a hair negative,
        which remains a sound (slightly weaker) certificate.
        """
        u = self.utilization
        gaps = [self.csum - u * self.tsum]
        if self._win_t is not None and len(self._win_t) > 1:
            gaps.append(
                float(np.min(self._cmax_prefix[:-1] - u * self._win_t[1:]))
            )
        return min(gaps)

    # ------------------------------------------------------------------
    # Windowed sums (Eqs. 7-9)
    # ------------------------------------------------------------------
    def csum_window(self, k1: int, k2: int) -> float:
        """``CSUM_j(k1, k2)`` (Eq. 7): transmission time of ``k2``
        consecutive frames starting at frame ``k1`` (indices mod n)."""
        self._check_window(k1, k2)
        n = self.n_frames
        return float(sum(self.c[k % n] for k in range(k1, k1 + k2)))

    def nsum_window(self, k1: int, k2: int) -> int:
        """``NSUM_j(k1, k2)`` (Eq. 8): Ethernet frames in the window."""
        self._check_window(k1, k2)
        n = self.n_frames
        return int(sum(self.n_eth[k % n] for k in range(k1, k1 + k2)))

    def tsum_window(self, k1: int, k2: int) -> float:
        """``TSUM_j(k1, k2)`` (Eq. 9): minimum time between the first and
        last arrival of the window (``k2 - 1`` separations)."""
        self._check_window(k1, k2)
        n = self.n_frames
        return float(sum(self.t[k % n] for k in range(k1, k1 + k2 - 1)))

    def _check_window(self, k1: int, k2: int) -> None:
        if not (0 <= k1 < self.n_frames):
            raise IndexError(f"window start {k1} outside 0..{self.n_frames - 1}")
        if k2 < 1:
            raise ValueError("window must contain at least one frame")

    # ------------------------------------------------------------------
    # Demand-bound functions (Eqs. 10-13)
    # ------------------------------------------------------------------
    def mxs(self, t: float) -> float:
        """``MXS(tau_j, N1, N2, t)`` (Eq. 10) for ``0 <= t < TSUM``.

        The most link time any window of frames that *can* arrive within
        an interval of length ``t`` can demand, capped at ``t`` itself
        (the flow cannot occupy the link for longer than the interval).
        """
        if t <= 0.0:
            return 0.0
        if t >= self.tsum:
            raise ValueError(
                f"MXS only defined for t < TSUM ({self.tsum}); got {t}"
            )
        return min(t, self._best_c_within(t))

    def mx(self, t: float) -> float:
        """``MX(tau_j, N1, N2, t)`` (Eq. 11) for any ``t >= 0``.

        ``floor(t / TSUM)`` whole cycles of demand plus the best window
        in the remainder.
        """
        if t <= 0.0:
            return 0.0
        cycles, rem = self._split_cycles(t)
        small = min(rem, self._best_c_within(rem)) if rem > 0.0 else 0.0
        return cycles * self.csum + small

    def mx_work(self, t: float) -> float:
        """Uncapped arrival-work bound: the corrected form of Eq. 11.

        Maximum total transmission time of frames that can *arrive*
        within a right-closed window of length ``t`` — i.e. Eq. 11
        without Eq. 10's ``min(t, .)`` cap, and with arrivals at the
        window boundary included (like ``NX``).

        The cap is correct for *completed service* but makes the
        queuing-time recurrences (Eqs. 17/31) degenerate: at the seed
        ``w = 0`` a capped ``MX`` charges zero interference from
        packets arriving together with the analysed one, yielding the
        spurious fixed point "no queuing at all".  The analyses use
        this uncapped bound unless ``strict_paper`` is set (DESIGN.md).
        """
        if t < 0.0:
            return 0.0
        cycles, rem = self._split_cycles(t)
        return cycles * self.csum + self._best_c_within(rem)

    def nxs(self, t: float) -> int:
        """``NXS(tau_j, N1, N2, t)`` (Eq. 12) for ``0 <= t < TSUM``.

        The most Ethernet frames receivable from the flow within ``t``.
        Unlike ``MXS`` there is no ``min(t, .)`` cap: a burst of frames
        (zero separations / jitter) can all land in an arbitrarily small
        interval.
        """
        if t < 0.0:
            return 0
        if t >= self.tsum:
            raise ValueError(
                f"NXS only defined for t < TSUM ({self.tsum}); got {t}"
            )
        return self._best_n_within(t)

    def nx(self, t: float) -> int:
        """``NX(tau_j, N1, N2, t)`` (Eq. 13) for any ``t >= 0``."""
        if t < 0.0:
            return 0
        cycles, rem = self._split_cycles(t)
        return cycles * self.nsum + self._best_n_within(rem)

    def _split_cycles(self, t: float) -> tuple[int, float]:
        """Peel off whole GMF cycles; returns ``(floor(t/TSUM), rem)``.

        Guards against floating-point drift: a remainder within one ulp
        of ``TSUM`` is promoted to a full cycle.
        """
        cycles = int(math.floor(t / self.tsum))
        rem = t - cycles * self.tsum
        if rem >= self.tsum:  # t/tsum rounded down but subtraction says not
            cycles += 1
            rem = 0.0
        return cycles, max(0.0, rem)

    @staticmethod
    def _boundary(t: float) -> float:
        """Nudge ``t`` up a few ulps before the window search.

        Window lengths come from prefix-sum differences, which can land
        one ulp above the mathematically equal direct sum; without the
        nudge a window with ``TSUM(k1,k2) == t`` could be excluded.
        Including a boundary window is conservative (the demand bound
        can only grow), so the nudge is sound.
        """
        return t * (1.0 + 1e-12) + 1e-18

    @cached_property
    def _win_lists(self) -> tuple[list[float], list[float], list[int]]:
        """Python-list copies of the sorted window tables.

        Scalar fast path: a single-instant ``mx``/``nx`` query costs one
        :func:`bisect.bisect_right` over these lists instead of a numpy
        ``searchsorted`` dispatch (~10x per-call overhead for the short
        arrays involved).  ``tolist`` preserves every float bit, and
        ``bisect_right`` performs the same comparisons as
        ``searchsorted(..., side="right")``, so the scalar and
        vectorised answers stay bit-identical.
        """
        return (
            self._win_t.tolist(),
            self._cmax_prefix.tolist(),
            self._nmax_prefix.tolist(),
        )

    def _best_c_within(self, t: float) -> float:
        """Max ``CSUM(k1,k2)`` over windows with ``TSUM(k1,k2) <= t``."""
        win_t, cmax, _ = self._win_lists
        idx = bisect_right(win_t, self._boundary(t))
        if idx == 0:
            return 0.0
        return cmax[idx - 1]

    def _best_n_within(self, t: float) -> int:
        """Max ``NSUM(k1,k2)`` over windows with ``TSUM(k1,k2) <= t``."""
        win_t, _, nmax = self._win_lists
        idx = bisect_right(win_t, self._boundary(t))
        if idx == 0:
            return 0
        return nmax[idx - 1]


def build_link_demand(
    flow: Flow,
    linkspeed_bps: float,
    config: PacketizationConfig = DEFAULT_CONFIG,
) -> LinkDemand:
    """Build the :class:`LinkDemand` of ``flow`` on a link of given speed.

    Precomputes all windows ``(k1, k2)`` with ``k1 in 0..n-1`` and
    ``k2 in 1..n`` — windows longer than ``n`` frames always span at
    least ``TSUM`` and are handled by the cycle-peeling of Eqs. 11/13.

    Profiles are memoized on exactly the inputs they are derived from —
    the flow's *spec class* (transport, payloads, separations) and the
    link speed, **not** the flow name — so fresh analysis contexts over
    recurring flows skip the ``O(n^2)`` window precomputation entirely,
    and the 10^5 identically-shaped flows of a datacenter scenario share
    one set of window arrays instead of thrashing the cache with 10^5
    name-distinct copies.  The returned per-flow profile is a cheap
    named view over the shared arrays.
    """
    profile = _cached_link_demand(
        flow.transport,
        flow.spec.payload_bits,
        flow.spec.min_separations,
        float(linkspeed_bps),
        config,
    )
    return replace(profile, flow_name=flow.name)


@lru_cache(maxsize=65536)
def _cached_link_demand(
    transport,
    payload_bits: tuple,
    min_separations: tuple,
    linkspeed_bps: float,
    config: PacketizationConfig,
) -> LinkDemand:
    packets = [packetize(s, transport, config) for s in payload_bits]
    c = tuple(p.transmission_time(linkspeed_bps) for p in packets)
    n_eth = tuple(p.n_eth_frames for p in packets)
    t = tuple(float(x) for x in min_separations)
    n = len(c)

    # Vectorised window sums via doubled prefix arrays.
    c2 = np.concatenate([np.asarray(c), np.asarray(c)])
    n2 = np.concatenate([np.asarray(n_eth, dtype=np.int64)] * 2)
    t2 = np.concatenate([np.asarray(t), np.asarray(t)])
    pc = np.concatenate([[0.0], np.cumsum(c2)])
    pn = np.concatenate([[0], np.cumsum(n2)])
    pt = np.concatenate([[0.0], np.cumsum(t2)])

    starts = np.arange(n)[:, None]          # k1
    counts = np.arange(1, n + 1)[None, :]   # k2
    ends = starts + counts
    win_c = (pc[ends] - pc[starts]).ravel()
    win_n = (pn[ends] - pn[starts]).ravel()
    win_t = (pt[ends - 1] - pt[starts]).ravel()  # k2 - 1 separations

    order = np.argsort(win_t, kind="stable")
    win_t_sorted = win_t[order]
    cmax_prefix = np.maximum.accumulate(win_c[order])
    nmax_prefix = np.maximum.accumulate(win_n[order])

    return LinkDemand(
        flow_name="",
        c=c,
        n_eth=n_eth,
        t=t,
        mft=max_frame_transmission_time(linkspeed_bps),
        _win_t=win_t_sorted,
        _cmax_prefix=cmax_prefix,
        _nmax_prefix=nmax_prefix,
    )


#: Below this many interferers the vectorised path costs more in numpy
#: dispatch than it saves; fall back to the scalar per-flow queries
#: (both paths are bit-identical, so the switch is purely a perf knob).
#: The scalar queries run on the bisect-based ``LinkDemand._win_lists``
#: fast path — numpy-free per call — which moves the measured
#: crossover from ~6 interferers (``np.searchsorted`` per flow) to ~20.
_VECTORIZE_THRESHOLD = 20


@lru_cache(maxsize=1024)
def _packed_windows(
    demands: tuple[LinkDemand, ...],
) -> tuple[np.ndarray, ...]:
    """Padded window matrices for a demand set (shared, never mutated).

    The packing is a pure function of the demand profiles, and the same
    interferer sets recur at every holistic round and admission request
    — so the matrices are memoized on the (value-hashed) profile tuple.
    ``LinkDemand`` hashes over its defining fields (name, ``c``,
    ``n_eth``, ``t``, ``mft``); the window arrays are derived from
    those, so equal keys imply equal matrices.
    """
    n = len(demands)
    tsums = np.array([d.tsum for d in demands])
    csums = np.array([d.csum for d in demands])
    nsums = np.array([d.nsum for d in demands], dtype=np.int64)
    width = max(len(d._win_t) for d in demands)
    win_t = np.full((n, width), np.inf)
    cmax = np.zeros((n, width))
    nmax = np.zeros((n, width), dtype=np.int64)
    for i, d in enumerate(demands):
        w = len(d._win_t)
        win_t[i, :w] = d._win_t
        cmax[i, :w] = d._cmax_prefix
        nmax[i, :w] = d._nmax_prefix
    return tsums, csums, nsums, win_t, cmax, nmax, np.arange(n)


class InterferenceSet:
    """Batched ``sum_j MX/NX(tau_j, t + shift_j)`` over an interferer set.

    Built once per analysis stage (the interferers and their jitter
    shifts are fixed for the whole stage) and queried at every iterate
    of every busy-period / queuing-time fixed point of the stage.  The
    interferers' sorted-window tables are packed into +inf-padded
    matrices; a query then costs one vectorised row-wise rank count and
    two gathers instead of ``N`` Python-level ``mx``/``nx`` calls.

    Per-flow values are reduced strictly left-to-right in construction
    order so the sums are bit-identical to the scalar generator
    expressions they replace.

    Small sets skip :meth:`_gather` (and with it every numpy array
    dispatch) entirely: below :data:`_VECTORIZE_THRESHOLD` interferers
    the summed queries loop over the per-flow scalar methods, which
    answer each single-instant ``mx``/``nx`` via a pure-Python bisect
    over :attr:`LinkDemand._win_lists`.

    Parameters
    ----------
    demands:
        One :class:`LinkDemand` per interferer (order preserved).
    shifts:
        The jitter shift ``extra_j`` added to the query time per flow.
    strict:
        When True ``mx`` uses the printed Eq. 10/11 cap; otherwise the
        uncapped arrival-work bound (see :meth:`LinkDemand.mx_work`).
    """

    def __init__(
        self,
        demands: Sequence[LinkDemand],
        shifts: Sequence[float],
        *,
        strict: bool = False,
    ):
        if len(demands) != len(shifts):
            raise ValueError("one shift per interferer required")
        self.demands = tuple(demands)
        self.shifts = tuple(float(s) for s in shifts)
        self.strict = strict
        n = len(self.demands)
        self._vectorized = n >= _VECTORIZE_THRESHOLD
        if not self._vectorized:
            return
        self._shift_arr = np.array(self.shifts)
        (
            self._tsums,
            self._csums,
            self._nsums,
            self._win_t,
            self._cmax,
            self._nmax,
            self._rows,
        ) = _packed_windows(self.demands)

    @classmethod
    def from_arrays(
        cls,
        demands: tuple[LinkDemand, ...],
        shifts: tuple[float, ...],
        *,
        strict: bool,
        tsums: np.ndarray,
        csums: np.ndarray,
        nsums: np.ndarray,
        win_t: np.ndarray,
        cmax: np.ndarray,
        nmax: np.ndarray,
    ) -> "InterferenceSet":
        """Construct from pre-gathered window matrices (flat-array path).

        :class:`LinkDemandMatrix.subset` slices a link-wide matrix by
        flow position instead of re-packing per-flow tables; the
        matrices may carry extra ``+inf``/0 padding columns (link-level
        width vs per-set width), which is inert: the rank count
        ``win_t <= boundary`` never admits an ``inf`` column and the
        gathers never index past the last admitted window.  All values
        come from the same shared per-class arrays the scalar path
        bisects, so queries stay bit-identical.
        """
        self = cls.__new__(cls)
        self.demands = demands
        self.shifts = shifts
        self.strict = strict
        self._vectorized = len(demands) >= _VECTORIZE_THRESHOLD
        if self._vectorized:
            self._shift_arr = np.array(shifts)
            self._tsums = tsums
            self._csums = csums
            self._nsums = nsums
            self._win_t = win_t
            self._cmax = cmax
            self._nmax = nmax
            self._rows = np.arange(len(demands))
        return self

    def __len__(self) -> int:
        return len(self.demands)

    # ------------------------------------------------------------------
    # Certified affine lower supports (for the accelerated solver)
    # ------------------------------------------------------------------
    def mx_support(self) -> tuple[float, float]:
        """``(rate, intercept)`` with ``mx_sum(t) >= rate*t + intercept``.

        Summed long-run utilisations plus the jitter-shift offsets and
        (in uncapped mode) the per-flow staircase intercepts.
        """
        rate = 0.0
        intercept = 0.0
        for d, e in zip(self.demands, self.shifts):
            u = d.utilization
            rate += u
            intercept += u * e
            if not self.strict:
                intercept += d.mx_support_gamma
        return rate, intercept

    def nx_support(self, circ: float) -> tuple[float, float]:
        """``(rate, intercept)`` with ``circ*nx_sum(t) >= rate*t + ...``."""
        rate = 0.0
        intercept = 0.0
        for d, e in zip(self.demands, self.shifts):
            r = circ * d.nx_rate
            rate += r
            intercept += r * e
        return rate, intercept

    def mixed_support(self, circ: float) -> tuple[float, float]:
        """Support of ``sum_j (mx_j + circ*nx_j)(t + shift_j)``."""
        mr, mi = self.mx_support()
        nr, ni = self.nx_support(circ)
        return mr + nr, mi + ni

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def _gather(
        self, s: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split cycles and gather best windows for query times ``s``.

        Mirrors :meth:`LinkDemand._split_cycles` / ``_boundary`` /
        ``_best_*_within`` operation for operation (same float ops, same
        promote-on-drift guard) so gathered values match the scalar path
        bit for bit.
        """
        cycles = np.floor(s / self._tsums)
        rem = s - cycles * self._tsums
        over = rem >= self._tsums
        if over.any():
            cycles = np.where(over, cycles + 1.0, cycles)
            rem = np.where(over, 0.0, rem)
        rem = np.maximum(rem, 0.0)
        boundary = rem * (1.0 + 1e-12) + 1e-18
        idx = (self._win_t <= boundary[:, None]).sum(axis=1)
        has = idx > 0
        gi = np.where(has, idx - 1, 0)
        cbest = np.where(has, self._cmax[self._rows, gi], 0.0)
        nbest = np.where(has, self._nmax[self._rows, gi], 0)
        return cycles, rem, cbest, nbest

    def mx_sum(self, t: float) -> float:
        """Ordered sum of ``mx``/``mx_work`` over the set at ``t+shift``."""
        if not self._vectorized:
            if self.strict:
                return sum(
                    d.mx(t + e) for d, e in zip(self.demands, self.shifts)
                )
            return sum(
                d.mx_work(t + e) for d, e in zip(self.demands, self.shifts)
            )
        s = t + self._shift_arr
        cycles, rem, cbest, _ = self._gather(s)
        if self.strict:
            small = np.where(rem > 0.0, np.minimum(rem, cbest), 0.0)
            vals = np.where(s > 0.0, cycles * self._csums + small, 0.0)
        else:
            vals = cycles * self._csums + cbest
        return sum(vals.tolist())

    def nx_sum(self, t: float) -> int:
        """Exact integer sum of ``nx`` over the set at ``t+shift``."""
        if not self._vectorized:
            return sum(
                d.nx(t + e) for d, e in zip(self.demands, self.shifts)
            )
        s = t + self._shift_arr
        cycles, _, _, nbest = self._gather(s)
        vals = (cycles * self._nsums + nbest).astype(np.int64)
        # Integer summation is exact and order-independent, so the
        # vectorised reduction matches the scalar path bit for bit.
        return int(vals.sum())

    def mixed_sum(self, t: float, circ: float) -> float:
        """Ordered sum of ``mx_j + circ*nx_j`` over the set (egress)."""
        if not self._vectorized:
            if self.strict:
                return sum(
                    d.mx(t + e) + d.nx(t + e) * circ
                    for d, e in zip(self.demands, self.shifts)
                )
            return sum(
                d.mx_work(t + e) + d.nx(t + e) * circ
                for d, e in zip(self.demands, self.shifts)
            )
        s = t + self._shift_arr
        cycles, rem, cbest, nbest = self._gather(s)
        if self.strict:
            small = np.where(rem > 0.0, np.minimum(rem, cbest), 0.0)
            mx = np.where(s > 0.0, cycles * self._csums + small, 0.0)
        else:
            mx = cycles * self._csums + cbest
        nx = (cycles * self._nsums + nbest).astype(np.int64)
        return sum((mx + nx * circ).tolist())


#: Structured per-flow row metadata of a :class:`LinkDemandMatrix`:
#: cycle period (``TSUM``, s), max source jitter (s), wire bits per
#: cycle, Ethernet fragments per cycle (``NSUM``) and the flow's
#: priority on the link.  This is the memory-flat face of the demand
#: layer — one contiguous record per flow instead of a Python object —
#: used by the hierarchy layer's pod-boundary envelopes.
LINK_META_DTYPE = np.dtype(
    [
        ("period", np.float64),
        ("jitter", np.float64),
        ("wire_bits", np.float64),
        ("n_frag", np.int64),
        ("prio", np.int64),
    ]
)


class LinkDemandMatrix:
    """Memory-flat demand representation of every flow on one link.

    Holds, in flow (admission) order: a structured metadata row per
    flow (:data:`LINK_META_DTYPE`), the full-cycle sums, and the sorted
    window tables stacked into one padded matrix per quantity.  Rows of
    flows with the same spec class reference the *same* shared window
    arrays (the name-free :func:`build_link_demand` cache), so a
    datacenter-scale link with 10^5 identically-shaped flows stores one
    window table, not 10^5.

    :meth:`subset` assembles a stage's :class:`InterferenceSet` with a
    single row-gather per matrix — replacing the per-flow Python
    packing loop (and its lru cache, which thrashes once interferer
    tuples outnumber its capacity) with one C-level fancy index.
    Below the vectorisation threshold it returns a plain scalar-path
    set over the shared per-flow profiles; both paths are bit-identical
    to the object-per-flow construction.
    """

    __slots__ = (
        "demands",
        "meta",
        "n_classes",
        "_index",
        "_tsums",
        "_csums",
        "_nsums",
        "_win_t",
        "_cmax",
        "_nmax",
    )

    def __init__(
        self,
        demands: Sequence[LinkDemand],
        linkspeed_bps: float,
        jitters: Sequence[float],
        priorities: Sequence[int],
    ):
        self.demands = tuple(demands)
        n = len(self.demands)
        self._index = {d.flow_name: i for i, d in enumerate(self.demands)}
        if len(self._index) != n:
            raise ValueError("duplicate flow names on one link")
        self.meta = np.zeros(n, dtype=LINK_META_DTYPE)
        self._tsums = np.array([d.tsum for d in self.demands])
        self._csums = np.array([d.csum for d in self.demands])
        self._nsums = np.array(
            [d.nsum for d in self.demands], dtype=np.int64
        )
        self.meta["period"] = self._tsums
        self.meta["jitter"] = np.asarray([float(j) for j in jitters])
        self.meta["wire_bits"] = self._csums * float(linkspeed_bps)
        self.meta["n_frag"] = self._nsums
        self.meta["prio"] = np.asarray(list(priorities), dtype=np.int64)
        width = max((len(d._win_t) for d in self.demands), default=0)
        self._win_t = np.full((n, width), np.inf)
        self._cmax = np.zeros((n, width))
        self._nmax = np.zeros((n, width), dtype=np.int64)
        # Fill per spec *class*, not per flow: rows sharing window
        # arrays (identity implies value here — the name-free profile
        # cache interns them) are written with one broadcast each.
        by_class: dict[int, list[int]] = {}
        for i, d in enumerate(self.demands):
            by_class.setdefault(id(d._win_t), []).append(i)
        for rows in by_class.values():
            d = self.demands[rows[0]]
            w = len(d._win_t)
            self._win_t[rows, :w] = d._win_t
            self._cmax[rows, :w] = d._cmax_prefix
            self._nmax[rows, :w] = d._nmax_prefix
        self.n_classes = len(by_class)

    def __len__(self) -> int:
        return len(self.demands)

    def subset(
        self,
        names: Sequence[str],
        shifts: Sequence[float],
        *,
        strict: bool = False,
    ) -> InterferenceSet:
        """The :class:`InterferenceSet` of the named flows, in order."""
        positions = [self._index[name] for name in names]
        demands = tuple(self.demands[p] for p in positions)
        shift_t = tuple(float(s) for s in shifts)
        if len(positions) < _VECTORIZE_THRESHOLD:
            return InterferenceSet(demands, shift_t, strict=strict)
        rows = np.asarray(positions)
        return InterferenceSet.from_arrays(
            demands,
            shift_t,
            strict=strict,
            tsums=self._tsums[rows],
            csums=self._csums[rows],
            nsums=self._nsums[rows],
            win_t=self._win_t[rows],
            cmax=self._cmax[rows],
            nmax=self._nmax[rows],
        )


# ----------------------------------------------------------------------
# Module-cache scoping (campaign-row boundaries) and telemetry
# ----------------------------------------------------------------------
def demand_cache_stats() -> dict[str, dict[str, int]]:
    """Sizes and hit counters of the module-level demand caches."""
    out: dict[str, dict[str, int]] = {}
    for label, cache in (
        ("window_cache", _cached_link_demand),
        ("packed_cache", _packed_windows),
    ):
        info = cache.cache_info()
        out[label] = {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
            "maxsize": info.maxsize,
        }
    return out


def clear_demand_caches() -> None:
    """Drop the module-level window-packing caches.

    The caches are shared across every context in the process; a
    campaign sweeping many scenarios (different link speeds / spec
    grids) would otherwise accumulate entries across rows with no
    eviction pressure relief between unrelated grid points.  The
    campaign runner calls this at row boundaries; correctness never
    depends on the caches (they are pure memoization).
    """
    _cached_link_demand.cache_clear()
    _packed_windows.cache_clear()


def record_demand_cache_telemetry() -> None:
    """Publish the module-cache stats as telemetry gauges.

    Recorded at scope boundaries (campaign rows, admission-controller
    snapshots) rather than per lookup, keeping the hot path free of
    telemetry branches; hit *rates* are derived downstream by
    :func:`repro.telemetry.report.derived_metrics`.
    """
    from repro import telemetry as _telemetry

    reg = _telemetry.REGISTRY
    if reg is None:
        return
    for label, stats in demand_cache_stats().items():
        for key in ("hits", "misses", "size"):
            reg.set_gauge(f"engine.{label}.{key}", stats[key])
