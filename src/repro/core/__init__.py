"""The paper's primary contribution: GMF schedulability analysis.

Modules map one-to-one onto the paper's Section 3:

* :mod:`repro.core.packetization` — Sec. 3.1 basic parameters
  (``nbits``, ``C_i^{k,link}``, ``MFT``);
* :mod:`repro.core.demand` — Eqs. 4-13 (``CSUM/NSUM/TSUM``, windowed
  sums, ``MXS/MX/NXS/NX``);
* :mod:`repro.core.first_hop` — Sec. 3.2, Eqs. 14-20;
* :mod:`repro.core.switch_ingress` — Sec. 3.3, Eqs. 21-27;
* :mod:`repro.core.switch_egress` — Sec. 3.4, Eqs. 28-35;
* :mod:`repro.core.pipeline` — the Fig. 6 end-to-end algorithm;
* :mod:`repro.core.holistic` — Sec. 3.5 holistic jitter fixed point;
* :mod:`repro.core.admission` — the admission controller built on it;
* :mod:`repro.core.utilization` — the convergence conditions (Eqs. 20,
  34, 35);
* :mod:`repro.core.context` / :mod:`repro.core.results` — the analysis
  context (network + flows + jitter table + caches) and result records.
"""

from repro.core.packetization import (
    PacketizationConfig,
    Packetization,
    eth_frame_count,
    max_frame_transmission_time,
    packetize,
    transmission_time,
    udp_packet_bits,
)
from repro.core.demand import InterferenceSet, LinkDemand, build_link_demand
from repro.core.context import AnalysisContext, AnalysisOptions, ResourceKey
from repro.core.results import (
    FlowResult,
    FrameResult,
    HolisticResult,
    StageResult,
    StageKind,
)
from repro.core.first_hop import first_hop_response_time, first_hop_stage
from repro.core.switch_ingress import ingress_response_time, ingress_stage
from repro.core.switch_egress import egress_response_time, egress_stage
from repro.core.pipeline import analyze_flow_frame, analyze_flow
from repro.core.holistic import holistic_analysis
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.utilization import (
    egress_utilization,
    first_hop_utilization,
    link_utilization,
    network_convergence_report,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisContext",
    "AnalysisOptions",
    "FlowResult",
    "FrameResult",
    "HolisticResult",
    "InterferenceSet",
    "LinkDemand",
    "Packetization",
    "PacketizationConfig",
    "ResourceKey",
    "StageKind",
    "StageResult",
    "analyze_flow",
    "analyze_flow_frame",
    "build_link_demand",
    "egress_response_time",
    "egress_stage",
    "egress_utilization",
    "eth_frame_count",
    "first_hop_response_time",
    "first_hop_stage",
    "first_hop_utilization",
    "holistic_analysis",
    "ingress_response_time",
    "ingress_stage",
    "link_utilization",
    "max_frame_transmission_time",
    "network_convergence_report",
    "packetize",
    "transmission_time",
    "udp_packet_bits",
]
