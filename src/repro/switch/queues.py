"""Queues inside a software Ethernet switch (Fig. 5).

Two kinds appear in the paper's switch:

* **NIC FIFO queues** — one per network card direction: received
  Ethernet frames wait here for the ingress task; frames handed to the
  card by the egress task wait here for the wire;
* **prioritised output queues** — one per outgoing interface, held in
  main memory: the ingress task enqueues classified frames by 802.1p
  priority, the egress task always dequeues the highest priority first
  (FIFO within a priority level).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Generic, Iterator, Optional, TypeVar


@dataclass(frozen=True)
class QueuedFrame:
    """An Ethernet frame inside the switch.

    Attributes
    ----------
    flow:
        Name of the flow the frame belongs to (the switch has already
        classified it; flow identification is outside the paper's scope).
    wire_bits:
        Size on the wire, including all Ethernet overheads.
    priority:
        802.1p priority on the *outgoing* link (larger = higher).
    packet_id:
        Identifier of the UDP packet this fragment belongs to.
    fragment:
        Index of this fragment within its UDP packet.
    n_fragments:
        Total fragments of the UDP packet (to detect "all received").
    enqueued_at:
        Simulation time the frame entered the current queue (for
        per-hop latency accounting).
    """

    flow: str
    wire_bits: int
    priority: int
    packet_id: int
    fragment: int
    n_fragments: int
    enqueued_at: float = 0.0

    # The simulator clones a frame at every queue hop, and a frozen
    # dataclass pays one guarded __setattr__ per field in __init__.
    # The clone helpers below bypass that by copying the instance dict
    # directly — same immutable value semantics, a fraction of the cost.
    def with_enqueue_time(self, t: float) -> "QueuedFrame":
        clone = object.__new__(QueuedFrame)
        d = clone.__dict__
        d.update(self.__dict__)
        d["enqueued_at"] = t
        return clone

    def reclassified(self, priority: int, t: float) -> "QueuedFrame":
        """Copy with the outgoing link's priority and a fresh enqueue
        time — the ingress task's classification step."""
        clone = object.__new__(QueuedFrame)
        d = clone.__dict__
        d.update(self.__dict__)
        d["priority"] = priority
        d["enqueued_at"] = t
        return clone


def make_frame(
    flow: str,
    wire_bits: int,
    priority: int,
    packet_id: int,
    fragment: int,
    n_fragments: int,
    enqueued_at: float,
) -> QueuedFrame:
    """Construct a :class:`QueuedFrame` without the frozen-dataclass
    per-field ``__setattr__`` toll (bulk release precomputation)."""
    frame = object.__new__(QueuedFrame)
    frame.__dict__.update(
        flow=flow,
        wire_bits=wire_bits,
        priority=priority,
        packet_id=packet_id,
        fragment=fragment,
        n_fragments=n_fragments,
        enqueued_at=enqueued_at,
    )
    return frame


class FifoQueue:
    """A bounded-or-unbounded FIFO of Ethernet frames (NIC queue).

    ``capacity=None`` models the analysis' assumption of no loss; a
    finite capacity lets experiments observe overflow behaviour (frames
    dropped at the tail, counted in ``dropped``).
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.capacity = capacity
        # A deque (O(1) popleft) — the simulator's hot loops also peek
        # at it directly, so it is never replaced, only mutated.
        self._items: deque[QueuedFrame] = deque()
        self.dropped = 0

    def push(self, frame: QueuedFrame) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(frame)
        return True

    def pop(self) -> QueuedFrame:
        if not self._items:
            raise IndexError("pop from empty FIFO")
        return self._items.popleft()

    def clear(self) -> None:
        """Empty the queue and reset the drop counter (in place, so
        hot-loop bindings to the underlying deque stay valid)."""
        self._items.clear()
        self.dropped = 0

    def peek(self) -> QueuedFrame | None:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[QueuedFrame]:
        return iter(self._items)


class PriorityQueue:
    """The prioritised output queue of one outgoing interface.

    Static-priority (IEEE 802.1p): ``pop`` returns the highest-priority
    frame; within a priority level frames leave in FIFO order.  A number
    of discrete levels can be enforced (commercial switches support
    2-8); priorities outside the range raise.
    """

    def __init__(self, n_levels: int | None = None):
        if n_levels is not None and n_levels < 1:
            raise ValueError("need at least one priority level")
        self.n_levels = n_levels
        self._heap: list[tuple[int, int, QueuedFrame]] = []
        self._seq = 0

    def push(self, frame: QueuedFrame) -> None:
        if self.n_levels is not None and not (0 <= frame.priority < self.n_levels):
            raise ValueError(
                f"priority {frame.priority} outside 0..{self.n_levels - 1}"
            )
        # Max-priority first; FIFO within level via the sequence number.
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (-frame.priority, seq, frame))

    def clear(self) -> None:
        """Empty the queue and restart FIFO numbering (in place, so
        hot-loop bindings to the underlying heap list stay valid)."""
        self._heap.clear()
        self._seq = 0

    def pop(self) -> QueuedFrame:
        if not self._heap:
            raise IndexError("pop from empty priority queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> QueuedFrame | None:
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def backlog_bits(self) -> int:
        """Total wire bits waiting (diagnostics)."""
        return sum(f.wire_bits for (_, _, f) in self._heap)
