"""Task-level model of the Click software switch (Fig. 5, Sec. 3.3).

A switch with ``NINTERFACES`` network cards runs ``2 * NINTERFACES``
software tasks on its processor(s):

* one **ingress task** per interface — when dispatched, it dequeues one
  Ethernet frame from that NIC's receive FIFO (if any), identifies the
  flow, looks up the outgoing interface and priority and enqueues the
  frame into the matching prioritised output queue; costs ``CROUTE``;
* one **egress task** per interface — when dispatched, it checks the
  NIC's transmit FIFO and, if there is room, moves the highest-priority
  frame from the output queue into it; costs ``CSEND``.

Tasks are dispatched non-preemptively by the stride scheduler.  With the
paper's all-tickets-equal configuration a task runs once per

    ``CIRC = NINTERFACES * (CROUTE + CSEND)``

in the worst case (every other task consuming its full cost).  This
module provides the structural model and CIRC accounting; the
discrete-event dynamics live in :mod:`repro.sim.swnode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.model.network import SwitchConfig
from repro.switch.queues import FifoQueue, PriorityQueue
from repro.switch.stride import StrideScheduler


class TaskKind(Enum):
    INGRESS = "ingress"  # NIC FIFO -> priority queue, cost CROUTE
    EGRESS = "egress"    # priority queue -> NIC FIFO, cost CSEND


@dataclass
class SwitchTask:
    """One of the switch's software tasks, bound to an interface."""

    kind: TaskKind
    interface: str  # neighbour node name identifying the NIC
    cost: float     # CROUTE or CSEND

    @property
    def name(self) -> str:
        return f"{self.kind.value}:{self.interface}"


class ClickSwitch:
    """Structural model of one software switch.

    Parameters
    ----------
    name:
        Node name.
    interfaces:
        Neighbour node names, one per network card.
    config:
        ``CROUTE``/``CSEND``/processor count.
    priority_levels:
        Number of 802.1p levels of the output queues (None = unlimited).

    The object owns the queues and the per-processor stride schedulers;
    the simulator drives it.
    """

    def __init__(
        self,
        name: str,
        interfaces: Sequence[str],
        config: SwitchConfig | None = None,
        *,
        priority_levels: int | None = None,
        nic_fifo_capacity: int | None = None,
    ):
        if not interfaces:
            raise ValueError(f"switch {name!r} needs at least one interface")
        if len(set(interfaces)) != len(interfaces):
            raise ValueError(f"switch {name!r}: duplicate interfaces")
        self.name = name
        self.interfaces = tuple(interfaces)
        self.config = config or SwitchConfig()

        # Queues of Fig. 5.
        self.rx_fifo: dict[str, FifoQueue] = {
            itf: FifoQueue(nic_fifo_capacity) for itf in self.interfaces
        }
        self.tx_fifo: dict[str, FifoQueue] = {
            itf: FifoQueue(nic_fifo_capacity) for itf in self.interfaces
        }
        self.output_queue: dict[str, PriorityQueue] = {
            itf: PriorityQueue(priority_levels) for itf in self.interfaces
        }

        # Tasks, partitioned over processors (conclusions extension).
        self.tasks: list[SwitchTask] = []
        for itf in self.interfaces:
            self.tasks.append(SwitchTask(TaskKind.INGRESS, itf, self.config.c_route))
            self.tasks.append(SwitchTask(TaskKind.EGRESS, itf, self.config.c_send))

        m = self.config.n_processors
        if len(self.interfaces) % m != 0:
            raise ValueError(
                f"switch {name!r}: {len(self.interfaces)} interfaces not "
                f"divisible by {m} processors"
            )
        per_proc = len(self.interfaces) // m
        self.schedulers: list[StrideScheduler] = []
        self.processor_of: dict[str, int] = {}
        for p in range(m):
            sched = StrideScheduler()
            for itf in self.interfaces[p * per_proc : (p + 1) * per_proc]:
                self.processor_of[itf] = p
                tickets = self.config.tickets_for(itf)
                for task in self.tasks:
                    if task.interface == itf:
                        sched.add_task(task.name, tickets=tickets, payload=task)
            self.schedulers.append(sched)

    # ------------------------------------------------------------------
    @property
    def n_interfaces(self) -> int:
        """``NINTERFACES(N)``."""
        return len(self.interfaces)

    @property
    def circ(self) -> float:
        """``CIRC(N)``: worst-case service period of any one task.

        Sec. 3.3's example: 4 interfaces, CROUTE=2.7 us, CSEND=1.0 us
        gives ``4 * 3.7 us = 14.8 us``.
        """
        return self.config.circ(self.n_interfaces)

    def scheduler_for(self, interface: str) -> StrideScheduler:
        """The stride scheduler of the processor owning ``interface``."""
        return self.schedulers[self.processor_of[interface]]

    def reset(self) -> None:
        """Empty every queue and re-boot the schedulers (topology reuse).

        All queue containers are cleared *in place* — the simulator's
        hot loops bind the underlying deques/heaps directly and must
        keep seeing the same objects.
        """
        for q in self.rx_fifo.values():
            q.clear()
        for q in self.tx_fifo.values():
            q.clear()
        for q in self.output_queue.values():
            q.clear()
        for sched in self.schedulers:
            sched.reset()

    def total_backlog(self) -> int:
        """Frames currently buffered anywhere in the switch (diagnostics)."""
        total = 0
        for q in self.rx_fifo.values():
            total += len(q)
        for q in self.tx_fifo.values():
            total += len(q)
        for q in self.output_queue.values():
            total += len(q)
        return total

    def describe(self) -> str:
        return (
            f"ClickSwitch({self.name!r}, {self.n_interfaces} interfaces, "
            f"{self.config.n_processors} cpu, CIRC={self.circ:.3e}s)"
        )
