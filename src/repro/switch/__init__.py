"""Software-switch substrate: stride scheduling and the Click switch model.

The paper's switches are software implementations (built with the Click
modular router) whose internal tasks are scheduled by **stride
scheduling** (Waldspurger & Weihl).  This package implements:

* :mod:`repro.switch.stride` — the full stride scheduler with tickets,
  strides and pass values (and the round-robin special case the paper
  uses, footnote 1);
* :mod:`repro.switch.queues` — the FIFO and static-priority queues of
  Fig. 5;
* :mod:`repro.switch.click` — the task-level switch model
  (one ingress task + one egress task per interface, CROUTE/CSEND
  costs, ``CIRC`` accounting);
* :mod:`repro.switch.multiproc` — the conclusions' multiprocessor
  partitioning (``NINTERFACES/m`` interfaces per processor).
"""

from repro.switch.stride import StrideScheduler, StrideTask
from repro.switch.queues import FifoQueue, PriorityQueue, QueuedFrame
from repro.switch.click import ClickSwitch, SwitchTask, TaskKind
from repro.switch.multiproc import (
    MultiprocessorPlan,
    partition_interfaces,
    circ_with_processors,
    max_linkspeed_supported,
)

__all__ = [
    "ClickSwitch",
    "FifoQueue",
    "MultiprocessorPlan",
    "PriorityQueue",
    "QueuedFrame",
    "StrideScheduler",
    "StrideTask",
    "SwitchTask",
    "TaskKind",
    "circ_with_processors",
    "max_linkspeed_supported",
    "partition_interfaces",
]
