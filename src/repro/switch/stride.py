"""Stride scheduling (Waldspurger & Weihl, 1995) — Sec. 2.2 of the paper.

Each task has a static ``tickets`` allocation.  A large integer constant
``STRIDE1`` divided by the tickets gives the task's ``stride``; a
per-task counter ``pass`` starts at the stride and the dispatcher always
runs the task with the least pass, then increments that task's pass by
its stride.  A task with twice the tickets is therefore dispatched twice
as often (deterministic proportional share).

The paper configures every task with ``tickets = 1`` (Click's default),
collapsing stride scheduling to round-robin; the analysis' ``CIRC(N)``
quantity is the worst-case time between two dispatches of the same task
under that configuration.  The full scheduler is implemented (and
property-tested) so the simulator and the ablation experiments can also
explore non-uniform ticket allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: The "large integer constant" of the paper / the stride paper's STRIDE1.
STRIDE1 = 1 << 20


@dataclass
class StrideTask:
    """One schedulable task.

    Attributes
    ----------
    name:
        Unique identifier.
    tickets:
        Static share allocation; must be >= 1.
    payload:
        Arbitrary object the caller associates with the task (the Click
        model attaches its ingress/egress task records here).
    """

    name: str
    tickets: int = 1
    payload: object = None
    stride: int = field(init=False)
    passes: int = field(init=False)

    def __post_init__(self) -> None:
        if self.tickets < 1:
            raise ValueError(f"task {self.name!r}: tickets must be >= 1")
        self.stride = STRIDE1 // self.tickets
        # "When the system boots, the pass of a task is initialized to
        # its stride."
        self.passes = self.stride


class StrideScheduler:
    """Deterministic stride scheduler.

    Dispatch order ties (equal pass) are broken by insertion order,
    which makes runs reproducible — essential for the discrete-event
    simulator.

    >>> s = StrideScheduler()
    >>> _ = s.add_task("a", tickets=2); _ = s.add_task("b", tickets=1)
    >>> [s.dispatch().name for _ in range(6)]
    ['a', 'a', 'b', 'a', 'a', 'b']
    """

    def __init__(self) -> None:
        self._tasks: dict[str, StrideTask] = {}
        self._order: dict[str, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def add_task(self, name: str, tickets: int = 1, payload: object = None) -> StrideTask:
        if name in self._tasks:
            raise ValueError(f"duplicate task {name!r}")
        task = StrideTask(name=name, tickets=tickets, payload=payload)
        self._tasks[name] = task
        self._order[name] = self._counter
        self._counter += 1
        return task

    def reset(self) -> None:
        """Return every task to its boot state (``pass = stride``).

        Used when a built simulator topology is reused for a fresh run:
        dispatch order after a reset is bit-identical to a newly
        constructed scheduler with the same tasks.
        """
        for task in self._tasks.values():
            task.passes = task.stride

    def remove_task(self, name: str) -> None:
        if name not in self._tasks:
            raise KeyError(f"unknown task {name!r}")
        del self._tasks[name]
        del self._order[name]

    def task(self, name: str) -> StrideTask:
        return self._tasks[name]

    def tasks(self) -> Iterable[StrideTask]:
        return self._tasks.values()

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    def peek(self) -> StrideTask:
        """The task that would be dispatched next (least pass)."""
        if not self._tasks:
            raise RuntimeError("no tasks to schedule")
        return min(
            self._tasks.values(),
            key=lambda t: (t.passes, self._order[t.name]),
        )

    def dispatch(self) -> StrideTask:
        """Select the least-pass task and advance its pass by its stride.

        The caller runs the returned task to completion (tasks are
        non-preemptive in Click) before dispatching again.
        """
        task = self.peek()
        task.passes += task.stride
        return task

    # ------------------------------------------------------------------
    def dispatch_counts(self, n_dispatches: int) -> dict[str, int]:
        """Simulate ``n_dispatches`` dispatches and count per-task runs.

        Used by tests to check the proportional-share property without
        mutating scheduler state (operates on a copy).
        """
        clone = StrideScheduler()
        for t in sorted(self._tasks.values(), key=lambda t: self._order[t.name]):
            clone.add_task(t.name, t.tickets)
        counts = {name: 0 for name in self._tasks}
        for _ in range(n_dispatches):
            counts[clone.dispatch().name] += 1
        return counts

    def is_round_robin(self) -> bool:
        """True when every task has one ticket (the paper's configuration)."""
        return all(t.tickets == 1 for t in self._tasks.values())

    def worst_case_gap(self, name: str) -> int:
        """Worst-case number of dispatches between two runs of ``name``.

        For the round-robin configuration this is exactly the task
        count — the quantity behind ``CIRC(N)``.  For general tickets it
        is bounded by ``ceil(total_tickets / tickets(name)) + 1`` (the
        stride paper's throughput-error bound gives a slack of one
        quantum); we return the simple conservative bound.
        """
        task = self._tasks[name]
        if self.is_round_robin():
            return len(self._tasks)
        total = sum(t.tickets for t in self._tasks.values())
        return -(-total // task.tickets) + 1
