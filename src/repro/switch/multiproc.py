"""Multiprocessor switches (paper conclusions).

"If m, the number of processors, is equally divisible by
NINTERFACES(N), one can assign NINTERFACES(N)/m network interfaces to
each processor.  [...] if a network processor comprises 16 processors
and each of them have the same capability as the PC running Click, then
a 48 port switch can be implemented with a CIRC(N) = 11.1 us.  Such a
switch can comfortably deal with links of speed 1 Gigabit/s."

This module reproduces that arithmetic and the feasibility check behind
the "comfortably deal with" claim: for the egress analysis to converge,
forwarding one maximum-size Ethernet frame must cost less processor time
per task cycle than the frame occupies the wire, i.e. ``CIRC(N) <
MFT(link)`` is the natural single-switch operating condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packetization import ETH_MAX_WIRE_BITS
from repro.model.network import SwitchConfig


@dataclass(frozen=True)
class MultiprocessorPlan:
    """Partitioning of a switch's interfaces over processors."""

    n_interfaces: int
    n_processors: int
    interfaces_per_processor: int
    circ: float

    def describe(self) -> str:
        return (
            f"{self.n_interfaces}-port switch on {self.n_processors} "
            f"processor(s): {self.interfaces_per_processor} interfaces/cpu, "
            f"CIRC = {self.circ * 1e6:.3f} us"
        )


def partition_interfaces(
    n_interfaces: int,
    n_processors: int,
    config: SwitchConfig | None = None,
) -> MultiprocessorPlan:
    """Build the conclusions' interface-to-processor partitioning.

    Both tasks of an interface go to the same processor; raises when the
    interface count is not divisible by the processor count.
    """
    base = config or SwitchConfig()
    cfg = SwitchConfig(
        c_route=base.c_route, c_send=base.c_send, n_processors=n_processors
    )
    circ = cfg.circ(n_interfaces)
    return MultiprocessorPlan(
        n_interfaces=n_interfaces,
        n_processors=n_processors,
        interfaces_per_processor=n_interfaces // n_processors,
        circ=circ,
    )


def circ_with_processors(
    n_interfaces: int, n_processors: int, config: SwitchConfig | None = None
) -> float:
    """``CIRC(N)`` under the multiprocessor partitioning."""
    return partition_interfaces(n_interfaces, n_processors, config).circ


def max_linkspeed_supported(
    n_interfaces: int,
    n_processors: int,
    config: SwitchConfig | None = None,
) -> float:
    """Fastest link speed for which ``CIRC(N) <= MFT(link)`` holds.

    At this speed the egress task keeps a link busy with back-to-back
    maximum-size frames: each wire transmission (``MFT``) outlasts the
    task's worst-case service period (``CIRC``), so the stride scheduler
    never starves the wire.  The paper's 48-port/16-processor example
    yields ``CIRC = 11.1 us`` and supports ~1.1 Gbit/s — the basis of
    the "comfortably deal with 1 Gigabit/s" claim.
    """
    circ = circ_with_processors(n_interfaces, n_processors, config)
    if circ <= 0:
        return float("inf")
    return ETH_MAX_WIRE_BITS / circ
