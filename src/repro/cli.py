"""Command-line interface: analyse / simulate / plan / sweep scenarios.

The operator workflow without writing Python::

    python -m repro.cli analyze scenario.json          # bounds + verdict
    python -m repro.cli analyze scenario.json --strict # as-printed eqs
    python -m repro.cli simulate scenario.json -d 5.0  # run the simulator
    python -m repro.cli validate scenario.json         # bounds vs sim
    python -m repro.cli report scenario.json           # utilisation report
    python -m repro.cli plan scenario.json --min-speed # capacity planning

Scenario files are the JSON documents of :mod:`repro.io` — the legacy
``network``+``flows`` layout or the versioned scenario schema of
:mod:`repro.scenario.serialization`; every subcommand accepts both.

Campaigns (the :mod:`repro.scenario` subsystem) scale that workflow
from one file to whole scenario families::

    python -m repro.cli generate --list                 # family catalogue
    python -m repro.cli generate --family voip-star \\
        --param seed=3 -o star.json                     # write a scenario
    python -m repro.cli campaign --family random-line \\
        --grid seed=0..31 --jobs 4                      # parallel sweep
    python -m repro.cli campaign a.json b.json \\
        --actions analyze,simulate                      # file campaigns

``campaign`` fans the scenario grid across a multiprocessing pool; its
result rows (and the printed digest) are bit-identical for any
``--jobs`` value, so parallel sweeps stay reproducible.

Serving (the :mod:`repro.service` subsystem) turns the admission
controller into a network service::

    python -m repro.cli serve scenario.json --port 7420 --shards 4
    python -m repro.cli serve --restore state.json     # warm restart
    python -m repro.cli replay --family voip-star \\
        --requests 200 --arrival poisson --rate 200    # offline driver
    python -m repro.cli replay --family voip-star \\
        --requests 200 --connect 127.0.0.1:7420 \\
        --check-serial                                 # drive a live server

``replay`` builds a reproducible request stream from any scenario
family plus an arrival process (poisson / burst / recorded churn) and
drives either an in-process sharded service or a live server;
``--check-serial`` re-runs the stream through a plain serial
:class:`~repro.core.admission.AdmissionController` and verifies the
decisions match request for request.

Observability (the :mod:`repro.telemetry` subsystem) closes the loop
from measured runs to regression gates::

    python -m repro.cli campaign --family voip-star \\
        --grid seed=0..7 --label pr6-baseline       # record a labelled run
    python -m repro.cli report --label pr6-baseline # rollup of that label
    python -m repro.cli report --diff pr6-baseline pr6-candidate
                                                    # regression gate
    python -m repro.cli replay --family voip-star \\
        --requests 200 --metrics-out metrics.json   # dump raw snapshots
    python -m repro.cli serve scenario.json --telemetry

``campaign --label`` appends a run record (KPIs + merged telemetry
snapshot) to ``TELEMETRY_runs.jsonl``; ``report --diff A B`` compares
two labels KPI by KPI and exits non-zero when a gating metric (cache
hit rates, admission rate, iteration counts — not wall-clock numbers)
moved the wrong way by more than ``--threshold``.  ``-v`` / ``-q``
raise or silence status logging for every subcommand.

Tracing and live monitoring (:mod:`repro.telemetry.tracing`)::

    python -m repro.cli serve scenario.json --trace \\
        --flight-dir flights/                       # traced server
    python -m repro.cli replay --family voip-star \\
        --requests 200 --connect 127.0.0.1:7420 \\
        --traced                                    # traced requests
    python -m repro.cli trace-export \\
        --connect 127.0.0.1:7420 -o trace.json      # Chrome trace JSON
    python -m repro.cli watch --connect 127.0.0.1:7420 \\
        --label prod --every 30                     # live stats polling
    python -m repro.cli watch --campaign voip-star \\
        --grid n_calls=4 --label nightly --every 3600
                                                    # standing scheduler

``trace-export`` renders the fleet's recent spans as Chrome
trace-event JSON (load in Perfetto); ``watch`` appends labelled run
records to the telemetry store — from a live server's ``stats`` /
``metrics`` verbs, or by re-running a registered scenario family on an
interval so ``report --diff`` gates drift over time.
"""

from __future__ import annotations

import argparse
import logging
import math
import sys
from typing import Any, Sequence

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.core.planning import minimum_link_speed_scale, scale_link_speeds
from repro.core.utilization import network_convergence_report
from repro.sim.simulator import SimConfig, simulate
from repro.util.tables import Table
from repro.util.units import fmt_duration, fmt_rate

log = logging.getLogger("repro.cli")


def _configure_logging(args) -> None:
    """One logging config for the whole CLI (``-v`` / ``-q``).

    Status chatter (``serve``/``replay``/``campaign`` progress) goes
    through :mod:`logging` at INFO; results (tables, digests, verdicts)
    stay on plain ``print``.  The default format is bare messages on
    stdout, so default-level output is byte-identical to the historic
    ad-hoc prints; ``-q`` silences the chatter, ``-v`` adds DEBUG
    detail.
    """
    if getattr(args, "quiet", False):
        level = logging.WARNING
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = logging.INFO
    logging.basicConfig(
        level=level,
        format="%(message)s",
        stream=sys.stdout,
        force=True,
    )


class _CliScenario:
    """A loaded scenario file plus which optional blocks it carried.

    Versioned files may embed ``analysis`` (:class:`AnalysisOptions`)
    and ``sim`` (:class:`SimConfig`) blocks; when present they become
    the base configuration of every subcommand, with CLI flags layered
    on top.  Legacy files keep the historic CLI defaults.
    """

    def __init__(self, path: str):
        import json as _json
        from pathlib import Path

        from repro.io import ScenarioError
        from repro.scenario import scenario_from_dict

        path = Path(path)
        try:
            doc = _json.loads(path.read_text())
        except _json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ScenarioError(f"{path}: expected a JSON object")
        self.scenario = scenario_from_dict(doc, default_name=path.stem)
        self.has_analysis = "analysis" in doc
        self.has_sim = "sim" in doc

    @property
    def network(self):
        return self.scenario.network

    @property
    def flows(self):
        return list(self.scenario.flows)

    def options(self, args) -> AnalysisOptions:
        """File-embedded options (if any) with CLI flags layered on."""
        from dataclasses import replace

        base = (
            self.scenario.options if self.has_analysis else AnalysisOptions()
        )
        return replace(
            base,
            strict_paper=base.strict_paper or getattr(args, "strict", False),
            use_jitter=base.use_jitter
            and not getattr(args, "no_jitter", False),
        )

    def sim_config(self, args, *, default_duration: float) -> SimConfig:
        """File-embedded sim config (if any) with CLI flags layered on."""
        from dataclasses import replace

        base = self.scenario.sim if self.has_sim else SimConfig()
        duration = getattr(args, "duration", None)
        if duration is None:
            duration = base.duration if self.has_sim else default_duration
        mode = getattr(args, "mode", None) or base.switch_mode
        return replace(base, duration=duration, switch_mode=mode)


def cmd_analyze(args) -> int:
    loaded = _CliScenario(args.scenario)
    network, flows = loaded.network, loaded.flows
    result = holistic_analysis(network, flows, loaded.options(args))
    table = Table(
        ["flow", "frame", "bound", "deadline", "slack", "ok"],
        title=f"holistic analysis of {args.scenario} "
        f"(converged={result.converged}, {result.iterations} iteration(s))",
    )
    for name in sorted(result.flow_results):
        for fr in result.result(name).frames:
            table.add_row(
                [
                    name,
                    fr.frame,
                    fmt_duration(fr.response),
                    fmt_duration(fr.deadline),
                    fmt_duration(fr.slack) if math.isfinite(fr.slack) else "-inf",
                    fr.schedulable,
                ]
            )
    print(table.render())
    verdict = "SCHEDULABLE" if result.schedulable else "NOT SCHEDULABLE"
    print(f"verdict: {verdict}")
    return 0 if result.schedulable else 1


def cmd_simulate(args) -> int:
    loaded = _CliScenario(args.scenario)
    network, flows = loaded.network, loaded.flows
    config = loaded.sim_config(args, default_duration=2.0)
    trace = simulate(network, flows, config=config)
    table = Table(
        ["flow", "packets", "worst response", "mean response"],
        title=(
            f"simulation of {args.scenario} "
            f"({config.duration:g}s, {config.switch_mode} mode, "
            f"{trace.events_processed} events)"
        ),
    )
    for name in trace.flows():
        table.add_row(
            [
                name,
                trace.count_completed(name),
                fmt_duration(trace.worst_response(name)),
                fmt_duration(trace.mean_response(name)),
            ]
        )
    print(table.render())
    incomplete = trace.count_incomplete()
    if incomplete:
        print(f"warning: {incomplete} packet(s) still in flight at the horizon")
    deadlines = {f.name: f.spec.deadlines for f in flows}
    misses = trace.deadline_misses(deadlines)
    print(f"deadline misses observed: {misses}")
    return 0 if misses == 0 else 1


def cmd_validate(args) -> int:
    from dataclasses import replace

    loaded = _CliScenario(args.scenario)
    network, flows = loaded.network, loaded.flows
    result = holistic_analysis(network, flows, loaded.options(args))
    if not result.converged:
        print("analysis did not converge; nothing to validate")
        return 1
    table = Table(
        ["flow", "frame", "bound", "sim worst", "tightness", "sound"],
        title=f"bound validation of {args.scenario}",
    )
    base_config = loaded.sim_config(args, default_duration=2.0)
    violations = 0
    for mode in ("event", "rotation"):
        trace = simulate(
            network,
            flows,
            config=replace(base_config, switch_mode=mode),
        )
        for f in flows:
            for k in range(f.spec.n_frames):
                observed = trace.worst_response(f.name, k)
                if observed == -math.inf:
                    continue
                bound = result.result(f.name).frame(k).response
                sound = observed <= bound + 1e-9
                if not sound:
                    violations += 1
                table.add_row(
                    [
                        f"{f.name} ({mode})",
                        k,
                        fmt_duration(bound),
                        fmt_duration(observed),
                        f"{observed / bound:.3f}" if bound > 0 else "n/a",
                        sound,
                    ]
                )
    print(table.render())
    print(f"violations: {violations}")
    return 0 if violations == 0 else 1


def _report_store(args) -> int:
    """Telemetry-store half of ``report``: rollups and label diffs."""
    from repro.telemetry.report import (
        DEFAULT_THRESHOLD,
        aggregate,
        diff,
        render_diff,
        render_rollup,
    )
    from repro.telemetry.store import StoreError, labels, load_runs

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )

    def rollup(label: str):
        records = load_runs(args.store, label=label)
        if not records:
            known = ", ".join(labels(args.store)) or "<store is empty>"
            raise SystemExit(
                f"no runs labelled {label!r} in {args.store} "
                f"(known labels: {known})"
            )
        return aggregate(label, records)

    try:
        if args.diff:
            base_label, cand_label = args.diff
            result = diff(
                rollup(base_label), rollup(cand_label), threshold=threshold
            )
            print(render_diff(result))
            return 0 if result.ok else 1
        if args.label:
            print(render_rollup(rollup(args.label)))
            return 0
        # No label given: list what the store holds.
        table = Table(
            ["label", "runs"], title=f"telemetry store {args.store}"
        )
        counts: dict[str, int] = {}
        for record in load_runs(args.store):
            counts[record.label] = counts.get(record.label, 0) + 1
        for label in labels(args.store):
            table.add_row([label, counts[label]])
        print(table.render())
        return 0
    except StoreError as exc:
        raise SystemExit(str(exc))


def cmd_report(args) -> int:
    if args.store is None:
        from repro.telemetry.store import DEFAULT_STORE

        args.store = DEFAULT_STORE
    if args.diff or args.label or not args.scenario:
        if not args.scenario:
            from pathlib import Path

            if not (args.diff or args.label) and not Path(args.store).exists():
                raise SystemExit(
                    "report needs a scenario file (utilisation report) or "
                    "a telemetry store with --label/--diff "
                    f"(no {args.store} found)"
                )
        return _report_store(args)
    loaded = _CliScenario(args.scenario)
    network, flows = loaded.network, loaded.flows
    ctx = AnalysisContext(network, flows, loaded.options(args))
    report = network_convergence_report(ctx)
    table = Table(
        ["resource", "utilisation", "convergent"],
        title=f"resource utilisation of {args.scenario}",
    )
    for entry in sorted(report.entries, key=lambda e: -e.utilization):
        table.add_row(
            [
                "/".join(str(p) for p in entry.resource),
                f"{entry.utilization:.4f}",
                entry.convergent,
            ]
        )
    print(table.render())
    bottleneck = report.bottleneck()
    if bottleneck is not None:
        print(
            f"bottleneck: {'/'.join(str(p) for p in bottleneck.resource)} "
            f"at {bottleneck.utilization:.4f}"
        )
    return 0 if report.all_convergent else 1


def cmd_plan(args) -> int:
    loaded = _CliScenario(args.scenario)
    network, flows = loaded.network, loaded.flows
    scale = minimum_link_speed_scale(
        network, flows, options=loaded.options(args), tolerance=args.tolerance
    )
    if scale is None:
        print(
            "no link-speed scaling makes this flow set schedulable "
            "(a non-transmission stage or the source jitter already "
            "exceeds a deadline)"
        )
        return 1
    print(
        f"minimum uniform link-speed scale for schedulability: {scale:.4f}"
    )
    table = Table(["link", "current speed", "required speed"])
    for link in network.links():
        table.add_row(
            [
                f"{link.src}->{link.dst}",
                fmt_rate(link.speed_bps),
                fmt_rate(link.speed_bps * scale),
            ]
        )
    print(table.render())
    return 0


# ----------------------------------------------------------------------
# Campaigns (repro.scenario)
# ----------------------------------------------------------------------
def _parse_scalar(token: str) -> Any:
    """int | float | bool | str, in that order of preference."""
    low = token.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def _parse_axis(text: str) -> tuple[str, Any]:
    """``key=v1,v2,...`` or ``key=lo..hi`` (inclusive int range)."""
    if "=" not in text:
        raise SystemExit(f"--grid/--param expects key=value, got {text!r}")
    key, _, raw = text.partition("=")
    values: list[Any] = []
    for token in raw.split(","):
        if not token:
            raise SystemExit(f"--grid/--param {text!r} has an empty value")
        if ".." in token and not token.startswith("."):
            lo, _, hi = token.partition("..")
            try:
                lo_i, hi_i = int(lo), int(hi)
            except ValueError:
                values.append(_parse_scalar(token))
                continue
            if hi_i < lo_i:
                raise SystemExit(
                    f"--grid/--param range {token!r} is empty (lo > hi)"
                )
            values.extend(range(lo_i, hi_i + 1))
            continue
        values.append(_parse_scalar(token))
    if not values:
        raise SystemExit(f"--grid/--param {text!r} has no values")
    return key.strip(), values if len(values) > 1 else values[0]


def _campaign_ok(action: str, payload: dict) -> bool:
    if action == "analyze":
        return bool(payload.get("schedulable"))
    if action == "simulate":
        return payload.get("deadline_misses") == 0
    if action == "validate":
        return bool(payload.get("converged")) and all(
            r["sim_worst"] <= r["bound"] + 1e-12 for r in payload["rows"]
        )
    if action == "admit":
        return payload.get("accepted") == payload.get("offered")
    return True


def _campaign_detail(action: str, payload: dict) -> str:
    if action == "analyze":
        worst = max(
            (f["worst_response"] for f in payload["flows"].values()),
            default=math.nan,
        )
        return (
            f"converged={payload['converged']}, "
            f"worst={fmt_duration(worst)}"
        )
    if action == "simulate":
        return (
            f"{payload['deadline_misses']} misses, "
            f"{payload['events']} events"
        )
    if action == "validate":
        ratios = [
            r["sim_worst"] / r["bound"]
            for r in payload["rows"]
            if r["bound"] > 0
        ]
        worst = max(ratios) if ratios else math.nan
        return (
            f"{len(payload['rows'])} comparisons, "
            f"max sim/bound={worst:.3f}"
        )
    if action == "admit":
        return f"{payload['accepted']}/{payload['offered']} admitted"
    return ""


def _record_campaign_run(args, units, actions, results, digest) -> None:
    """Append one labelled RunRecord for this campaign to the store."""
    from datetime import datetime, timezone

    from repro import telemetry as _telemetry
    from repro.telemetry.store import RunRecord, append_run, git_revision

    reg = _telemetry.REGISTRY
    snapshot = reg.snapshot() if reg is not None else None
    ok_rows = sum(
        1 for row in results if _campaign_ok(row.action, row.payload)
    )
    metrics = {
        "campaign.scenarios": float(len(units)),
        "campaign.rows": float(len(results)),
        "campaign.ok_rows": float(ok_rows),
        "campaign.elapsed_s": sum(row.elapsed_s for row in results),
    }
    scenario = args.family or ",".join(args.scenarios or []) or None
    record = RunRecord(
        label=args.label,
        kind="campaign",
        scenario=scenario,
        git=git_revision(),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        metrics=metrics,
        telemetry=snapshot,
        meta={
            "actions": list(actions),
            "jobs": args.jobs,
            "digest": digest,
        },
    )
    append_run(args.store, record)
    log.info(
        "recorded run %r (%d row(s)) to %s", args.label, len(results),
        args.store,
    )


def cmd_campaign(args) -> int:
    from repro import telemetry as _telemetry
    from repro.scenario import (
        CampaignRunner,
        campaign_digest,
        load_scenario_file,
        scenario_grid,
    )

    if args.label and _telemetry.REGISTRY is None:
        # A labelled run is a measured run: collect telemetry for the
        # stored record (workers inherit per-action capture semantics).
        _telemetry.enable()
        log.debug("telemetry enabled for labelled campaign %r", args.label)

    actions = tuple(a.strip() for a in args.actions.split(",") if a.strip())
    if args.family and args.scenarios:
        raise SystemExit(
            "campaign takes scenario files OR --family, not both "
            "(run two campaigns instead)"
        )
    if args.family:
        axes = dict(_parse_axis(g) for g in args.grid or [])
        units: list = scenario_grid(args.family, **axes)
    elif args.scenarios:
        units = [load_scenario_file(p) for p in args.scenarios]
    else:
        raise SystemExit(
            "campaign needs scenario files or --family (with --grid axes)"
        )
    runner = CampaignRunner(jobs=args.jobs, actions=actions)
    results = runner.run(units)

    columns = ["scenario", "action", "ok", "detail"]
    if args.timing:
        columns.append("time (s)")
    table = Table(
        columns,
        title=(
            f"campaign: {len(units)} scenario(s) x {len(actions)} "
            f"action(s), jobs={args.jobs}"
        ),
    )
    all_ok = True
    for row in results:
        ok = _campaign_ok(row.action, row.payload)
        all_ok = all_ok and ok
        cells = [
            row.scenario,
            row.action,
            ok,
            _campaign_detail(row.action, row.payload),
        ]
        if args.timing:
            cells.append(f"{row.elapsed_s:.3f}")
        table.add_row(cells)
    print(table.render())
    digest = campaign_digest(results)
    print(f"campaign digest: {digest}")
    if args.label:
        _record_campaign_run(args, units, actions, results, digest)
    return 0 if all_ok else 1


def cmd_generate(args) -> int:
    from repro.scenario import (
        REGISTRY,
        save_scenario_file,
        scenario_to_dict,
    )

    if args.list:
        table = Table(["family", "summary"], title="scenario families")
        for name in REGISTRY.names():
            doc = (REGISTRY.get(name).__doc__ or "").strip()
            table.add_row([name, doc.splitlines()[0] if doc else ""])
        print(table.render())
        return 0
    if not args.family:
        raise SystemExit("generate needs --family (or --list)")
    params = dict(_parse_axis(p) for p in args.param or [])
    for key, value in params.items():
        if isinstance(value, list):
            raise SystemExit(
                f"generate takes one value per --param (got {key}={value}); "
                "use 'campaign --grid' for sweeps"
            )
    scenario = REGISTRY.build(args.family, **params)
    if args.output:
        save_scenario_file(args.output, scenario)
        print(f"wrote {scenario.describe()} to {args.output}")
    else:
        import json

        print(json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Serving (repro.service)
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    import os

    from repro import telemetry as _telemetry
    from repro.service import (
        FaultError,
        FaultPlan,
        Request,
        ShardedAdmissionService,
        load_service_state,
        run_server,
    )
    from repro.telemetry import tracing as _tracing

    try:
        fault_plan = FaultPlan.parse(
            args.faults or os.environ.get("REPRO_FAULTS")
        )
    except FaultError as exc:
        raise SystemExit(f"--faults: {exc}")
    if (
        fault_plan is not None
        and fault_plan.worker_faults()
        and not args.workers
    ):
        raise SystemExit(
            "worker faults (kill/hang/slow_batch) need --workers"
        )
    if args.replicas and not args.workers:
        raise SystemExit("--replicas needs --workers (standbys are worker "
                         "processes)")
    if args.replicas and args.no_supervise:
        raise SystemExit("--replicas needs supervision (drop --no-supervise)")
    if (
        fault_plan is not None
        and fault_plan.replication_faults()
        and not args.replicas
    ):
        raise SystemExit(
            "replication faults (kill_standby/drop_journal/"
            "kill:during=promotion) need --replicas 1"
        )
    if (args.telemetry or args.trace) and _telemetry.REGISTRY is None:
        # Enable before the service spawns shard workers so they fork
        # with collection on and answer the ``metrics`` verb.
        _telemetry.enable()
        log.debug("telemetry collection enabled")
    if args.trace and _tracing.TRACER is None:
        # Likewise before worker spawn: shard workers check the parent's
        # tracer at fork time to install their own per-process rings.
        _tracing.enable_tracing(proc="server")
        log.debug("request tracing enabled")
    flight_dir = args.flight_dir or os.environ.get("REPRO_FLIGHT_DIR")
    if args.scenario and args.restore:
        raise SystemExit(
            "serve takes a scenario file OR --restore, not both"
        )
    if args.workers and args.no_workers:
        raise SystemExit("--workers and --no-workers are mutually exclusive")
    if args.restore and args.shards != 1:
        raise SystemExit(
            "--shards has no effect with --restore "
            "(the shard count comes from the snapshot)"
        )
    if args.restore and args.admit_base:
        raise SystemExit(
            "--admit-base has no effect with --restore "
            "(the admitted set comes from the snapshot)"
        )
    if not args.scenario and not args.restore:
        raise SystemExit(
            "serve needs a scenario file (topology + options) or "
            "--restore with a service-state snapshot"
        )
    resilience = dict(
        supervise=not args.no_supervise,
        max_restarts=args.max_restarts,
        journal_limit=args.journal_limit,
        fault_plan=fault_plan,
        flight_dir=flight_dir,
    )
    if args.replicas:
        # Only pass when explicitly requested: a restore otherwise keeps
        # the snapshot's own replication knob.
        resilience["replicas"] = args.replicas
    if args.restore:
        # Tri-state: --workers forces processes, --no-workers forces
        # inline, neither keeps the snapshot's backend choice.
        workers = (
            True if args.workers else False if args.no_workers else None
        )
        try:
            service = load_service_state(
                args.restore, workers=workers, **resilience
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        log.info(
            "restored %d admitted flow(s) across %d shard(s) from %s",
            service.stats()["admitted"], service.n_shards, args.restore,
        )
    else:
        loaded = _CliScenario(args.scenario)
        service = ShardedAdmissionService(
            loaded.network,
            n_shards=args.shards,
            options=loaded.scenario.options,
            workers=args.workers,
            **resilience,
        )
        if args.admit_base and loaded.flows:
            payloads = service.process_batch(
                [Request(op="admit", flow=f) for f in loaded.flows]
            )
            ok = sum(1 for p in payloads if p.get("accepted"))
            log.info("pre-admitted %d/%d base flow(s)", ok, len(payloads))
    log.info(
        "admission service: %d shard(s), workers=%s, supervise=%s, "
        "replicas=%d",
        service.n_shards, service.workers, service.supervise,
        service.replicas,
    )
    if fault_plan is not None:
        log.info(
            "fault injection active: %d fault(s), seed=%d",
            len(fault_plan.faults), fault_plan.seed,
        )
    # run_server owns the shutdown: it closes the service on exit.
    run_server(
        service,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        snapshot_dir=args.snapshot_dir,
        max_queue=args.max_queue,
        fault_plan=fault_plan,
    )
    return 0


def cmd_replay(args) -> int:
    from repro import telemetry as _telemetry
    from repro.scenario import REGISTRY
    from repro.service import (
        ShardedAdmissionService,
        load_trace,
        replay_serial,
        replay_service,
        replay_tcp,
        save_trace,
        trace_from_scenario,
    )

    if args.metrics_out and not args.connect and _telemetry.REGISTRY is None:
        # Local replay: collection must be on before the service forks
        # its shard workers, or there is nothing to dump.
        _telemetry.enable()
        log.debug("telemetry collection enabled for --metrics-out")
    if args.traced and not args.connect:
        # Local replay: the replay driver mints trace ids only when a
        # tracer is installed, and workers check it at fork time.
        from repro.telemetry import tracing as _tracing

        if _tracing.TRACER is None:
            _tracing.enable_tracing(proc="replay")
        log.debug("request tracing enabled for local replay")

    scenario = None
    if args.scenario and args.family:
        raise SystemExit("replay takes --scenario OR --family, not both")
    if args.scenario:
        scenario = _CliScenario(args.scenario).scenario
    elif args.family:
        params = dict(_parse_axis(p) for p in args.param or [])
        for key, value in params.items():
            if isinstance(value, list):
                raise SystemExit(
                    f"replay takes one value per --param (got {key}={value})"
                )
        scenario = REGISTRY.build(args.family, **params)

    if args.from_trace:
        trace = load_trace(args.from_trace)
    elif scenario is not None:
        trace = trace_from_scenario(
            scenario,
            n_requests=args.requests,
            arrival=args.arrival,
            rate=args.rate,
            burst_size=args.burst_size,
            burst_gap=args.burst_gap,
            hold=args.hold,
            seed=args.seed,
        )
    else:
        raise SystemExit(
            "replay needs a workload: --family/--scenario or --from-trace"
        )
    if args.trace_out:
        save_trace(args.trace_out, trace)
        log.info(
            "wrote %d-request log to %s", trace.n_requests, args.trace_out
        )

    metrics_doc = None
    if args.connect:
        if args.shards != 1 or args.workers:
            raise SystemExit(
                "--shards/--workers configure the local service and have "
                "no effect with --connect (the live server's configuration "
                "applies)"
            )
        host, port = _parse_connect(args.connect)
        retry = None
        if args.retries > 0:
            from repro.service import RetryPolicy

            retry = RetryPolicy(
                attempts=args.retries,
                base_s=args.retry_base,
                seed=args.seed,
            )
        summary = replay_tcp(
            host,
            port,
            trace,
            window=args.batch,
            retry=retry,
            request_timeout=args.timeout,
            trace_requests=args.traced,
        )
        if args.metrics_out:
            from repro.service.replay import fetch_metrics_tcp

            metrics_doc = fetch_metrics_tcp(host, port)
        target = f"server {args.connect}"
    else:
        if args.retries or args.timeout:
            raise SystemExit(
                "--retries/--timeout are wire-level client options and "
                "need --connect (a local in-process replay cannot lose "
                "responses)"
            )
        if scenario is None:
            raise SystemExit(
                "local replay needs --family/--scenario for the topology "
                "(or use --connect to drive a live server)"
            )
        service = ShardedAdmissionService(
            scenario.network,
            n_shards=args.shards,
            options=scenario.options,
            workers=args.workers,
        )
        try:
            summary = replay_service(service, trace, batch=args.batch)
            if args.metrics_out:
                metrics_doc = service.metrics()
        finally:
            service.close()
        target = f"local service ({args.shards} shard(s))"

    if args.metrics_out:
        import json as _json

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            _json.dump(metrics_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("wrote telemetry snapshots to %s", args.metrics_out)

    table = Table(["metric", "value"], title=f"replay of {trace.name} -> {target}")
    table.add_row(["requests", summary.n_requests])
    table.add_row(["offered", summary.offered])
    table.add_row(["accepted", summary.accepted])
    table.add_row(["rejected", summary.rejected])
    table.add_row(["released", summary.released])
    table.add_row(["errors", summary.errors])
    if summary.retries or args.retries:
        table.add_row(["retries", summary.retries])
    table.add_row(["accept rate", f"{summary.accept_rate:.3f}"])
    table.add_row(["throughput", f"{summary.requests_per_s:.1f} req/s"])
    print(table.render())

    if args.check_serial:
        if scenario is None:
            raise SystemExit("--check-serial needs --family/--scenario")
        serial = replay_serial(scenario.network, trace, scenario.options)
        if serial.admit_decisions == summary.admit_decisions:
            print(
                f"serial parity: OK ({summary.offered} decisions identical "
                "to the serial controller)"
            )
        else:
            diverged = sum(
                1
                for a, b in zip(serial.admit_decisions, summary.admit_decisions)
                if a != b
            )
            print(
                f"serial parity: MISMATCH ({diverged} of "
                f"{len(serial.admit_decisions)} decisions differ)"
            )
            return 1
    return 0


def _parse_connect(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` target (SystemExit on malformed input)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect expects HOST:PORT, got {text!r}")
    return host, int(port)


def _parse_shard_map(text: str) -> dict[str, int]:
    """Parse a ``sw0=0,sw1=1`` switch → shard assignment string."""
    out: dict[str, int] = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        name, eq, sid = pair.partition("=")
        name, sid = name.strip(), sid.strip()
        if not eq or not name or not sid.lstrip("-").isdigit():
            raise SystemExit(
                f"--map expects SWITCH=SHARD[,SWITCH=SHARD...], got {pair!r}"
            )
        out[name] = int(sid)
    if not out:
        raise SystemExit("--map is empty")
    return out


def cmd_rebalance(args) -> int:
    from repro.service.replay import fetch_health_tcp, rebalance_tcp

    if not args.map and args.shards is None:
        raise SystemExit("rebalance needs --map and/or --shards")
    host, port = _parse_connect(args.connect)
    shard_map = _parse_shard_map(args.map) if args.map else None
    try:
        out = rebalance_tcp(
            host,
            port,
            shard_map,
            n_shards=args.shards,
            connect_timeout=args.timeout,
        )
    except (OSError, RuntimeError, ConnectionError) as exc:
        raise SystemExit(f"rebalance: {exc}")
    print(
        f"rebalanced to {out['n_shards']} shard(s): "
        f"{out['moved_flows']} flow(s) moved, "
        f"{out['admitted']} admitted"
    )
    if args.verbose:
        for switch, sid in sorted(out.get("switch_shards", {}).items()):
            print(f"  {switch} -> shard {sid}")
        health = fetch_health_tcp(host, port)
        print(
            f"health: {health['status']}, failovers={health['failovers']}, "
            f"cold_restores={health['cold_restores']}"
        )
    return 0


def cmd_trace_export(args) -> int:
    import json as _json

    from repro.telemetry import tracing as _tracing

    if bool(args.connect) == bool(args.from_file):
        raise SystemExit(
            "trace-export needs --connect HOST:PORT or --from FILE "
            "(exactly one)"
        )
    if args.connect:
        from repro.service import fetch_metrics_tcp

        host, port = _parse_connect(args.connect)
        doc = fetch_metrics_tcp(host, port)
        source = f"server {args.connect}"
    else:
        with open(args.from_file, encoding="utf-8") as fh:
            doc = _json.load(fh)
        source = args.from_file
    spans = doc.get("trace_spans")
    if not isinstance(spans, list) or not spans:
        raise SystemExit(
            f"no trace spans in {source} — was the server started with "
            "--trace (and traced requests sent, e.g. 'replay --traced')?"
        )
    chrome = _tracing.to_chrome_trace(spans)
    _tracing.validate_chrome_trace(chrome)
    with open(args.output, "w", encoding="utf-8") as fh:
        _json.dump(chrome, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tracks = {
        (ev.get("pid"), ev.get("tid"))
        for ev in chrome["traceEvents"]
        if ev.get("ph") == "X"
    }
    print(
        f"wrote {len(spans)} span(s) on {len(tracks)} track(s) from "
        f"{source} to {args.output} (open in Perfetto or chrome://tracing)"
    )
    return 0


def _watch_record(
    label: str,
    *,
    stats: dict | None,
    metrics: dict | None,
    tick: int,
    scenario: str | None = None,
):
    """Build one ``watch`` RunRecord from polled stats/metrics.

    Pure: a single immutable record from one poll's documents, so the
    subsequent :func:`append_run` is the only write — a watch tick can
    never leave a torn record behind a crash mid-poll.  Only scalar
    stats become metrics (``service.*``); the server's merged telemetry
    snapshot rides along verbatim for ``report --label`` rollups.
    """
    from datetime import datetime, timezone

    from repro.telemetry.store import RunRecord, git_revision

    doc = {
        f"service.{key}": float(value)
        for key, value in (stats or {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    doc["watch.tick"] = float(tick)
    telemetry = (metrics or {}).get("merged")
    return RunRecord(
        label=label,
        kind="watch",
        scenario=scenario,
        git=git_revision(),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        metrics=doc,
        telemetry=telemetry,
        meta={"tick": tick},
    )


def _watch_tick_connect(args, tick: int):
    from repro.service import fetch_metrics_tcp, fetch_stats_tcp

    host, port = _parse_connect(args.connect)
    stats = fetch_stats_tcp(host, port)
    metrics = fetch_metrics_tcp(host, port)
    return _watch_record(
        args.label,
        stats=stats,
        metrics=metrics,
        tick=tick,
        scenario=args.connect,
    )


def _watch_tick_campaign(args, tick: int):
    """Re-run a registered family grid, telemetry captured per tick."""
    from datetime import datetime, timezone

    from repro import telemetry as _telemetry
    from repro.scenario import CampaignRunner, campaign_digest, scenario_grid
    from repro.telemetry.store import RunRecord, git_revision

    actions = tuple(a.strip() for a in args.actions.split(",") if a.strip())
    axes = dict(_parse_axis(g) for g in args.grid or [])
    units = scenario_grid(args.campaign, **axes)
    with _telemetry.capture() as reg:
        runner = CampaignRunner(jobs=args.jobs, actions=actions)
        results = runner.run(units)
    ok_rows = sum(1 for row in results if _campaign_ok(row.action, row.payload))
    metrics = {
        "campaign.scenarios": float(len(units)),
        "campaign.rows": float(len(results)),
        "campaign.ok_rows": float(ok_rows),
        "campaign.elapsed_s": sum(row.elapsed_s for row in results),
        "watch.tick": float(tick),
    }
    return RunRecord(
        label=args.label,
        kind="watch",
        scenario=args.campaign,
        git=git_revision(),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        metrics=metrics,
        telemetry=reg.snapshot(),
        meta={
            "actions": list(actions),
            "digest": campaign_digest(results),
            "tick": tick,
        },
    )


def cmd_watch(args) -> int:
    import time as _time

    from repro.telemetry.store import append_run

    if bool(args.connect) == bool(args.campaign):
        raise SystemExit(
            "watch needs --connect HOST:PORT or --campaign FAMILY "
            "(exactly one)"
        )
    if args.every <= 0:
        raise SystemExit("--every must be a positive interval in seconds")
    if args.count < 0:
        raise SystemExit("--count must be >= 0 (0 = poll until interrupted)")

    ticks = 0
    try:
        while True:
            if args.connect:
                record = _watch_tick_connect(args, ticks)
            else:
                record = _watch_tick_campaign(args, ticks)
            append_run(args.store, record)
            ticks += 1
            log.info(
                "watch tick %d recorded to %s under %r",
                ticks, args.store, args.label,
            )
            if args.count and ticks >= args.count:
                break
            _time.sleep(args.every)
    except KeyboardInterrupt:
        log.info("watch interrupted after %d tick(s)", ticks)
    print(
        f"watch: {ticks} tick(s) under label {args.label!r} in {args.store} "
        f"(roll up with 'report --label {args.label}')"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMF schedulability analysis for multihop software-"
        "switched Ethernet (Andersson, IPPS 2008)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level status logging",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress status logging (results still print)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("scenario", help="scenario JSON file (see repro.io)")
        p.add_argument(
            "--strict",
            action="store_true",
            help="use the paper's equations exactly as printed",
        )
        p.add_argument(
            "--no-jitter",
            action="store_true",
            help="ignore generalized jitter (ablation)",
        )

    p = sub.add_parser("analyze", help="compute end-to-end bounds")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("simulate", help="run the discrete-event simulator")
    p.add_argument("scenario")
    p.add_argument(
        "-d", "--duration", type=float, default=None,
        help="horizon in seconds (default: the file's sim block, else 2.0)",
    )
    p.add_argument(
        "--mode", choices=("event", "rotation"), default=None,
        help="switch execution model (default: the file's sim block, "
        "else event)",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("validate", help="check bounds against simulation")
    common(p)
    p.add_argument(
        "-d", "--duration", type=float, default=None,
        help="horizon in seconds (default: the file's sim block, else 2.0)",
    )
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "report",
        help="utilisation report (scenario file) or telemetry "
        "rollups/diffs (--label / --diff)",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        help="scenario JSON file for the utilisation report "
        "(omit to query the telemetry store)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="use the paper's equations exactly as printed",
    )
    p.add_argument(
        "--no-jitter",
        action="store_true",
        help="ignore generalized jitter (ablation)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="telemetry run store (default TELEMETRY_runs.jsonl)",
    )
    p.add_argument(
        "--label", help="roll up every stored run under this label"
    )
    p.add_argument(
        "--diff",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="compare two labels; exits non-zero on flagged regressions",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative change before a gating metric flags (default 0.05)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "plan", help="minimum link-speed scaling for schedulability"
    )
    common(p)
    p.add_argument("--tolerance", type=float, default=0.01)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "campaign",
        help="run scenario files or a parametric family grid in parallel",
    )
    p.add_argument(
        "scenarios", nargs="*", help="scenario JSON files (legacy or v1)"
    )
    p.add_argument(
        "--family", help="registered scenario family (see 'generate --list')"
    )
    p.add_argument(
        "--grid",
        action="append",
        metavar="KEY=V1,V2|LO..HI",
        help="family parameter axis; repeatable, swept values build the "
        "cartesian grid (e.g. --grid seed=0..31 --grid utilization=0.3,0.6)",
    )
    p.add_argument(
        "--actions",
        default="analyze",
        help="comma-separated: analyze,simulate,simulate-batched,"
        "validate,admit (default analyze; simulate-batched reuses one "
        "built simulator topology across same-network grid points)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical for any value)",
    )
    p.add_argument(
        "--timing",
        action="store_true",
        help="include per-action wall time (varies run to run)",
    )
    p.add_argument(
        "--label",
        help="record this run (with its telemetry snapshot) to the "
        "run store under LABEL; enables telemetry collection",
    )
    p.add_argument(
        "--store",
        default="TELEMETRY_runs.jsonl",
        help="telemetry run store to append to (with --label)",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "generate", help="build a scenario from a registered family"
    )
    p.add_argument("--family", help="scenario family name")
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="family parameter; repeatable",
    )
    p.add_argument("-o", "--output", help="write the scenario JSON here")
    p.add_argument(
        "--list", action="store_true", help="list registered families"
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "serve", help="run the sharded admission service over TCP"
    )
    p.add_argument(
        "scenario",
        nargs="?",
        help="scenario JSON supplying topology + analysis options",
    )
    p.add_argument(
        "--restore", help="boot from a service-state snapshot instead"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7420, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--shards", type=int, default=1, help="link-disjoint shard count"
    )
    p.add_argument(
        "--workers",
        action="store_true",
        help="back every shard with its own worker process",
    )
    p.add_argument(
        "--no-workers",
        action="store_true",
        help="with --restore: force inline shards even if the snapshot "
        "was taken from a worker-backed service",
    )
    p.add_argument(
        "--admit-base",
        action="store_true",
        help="offer the scenario's base flows before serving",
    )
    p.add_argument(
        "--batch-max", type=int, default=64, help="micro-batch size cap"
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        help="coalescing pause in seconds before dispatching a batch",
    )
    p.add_argument(
        "--snapshot-dir",
        help="directory client snapshot requests may write into "
        "(default: file snapshots over the wire are refused)",
    )
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="collect telemetry; clients read it via the 'metrics' verb "
        "and versioned 'stats' responses",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="record per-request spans (server + shard workers) into "
        "bounded ring buffers; export with 'trace-export'; implies "
        "--telemetry",
    )
    p.add_argument(
        "--flight-dir",
        metavar="DIR",
        help="write flight-recorder post-mortems (recent spans + registry "
        "+ journal position) here on worker death or degradation "
        "(falls back to the REPRO_FLIGHT_DIR environment variable)",
    )
    p.add_argument(
        "--faults",
        metavar="PLAN",
        help="deterministic fault plan, e.g. "
        "'kill:shard=1,at=40;drop_conn:at=120;seed=7' "
        "(falls back to the REPRO_FAULTS environment variable)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=0,
        choices=(0, 1),
        help="warm standby workers per shard (needs --workers): a dying "
        "primary is promoted over from the journal-fed standby instead "
        "of cold-restarted (default 0)",
    )
    p.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable worker supervision: a dead shard worker degrades "
        "permanently instead of being respawned and state-restored",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="supervisor restart budget per shard (default 5)",
    )
    p.add_argument(
        "--journal-limit",
        type=int,
        default=256,
        help="recovery-journal length that triggers compaction into a "
        "fresh baseline snapshot (default 256)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="shed requests with 'overloaded' + retry_after once the "
        "dispatch queue reaches this depth (0 = unbounded)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "rebalance",
        help="move a live server to a new shard layout without dropping "
        "admitted flows",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the live server to rebalance",
    )
    p.add_argument(
        "--map",
        metavar="SWITCH=SHARD,...",
        help="explicit switch -> shard assignment, e.g. 'sw0=0,sw1=1'",
    )
    p.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="target shard count (unpinned switches hash-assign)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="overall connect deadline in seconds (default 5)",
    )
    p.set_defaults(func=cmd_rebalance)

    p = sub.add_parser(
        "replay",
        help="drive the service (or a live server) with a request stream",
    )
    p.add_argument("--scenario", help="scenario JSON file as the workload")
    p.add_argument("--family", help="registered scenario family")
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="family parameter; repeatable",
    )
    p.add_argument(
        "--requests", type=int, default=200, help="trace length (default 200)"
    )
    p.add_argument(
        "--arrival",
        choices=("poisson", "burst", "recorded"),
        default="poisson",
    )
    p.add_argument("--rate", type=float, default=100.0, help="req/s (poisson)")
    p.add_argument("--burst-size", type=int, default=16)
    p.add_argument("--burst-gap", type=float, default=0.05)
    p.add_argument(
        "--hold",
        type=int,
        default=8,
        help="live flows held before the oldest is released",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--shards", type=int, default=1, help="shards of the local service"
    )
    p.add_argument(
        "--workers", action="store_true", help="process-backed shards"
    )
    p.add_argument(
        "--batch", type=int, default=16, help="micro-batch / pipeline window"
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="drive a live server instead of an in-process service",
    )
    p.add_argument(
        "--trace-out", help="also save the request log (JSON lines)"
    )
    p.add_argument(
        "--from-trace", help="replay a saved request log instead of generating"
    )
    p.add_argument(
        "--check-serial",
        action="store_true",
        help="verify decisions against a serial AdmissionController",
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the service's telemetry snapshots to FILE as JSON "
        "(local replays enable collection; --connect asks the server)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="with --connect: retry budget per pipeline window — "
        "reconnect on connection loss, re-send retryable errors, "
        "idempotency keys on admits/releases (0 = fail fast)",
    )
    p.add_argument(
        "--retry-base",
        type=float,
        default=0.05,
        help="base backoff delay in seconds (exponential, "
        "deterministically jittered by --seed)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        help="with --connect: per-response read timeout in seconds "
        "(a stall counts as a retryable connection loss)",
    )
    p.add_argument(
        "--traced",
        action="store_true",
        help="attach a trace id to every request so server/worker spans "
        "correlate per request (local replays install a tracer; "
        "--connect needs the server started with --trace)",
    )
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "trace-export",
        help="export recent spans as Chrome trace-event JSON (Perfetto)",
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="drain spans from a live server's 'metrics' verb",
    )
    p.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        help="read a saved metrics JSON dump (replay --metrics-out) "
        "instead of a live server",
    )
    p.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="Chrome trace JSON destination (default trace.json)",
    )
    p.set_defaults(func=cmd_trace_export)

    p = sub.add_parser(
        "watch",
        help="poll a live server (or re-run a scenario family) on an "
        "interval, appending labelled run records to the store",
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="poll this server's 'stats' + 'metrics' verbs each tick",
    )
    p.add_argument(
        "--campaign",
        metavar="FAMILY",
        help="scheduler mode: re-run this registered scenario family "
        "each tick (telemetry captured per tick)",
    )
    p.add_argument(
        "--grid",
        action="append",
        metavar="KEY=V1,V2|LO..HI",
        help="with --campaign: family parameter axis (repeatable)",
    )
    p.add_argument(
        "--actions",
        default="analyze",
        help="with --campaign: comma-separated actions (default analyze)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="with --campaign: worker processes per tick",
    )
    p.add_argument(
        "--every",
        type=float,
        default=10.0,
        help="seconds between ticks (default 10)",
    )
    p.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after this many ticks (default 0 = until interrupted)",
    )
    p.add_argument(
        "--label",
        required=True,
        help="store records under this label ('report --diff' gates "
        "drift between two labels)",
    )
    p.add_argument(
        "--store",
        default="TELEMETRY_runs.jsonl",
        help="telemetry run store to append to",
    )
    p.set_defaults(func=cmd_watch)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
