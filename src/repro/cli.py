"""Command-line interface: analyse / simulate / plan scenario files.

The operator workflow without writing Python::

    python -m repro.cli analyze scenario.json          # bounds + verdict
    python -m repro.cli analyze scenario.json --strict # as-printed eqs
    python -m repro.cli simulate scenario.json -d 5.0  # run the simulator
    python -m repro.cli validate scenario.json         # bounds vs sim
    python -m repro.cli report scenario.json           # utilisation report
    python -m repro.cli plan scenario.json --min-speed # capacity planning

Scenario files are the JSON documents of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.core.planning import minimum_link_speed_scale, scale_link_speeds
from repro.core.utilization import network_convergence_report
from repro.io import load_scenario
from repro.sim.simulator import SimConfig, simulate
from repro.util.tables import Table
from repro.util.units import fmt_duration, fmt_rate


def _options(args) -> AnalysisOptions:
    return AnalysisOptions(
        strict_paper=getattr(args, "strict", False),
        use_jitter=not getattr(args, "no_jitter", False),
    )


def cmd_analyze(args) -> int:
    network, flows = load_scenario(args.scenario)
    result = holistic_analysis(network, flows, _options(args))
    table = Table(
        ["flow", "frame", "bound", "deadline", "slack", "ok"],
        title=f"holistic analysis of {args.scenario} "
        f"(converged={result.converged}, {result.iterations} iteration(s))",
    )
    for name in sorted(result.flow_results):
        for fr in result.result(name).frames:
            table.add_row(
                [
                    name,
                    fr.frame,
                    fmt_duration(fr.response),
                    fmt_duration(fr.deadline),
                    fmt_duration(fr.slack) if math.isfinite(fr.slack) else "-inf",
                    fr.schedulable,
                ]
            )
    print(table.render())
    verdict = "SCHEDULABLE" if result.schedulable else "NOT SCHEDULABLE"
    print(f"verdict: {verdict}")
    return 0 if result.schedulable else 1


def cmd_simulate(args) -> int:
    network, flows = load_scenario(args.scenario)
    trace = simulate(
        network,
        flows,
        config=SimConfig(duration=args.duration, switch_mode=args.mode),
    )
    table = Table(
        ["flow", "packets", "worst response", "mean response"],
        title=(
            f"simulation of {args.scenario} "
            f"({args.duration:g}s, {args.mode} mode, "
            f"{trace.events_processed} events)"
        ),
    )
    for name in trace.flows():
        table.add_row(
            [
                name,
                trace.count_completed(name),
                fmt_duration(trace.worst_response(name)),
                fmt_duration(trace.mean_response(name)),
            ]
        )
    print(table.render())
    incomplete = trace.count_incomplete()
    if incomplete:
        print(f"warning: {incomplete} packet(s) still in flight at the horizon")
    deadlines = {f.name: f.spec.deadlines for f in flows}
    misses = trace.deadline_misses(deadlines)
    print(f"deadline misses observed: {misses}")
    return 0 if misses == 0 else 1


def cmd_validate(args) -> int:
    network, flows = load_scenario(args.scenario)
    result = holistic_analysis(network, flows, _options(args))
    if not result.converged:
        print("analysis did not converge; nothing to validate")
        return 1
    table = Table(
        ["flow", "frame", "bound", "sim worst", "tightness", "sound"],
        title=f"bound validation of {args.scenario}",
    )
    violations = 0
    for mode in ("event", "rotation"):
        trace = simulate(
            network,
            flows,
            config=SimConfig(duration=args.duration, switch_mode=mode),
        )
        for f in flows:
            for k in range(f.spec.n_frames):
                observed = trace.worst_response(f.name, k)
                if observed == -math.inf:
                    continue
                bound = result.result(f.name).frame(k).response
                sound = observed <= bound + 1e-9
                if not sound:
                    violations += 1
                table.add_row(
                    [
                        f"{f.name} ({mode})",
                        k,
                        fmt_duration(bound),
                        fmt_duration(observed),
                        f"{observed / bound:.3f}" if bound > 0 else "n/a",
                        sound,
                    ]
                )
    print(table.render())
    print(f"violations: {violations}")
    return 0 if violations == 0 else 1


def cmd_report(args) -> int:
    network, flows = load_scenario(args.scenario)
    ctx = AnalysisContext(network, flows, _options(args))
    report = network_convergence_report(ctx)
    table = Table(
        ["resource", "utilisation", "convergent"],
        title=f"resource utilisation of {args.scenario}",
    )
    for entry in sorted(report.entries, key=lambda e: -e.utilization):
        table.add_row(
            [
                "/".join(str(p) for p in entry.resource),
                f"{entry.utilization:.4f}",
                entry.convergent,
            ]
        )
    print(table.render())
    bottleneck = report.bottleneck()
    if bottleneck is not None:
        print(
            f"bottleneck: {'/'.join(str(p) for p in bottleneck.resource)} "
            f"at {bottleneck.utilization:.4f}"
        )
    return 0 if report.all_convergent else 1


def cmd_plan(args) -> int:
    network, flows = load_scenario(args.scenario)
    scale = minimum_link_speed_scale(
        network, flows, options=_options(args), tolerance=args.tolerance
    )
    if scale is None:
        print(
            "no link-speed scaling makes this flow set schedulable "
            "(a non-transmission stage or the source jitter already "
            "exceeds a deadline)"
        )
        return 1
    print(
        f"minimum uniform link-speed scale for schedulability: {scale:.4f}"
    )
    table = Table(["link", "current speed", "required speed"])
    for link in network.links():
        table.add_row(
            [
                f"{link.src}->{link.dst}",
                fmt_rate(link.speed_bps),
                fmt_rate(link.speed_bps * scale),
            ]
        )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMF schedulability analysis for multihop software-"
        "switched Ethernet (Andersson, IPPS 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("scenario", help="scenario JSON file (see repro.io)")
        p.add_argument(
            "--strict",
            action="store_true",
            help="use the paper's equations exactly as printed",
        )
        p.add_argument(
            "--no-jitter",
            action="store_true",
            help="ignore generalized jitter (ablation)",
        )

    p = sub.add_parser("analyze", help="compute end-to-end bounds")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("simulate", help="run the discrete-event simulator")
    p.add_argument("scenario")
    p.add_argument("-d", "--duration", type=float, default=2.0)
    p.add_argument(
        "--mode", choices=("event", "rotation"), default="event",
        help="switch execution model",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("validate", help="check bounds against simulation")
    common(p)
    p.add_argument("-d", "--duration", type=float, default=2.0)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("report", help="per-resource utilisation report")
    common(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "plan", help="minimum link-speed scaling for schedulability"
    )
    common(p)
    p.add_argument("--tolerance", type=float, default=0.01)
    p.set_defaults(func=cmd_plan)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
