"""Sporadic-model baselines: collapse GMF flows, then run holistic.

The classic holistic analysis (Tindell & Clark) understands only
sporadic streams — one frame type per flow.  A GMF flow can be made
sporadic in two safe-but-pessimistic ways; both are expressible as GMF
specs with ``n = 1``, so the paper's own machinery analyses them and
the comparison (experiment E5) isolates the traffic model's effect.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.context import AnalysisOptions
from repro.core.holistic import holistic_analysis
from repro.core.results import HolisticResult
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network


def sporadic_collapse(flow: Flow) -> Flow:
    """The standard safe sporadic abstraction of a GMF flow.

    Period = the smallest inter-frame separation; payload = the largest
    frame; deadline = the tightest frame deadline; jitter = the largest
    frame jitter.  Dominates the GMF flow (every GMF arrival sequence is
    legal for the sporadic spec), hence sound — and very pessimistic
    for bursty video where the big I-frame rarely repeats at the minimum
    separation.
    """
    spec = flow.spec
    collapsed = GmfSpec(
        min_separations=(min(spec.min_separations),),
        deadlines=(min(spec.deadlines),),
        jitters=(max(spec.jitters),),
        payload_bits=(max(spec.payload_bits),),
    )
    return flow.with_spec(collapsed)


def cycle_collapse(flow: Flow) -> Flow:
    """Model one whole GMF cycle as a single sporadic packet.

    Period = ``TSUM``; payload = the summed cycle payload; deadline =
    the tightest frame deadline.  Correct on long-run demand but turns
    the cycle into one burst, so per-packet transmission times explode;
    the other naive endpoint operators might try.
    """
    spec = flow.spec
    collapsed = GmfSpec(
        min_separations=(spec.tsum,),
        deadlines=(min(spec.deadlines),),
        jitters=(max(spec.jitters),),
        payload_bits=(sum(spec.payload_bits),),
    )
    return flow.with_spec(collapsed)


def sporadic_holistic_analysis(
    network: Network,
    flows: Sequence[Flow],
    options: AnalysisOptions | None = None,
    *,
    collapse: str = "sporadic",
) -> HolisticResult:
    """Holistic analysis after collapsing every flow to sporadic.

    ``collapse`` selects :func:`sporadic_collapse` (default) or
    :func:`cycle_collapse`.  The returned result's flow names match the
    input flows (the transformation preserves names/routes/priorities).
    """
    if collapse == "sporadic":
        transformed = [sporadic_collapse(f) for f in flows]
    elif collapse == "cycle":
        transformed = [cycle_collapse(f) for f in flows]
    else:
        raise ValueError(f"unknown collapse {collapse!r}")
    return holistic_analysis(network, transformed, options)
