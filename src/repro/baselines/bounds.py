"""Coarse utilisation-based admission bounds.

A trivial comparator for the acceptance experiments: admit a flow set
exactly when every resource's utilisation stays below a threshold.
This is what a provisioning-rule-of-thumb operator does ("keep links
under 70%"); it needs no response-time analysis but offers no deadline
guarantee — the experiments show where it over- and under-admits
relative to the paper's analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.context import AnalysisContext, AnalysisOptions
from repro.core.utilization import network_convergence_report
from repro.model.flow import Flow
from repro.model.network import Network


def demand_utilization_bound(
    network: Network,
    flows: Sequence[Flow],
    *,
    threshold: float = 1.0,
    options: AnalysisOptions | None = None,
) -> bool:
    """True when every resource's utilisation is below ``threshold``.

    With ``threshold = 1.0`` this is exactly the necessary convergence
    condition (Eqs. 20/34/35-style) — an *upper* bound on any analysis'
    acceptance; with e.g. ``0.7`` it mimics rule-of-thumb provisioning.
    """
    if not flows:
        return True
    ctx = AnalysisContext(network, flows, options)
    report = network_convergence_report(ctx)
    return report.max_utilization < threshold
