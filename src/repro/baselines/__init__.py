"""Baseline analyses the paper's GMF analysis is compared against.

Before this paper, multihop holistic analysis existed only for the
*sporadic* model (Tindell & Clark), so an operator had two ways to force
GMF traffic into it; both are implemented as *flow transformations* that
feed the same holistic machinery, so the comparison isolates exactly
the traffic model:

* :func:`sporadic_collapse` — period ``min_k T_i^k`` and payload
  ``max_k S_i^k``: safe but maximally pessimistic (every frame treated
  as a worst-case frame arriving at the highest rate);
* :func:`cycle_collapse` — period ``TSUM_i`` and payload
  ``sum_k S_i^k``: models the whole GMF cycle as one huge packet; safe
  on demand *rate* but with a bursty single packet (and a per-cycle
  deadline), included as the other naive endpoint.
"""

from repro.baselines.sporadic import (
    cycle_collapse,
    sporadic_collapse,
    sporadic_holistic_analysis,
)
from repro.baselines.bounds import demand_utilization_bound

__all__ = [
    "cycle_collapse",
    "demand_utilization_bound",
    "sporadic_collapse",
    "sporadic_holistic_analysis",
]
