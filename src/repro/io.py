"""Scenario (de)serialization: networks + flows as JSON documents.

A *scenario file* is what a network operator would actually keep in
version control: the topology, the switch parameters and the admitted
flows.  The format is plain JSON::

    {
      "network": {
        "nodes": [
          {"name": "h0", "kind": "endhost"},
          {"name": "sw", "kind": "switch",
           "c_route_us": 2.7, "c_send_us": 1.0, "n_processors": 1},
          {"name": "gw", "kind": "router"}
        ],
        "links": [
          {"src": "h0", "dst": "sw", "speed_bps": 1e8,
           "prop_delay": 0.0, "duplex": true}
        ]
      },
      "flows": [
        {"name": "video", "route": ["h0", "sw", "gw"], "priority": 5,
         "transport": "udp",
         "min_separations": [0.03, 0.03], "deadlines": [0.1, 0.1],
         "jitters": [0.0, 0.0], "payload_bits": [120000, 40000]}
      ]
    }

Times are seconds except the explicitly suffixed ``*_us`` switch costs.

Versioning: this module defines the *legacy* (version-0) document —
``network`` + ``flows`` only.  The scenario subsystem
(:mod:`repro.scenario.serialization`) writes versioned documents with a
``schema_version`` key that are a strict superset of this layout, so
:func:`load_scenario` accepts them too (reading just the network and
flows); loading a document from a *newer* schema than this build
understands fails loudly instead of silently dropping sections.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.model.flow import Flow, Transport
from repro.model.gmf import GmfSpec
from repro.model.network import Network, Node, NodeKind, SwitchConfig
from repro.model.routing import validate_route
from repro.util.units import us


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def network_to_dict(network: Network) -> dict[str, Any]:
    """JSON-ready dict of a network (duplex pairs are not re-merged)."""
    nodes = []
    for node in network.nodes():
        entry: dict[str, Any] = {"name": node.name, "kind": node.kind.value}
        if node.switch is not None:
            entry["c_route_us"] = node.switch.c_route / us(1)
            entry["c_send_us"] = node.switch.c_send / us(1)
            entry["n_processors"] = node.switch.n_processors
        nodes.append(entry)
    links = [
        {
            "src": l.src,
            "dst": l.dst,
            "speed_bps": l.speed_bps,
            "prop_delay": l.prop_delay,
        }
        for l in network.links()
    ]
    return {"nodes": nodes, "links": links}


def flow_to_dict(flow: Flow) -> dict[str, Any]:
    """JSON-ready dict of one flow."""
    out: dict[str, Any] = {
        "name": flow.name,
        "route": list(flow.route),
        "priority": flow.priority,
        "transport": flow.transport.value,
        "min_separations": list(flow.spec.min_separations),
        "deadlines": list(flow.spec.deadlines),
        "jitters": list(flow.spec.jitters),
        "payload_bits": list(flow.spec.payload_bits),
    }
    if flow.link_priorities:
        out["link_priorities"] = [
            {"src": a, "dst": b, "priority": p}
            for (a, b), p in sorted(flow.link_priorities.items())
        ]
    return out


def scenario_to_dict(network: Network, flows: Sequence[Flow]) -> dict[str, Any]:
    return {
        "network": network_to_dict(network),
        "flows": [flow_to_dict(f) for f in flows],
    }


def save_scenario(
    path: str | Path, network: Network, flows: Sequence[Flow]
) -> None:
    """Write a scenario JSON file (pretty-printed, stable ordering)."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(network, flows), indent=2, sort_keys=True)
        + "\n"
    )


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
#: Newest scenario-document schema this build can read (version 0 is
#: the legacy bare ``network``+``flows`` layout of this module; the
#: versioned layers are defined in :mod:`repro.scenario.serialization`).
MAX_SCHEMA_VERSION = 1


class ScenarioError(ValueError):
    """A scenario document is malformed."""


def network_from_dict(doc: dict[str, Any]) -> Network:
    net = Network()
    for entry in doc.get("nodes", []):
        name = _require(entry, "name", str)
        kind = _require(entry, "kind", str)
        if kind == "endhost":
            net.add_endhost(name)
        elif kind == "router":
            net.add_router(name)
        elif kind == "switch":
            net.add_switch(
                name,
                SwitchConfig(
                    c_route=us(float(entry.get("c_route_us", 2.7))),
                    c_send=us(float(entry.get("c_send_us", 1.0))),
                    n_processors=int(entry.get("n_processors", 1)),
                ),
            )
        else:
            raise ScenarioError(f"node {name!r}: unknown kind {kind!r}")
    for entry in doc.get("links", []):
        src = _require(entry, "src", str)
        dst = _require(entry, "dst", str)
        speed = float(_require(entry, "speed_bps", (int, float)))
        prop = float(entry.get("prop_delay", 0.0))
        if entry.get("duplex", False):
            net.add_duplex_link(src, dst, speed_bps=speed, prop_delay=prop)
        else:
            net.add_link(src, dst, speed_bps=speed, prop_delay=prop)
    return net


def flow_from_dict(doc: dict[str, Any]) -> Flow:
    spec = GmfSpec(
        min_separations=tuple(
            float(x) for x in _require(doc, "min_separations", list)
        ),
        deadlines=tuple(float(x) for x in _require(doc, "deadlines", list)),
        jitters=tuple(float(x) for x in _require(doc, "jitters", list)),
        payload_bits=tuple(int(x) for x in _require(doc, "payload_bits", list)),
    )
    link_priorities = {
        (e["src"], e["dst"]): int(e["priority"])
        for e in doc.get("link_priorities", [])
    }
    transport = Transport(doc.get("transport", "udp"))
    return Flow(
        name=_require(doc, "name", str),
        spec=spec,
        route=tuple(_require(doc, "route", list)),
        priority=int(doc.get("priority", 0)),
        link_priorities=link_priorities,
        transport=transport,
    )


def load_scenario(path: str | Path) -> tuple[Network, list[Flow]]:
    """Read and validate a scenario JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    version = doc.get("schema_version", 0)
    if not isinstance(version, int) or version < 0:
        raise ScenarioError(f"{path}: invalid schema_version {version!r}")
    if version > MAX_SCHEMA_VERSION:
        raise ScenarioError(
            f"{path}: schema_version {version} is newer than the "
            f"supported version {MAX_SCHEMA_VERSION}"
        )
    if "network" not in doc:
        raise ScenarioError(f"{path}: missing 'network' section")
    network = network_from_dict(doc["network"])
    flows = [flow_from_dict(f) for f in doc.get("flows", [])]
    for flow in flows:
        validate_route(network, flow.route)
    return network, flows


def _require(doc: dict, key: str, types) -> Any:
    if key not in doc:
        raise ScenarioError(f"missing required key {key!r} in {doc!r}")
    value = doc[key]
    if not isinstance(value, types):
        raise ScenarioError(
            f"key {key!r}: expected {types}, got {type(value).__name__}"
        )
    return value
