"""repro: GMF schedulability analysis on multihop software-switched Ethernet.

Reproduction of: Björn Andersson, *Schedulability Analysis of Generalized
Multiframe Traffic on Multihop-Networks Comprising Software-Implemented
Ethernet-Switches*, IPPS 2008 (HURRAY-TR-080201).

Public API tour
---------------
Model the network and the traffic::

    from repro import Network, Flow, GmfSpec

    net = Network()
    net.add_endhost("h0"); net.add_switch("sw"); net.add_endhost("h1")
    net.add_duplex_link("h0", "sw", speed_bps=100e6)
    net.add_duplex_link("sw", "h1", speed_bps=100e6)

    video = Flow(
        name="video",
        spec=GmfSpec(
            min_separations=(0.030,) * 3,
            deadlines=(0.100,) * 3,
            jitters=(0.001,) * 3,
            payload_bits=(120_000, 40_000, 40_000),
        ),
        route=("h0", "sw", "h1"),
        priority=5,
    )

Analyse::

    from repro import holistic_analysis
    result = holistic_analysis(net, [video])
    result.schedulable, result.response("video")

Validate against the discrete-event simulator::

    from repro.sim import simulate
    trace = simulate(net, [video], duration=5.0)
    trace.worst_response("video") <= result.response("video")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced tables/figures.
"""

from repro.model import (
    Flow,
    GmfSpec,
    Link,
    Network,
    Node,
    NodeKind,
    SwitchConfig,
    Transport,
    gmf_from_uniform,
    shortest_route,
    sporadic_spec,
    validate_route,
)
from repro.core import (
    AdmissionController,
    AdmissionDecision,
    AnalysisContext,
    AnalysisOptions,
    FlowResult,
    FrameResult,
    HolisticResult,
    StageKind,
    StageResult,
    analyze_flow,
    analyze_flow_frame,
    holistic_analysis,
)
from repro.core.planning import (
    max_admissible_scale,
    minimum_link_speed_scale,
    worst_slack_per_flow,
)
from repro.io import load_scenario, save_scenario

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisContext",
    "AnalysisOptions",
    "Flow",
    "FlowResult",
    "FrameResult",
    "GmfSpec",
    "HolisticResult",
    "Link",
    "Network",
    "Node",
    "NodeKind",
    "StageKind",
    "StageResult",
    "SwitchConfig",
    "Transport",
    "__version__",
    "analyze_flow",
    "analyze_flow_frame",
    "gmf_from_uniform",
    "holistic_analysis",
    "load_scenario",
    "max_admissible_scale",
    "minimum_link_speed_scale",
    "save_scenario",
    "shortest_route",
    "sporadic_spec",
    "validate_route",
    "worst_slack_per_flow",
]
