"""Aggregation, rollups and regression diffs over telemetry runs.

This is the reporting half of the telemetry layer: it turns the raw
run records of :mod:`repro.telemetry.store` into

* **derived KPIs** — per-subsystem numbers computed from a registry
  snapshot (fixed-point iterations per solve, cache hit rates,
  per-shard admit latency quantiles, simulator events/s, ...),
* **label rollups** — all runs under one label merged and summarised,
* **diffs** — KPI-by-KPI comparison of two labels with regression
  flags, the gate `repro.cli report --diff` (and CI) exits non-zero on.

Gating vs. informational metrics
--------------------------------
Deterministic KPIs — admission rate, iteration counts, cache hit
rates, event counts, deadline misses — gate: two runs of the same
workload must agree on them, so any drift beyond the threshold in the
*worse* direction is flagged as a regression.  Wall-clock KPIs —
req/s, latency quantiles, span times — vary run to run on shared
hardware; they are reported with deltas but never flagged, which keeps
the CI "identical runs diff clean" invariant meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry import Histogram, merge_snapshots
from repro.telemetry.store import RunRecord
from repro.util.tables import Table

#: Default relative-change threshold before a gating KPI flags.
DEFAULT_THRESHOLD = 0.05

#: Substrings marking a KPI as wall-clock derived (never gating).
_TIMING_MARKERS = ("_s.", "per_s", "_ms", "latency", "elapsed")

#: Substrings marking a gating KPI where *higher* is better.
_HIGHER_IS_BETTER = (
    "hit_rate",
    "accept_rate",
    "admission_rate",
    "warm_start",
    "accepted",
    "admitted",
    "cache_hits",
    "schedulable",
    "margin",
)


def classify(name: str) -> tuple[str, bool]:
    """``(direction, gating)`` for a KPI name.

    ``direction`` is ``"higher"`` or ``"lower"`` (which way is
    *better*); ``gating`` is whether a worse-direction change beyond
    the threshold counts as a regression.
    """
    if (
        name.startswith("span.")
        or name.endswith("_s")
        or any(marker in name for marker in _TIMING_MARKERS)
    ):
        direction = "higher" if "per_s" in name or "throughput" in name else "lower"
        return direction, False
    if any(token in name for token in _HIGHER_IS_BETTER):
        return "higher", True
    return "lower", True


# ----------------------------------------------------------------------
# Derived KPIs from a registry snapshot
# ----------------------------------------------------------------------
def _rate(counters: Mapping[str, float], hit: str, miss: str) -> float | None:
    hits = counters.get(hit, 0.0)
    total = hits + counters.get(miss, 0.0)
    return hits / total if total else None


def derived_metrics(snapshot: Mapping[str, Any] | None) -> dict[str, float]:
    """Flat KPI dict computed from a registry snapshot.

    Counter totals pass through under their own names; ratios and
    histogram summaries get derived names (``engine.demand_cache.hit_rate``,
    ``service.shard.0.admit_s.p99``, ``sim.events_per_s``).
    """
    if not snapshot:
        return {}
    counters: Mapping[str, float] = snapshot.get("counters") or {}
    hist_docs: Mapping[str, Any] = snapshot.get("histograms") or {}
    gauges: Mapping[str, float] = snapshot.get("gauges") or {}
    hists = {name: Histogram.from_dict(doc) for name, doc in hist_docs.items()}

    out: dict[str, float] = {}
    for name in sorted(counters):
        if name.startswith("span."):
            continue  # span call counts duplicate the histogram counts
        out[name] = counters[name]

    for name in sorted(gauges):
        out[name] = gauges[name]
    # Hit-rate rollups of the gauge-reported module caches (demand.py).
    for label in ("window_cache", "packed_cache"):
        hits = gauges.get(f"engine.{label}.hits")
        misses = gauges.get(f"engine.{label}.misses")
        if hits is not None and misses is not None and hits + misses:
            out[f"engine.{label}.hit_rate"] = hits / (hits + misses)

    for name in sorted(hists):
        hist = hists[name]
        if not hist.count:
            continue
        out[f"{name}.mean"] = hist.mean
        out[f"{name}.p50"] = hist.quantile(0.5)
        out[f"{name}.p99"] = hist.quantile(0.99)
        out[f"{name}.max"] = hist.max

    for ratio_name, hit, miss in (
        ("engine.fixed_point.cache.hit_rate",
         "engine.fixed_point.cache_hits", "engine.fixed_point.cache_misses"),
        ("engine.demand_cache.hit_rate",
         "engine.demand_cache.hits", "engine.demand_cache.misses"),
        ("engine.stage_memo.hit_rate",
         "engine.stage_memo.hits", "engine.stage_memo.misses"),
    ):
        rate = _rate(counters, hit, miss)
        if rate is not None:
            out[ratio_name] = rate

    requests = counters.get("admission.requests", 0.0)
    if requests:
        out["admission.accept_rate"] = (
            counters.get("admission.accepted", 0.0) / requests
        )
    analyses = counters.get("engine.holistic.analyses", 0.0)
    if analyses:
        out["engine.holistic.rounds_per_analysis"] = (
            counters.get("engine.holistic.rounds", 0.0) / analyses
        )
    run_time = hists.get("sim.run_s")
    if run_time is not None and run_time.total > 0.0:
        out["sim.events_per_s"] = counters.get("sim.events", 0.0) / run_time.total
    return out


# ----------------------------------------------------------------------
# Label aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelRollup:
    """All runs under one label, merged."""

    label: str
    runs: int
    metrics: Mapping[str, float]
    telemetry: Mapping[str, Any]


def aggregate(label: str, records: Sequence[RunRecord]) -> LabelRollup:
    """Merge a label's runs: mean the flat KPIs, fold the snapshots."""
    if not records:
        raise ValueError(f"no runs recorded for label {label!r}")
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in records:
        for name, value in record.metrics.items():
            sums[name] = sums.get(name, 0.0) + value
            counts[name] = counts.get(name, 0) + 1
    merged = merge_snapshots(r.telemetry for r in records if r.telemetry)
    metrics = derived_metrics(merged)
    # Explicitly recorded KPIs win over snapshot-derived ones.
    metrics.update({name: sums[name] / counts[name] for name in sums})
    return LabelRollup(
        label=label,
        runs=len(records),
        metrics={k: metrics[k] for k in sorted(metrics)},
        telemetry=merged,
    )


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    metric: str
    baseline: float
    candidate: float
    rel_change: float | None
    direction: str
    gating: bool
    regression: bool


@dataclass(frozen=True)
class DiffResult:
    baseline: LabelRollup
    candidate: LabelRollup
    threshold: float
    rows: Sequence[DiffRow]

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff(
    baseline: LabelRollup,
    candidate: LabelRollup,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> DiffResult:
    """Compare two rollups; flag gating KPIs that got worse."""
    rows: list[DiffRow] = []
    shared = sorted(
        set(baseline.metrics) & set(candidate.metrics)
    )
    for name in shared:
        a = baseline.metrics[name]
        b = candidate.metrics[name]
        if a:
            rel: float | None = (b - a) / abs(a)
        elif b:
            rel = None  # appeared from zero: direction-checked below
        else:
            rel = 0.0
        direction, gating = classify(name)
        if rel is None:
            worse = (direction == "lower") == (b > 0)
        elif direction == "higher":
            worse = rel < -threshold
        else:
            worse = rel > threshold
        rows.append(
            DiffRow(
                metric=name,
                baseline=a,
                candidate=b,
                rel_change=rel,
                direction=direction,
                gating=gating,
                regression=gating and worse,
            )
        )
    return DiffResult(
        baseline=baseline,
        candidate=candidate,
        threshold=threshold,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_rollup(rollup: LabelRollup) -> str:
    table = Table(
        ["metric", "value"],
        title=f"telemetry rollup — {rollup.label} ({rollup.runs} run(s))",
    )
    for name, value in rollup.metrics.items():
        table.add_row([name, value])
    return table.render()


def render_diff(result: DiffResult) -> str:
    title = (
        f"telemetry diff — {result.baseline.label} "
        f"({result.baseline.runs} run(s)) vs {result.candidate.label} "
        f"({result.candidate.runs} run(s)), "
        f"threshold {result.threshold:.0%}"
    )
    table = Table(
        [
            "metric",
            result.baseline.label,
            result.candidate.label,
            "change",
            "flag",
        ],
        title=title,
    )
    for row in result.rows:
        if row.rel_change is None:
            change = "new"
        else:
            change = f"{row.rel_change:+.1%}"
        if row.regression:
            flag = "REGRESSION"
        elif row.gating:
            flag = "ok"
        else:
            flag = "info"
        table.add_row([row.metric, row.baseline, row.candidate, change, flag])
    lines = [table.render()]
    if result.regressions:
        lines.append(
            f"{len(result.regressions)} regression(s) flagged "
            f"(gating metrics worse by more than {result.threshold:.0%})"
        )
    else:
        lines.append("no regressions flagged")
    return "\n".join(lines)
