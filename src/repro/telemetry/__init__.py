"""Lightweight process-local telemetry: counters, histograms, spans.

Every subsystem of the reproduction — the analysis engine's fixed
points, the holistic worklist, the admission hot path, the sharded
service, the simulator and the campaign runner — answers the same
operational question: *why was this decision fast or slow?*  This
module provides the shared instrumentation core they report into:

* **Counters** — monotone floats keyed by dotted names
  (``engine.fixed_point.solves``).
* **Histograms** — count / sum / min / max plus power-of-two log
  buckets; enough to estimate p50/p99 of admit latencies without
  storing samples.
* **Spans** — nestable named timers; a span's elapsed time lands in a
  histogram keyed by the ``/``-joined span stack
  (``span.campaign/analyze``).

Zero overhead when disabled
---------------------------
Telemetry is **off by default**.  The process-local registry lives in
the module global :data:`REGISTRY`, which is ``None`` when disabled;
instrumented hot paths read it once per operation and skip all
accounting on ``None`` — no object allocation, no string formatting,
no dict writes (``tests/test_telemetry.py`` asserts the no-allocation
property).  All instrumentation is *observational*: enabling it changes
no analysis, admission, or simulation result — the equivalence suites
run green with telemetry on.

Cross-process merging
---------------------
:meth:`Registry.snapshot` produces a plain, JSON-able, deterministically
ordered dict; :meth:`Registry.merge` folds such a snapshot back in
(counters add, histograms combine bucket-wise).  Campaign workers and
service shard workers capture locally and ship snapshots to the parent,
so one registry ends up holding the whole fleet's totals.

Set ``REPRO_TELEMETRY=1`` in the environment to enable collection at
import time (how benchmark and server subprocesses opt in).
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Iterable, Mapping

#: Snapshot schema version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


class Histogram:
    """Count/sum/min/max plus power-of-two buckets.

    Bucket ``e`` counts observations ``v`` with ``2**(e-1) < |v| <=
    2**e`` (zero and negatives land in a dedicated underflow bucket).
    Good to a factor-of-two on quantiles, which is plenty for "did p99
    admit latency double" questions, and merges exactly across
    processes.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    #: Bucket index for zero / negative observations.
    UNDERFLOW = -1075  # below the exponent of the smallest positive float

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            e = math.frexp(value)[1]  # 2**(e-1) <= value < 2**e
            if value == math.ldexp(1.0, e - 1):
                e -= 1  # exact powers of two belong to the lower bucket
        else:
            e = self.UNDERFLOW
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (geometric midpoint).

        Exact for the min/max endpoints; within a factor of two
        elsewhere.  ``nan`` on an empty histogram.
        """
        if not self.count:
            return math.nan
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if seen >= rank:
                if e == self.UNDERFLOW:
                    return 0.0
                lo, hi = math.ldexp(1.0, e - 1), math.ldexp(1.0, e)
                return math.sqrt(lo * hi)
        return self.max  # pragma: no cover - rank <= count always hits

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(e): self.buckets[e] for e in sorted(self.buckets)},
        }

    def merge_dict(self, doc: Mapping[str, Any]) -> None:
        count = int(doc.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(doc.get("sum", 0.0))
        lo, hi = doc.get("min"), doc.get("max")
        if lo is not None and lo < self.min:
            self.min = lo
        if hi is not None and hi > self.max:
            self.max = hi
        for e, n in (doc.get("buckets") or {}).items():
            e = int(e)
            self.buckets[e] = self.buckets.get(e, 0) + int(n)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Histogram":
        h = cls()
        h.merge_dict(doc)
        return h


class _Span:
    """Context manager recording elapsed wall time under the span path."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._registry._span_stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack
        # The span must record its duration even when the body raised,
        # and must not raise itself if the body unbalanced the stack
        # (e.g. via Registry.clear()) — fall back to the bare name.
        if stack and stack[-1] == self._name:
            path = "/".join(stack)
            stack.pop()
        else:
            path = self._name
        self._registry.observe(f"span.{path}", elapsed)
        self._registry.add(f"span.{path}.calls")
        if exc_type is not None:
            self._registry.add(f"span.{path}.errors")


class _NullSpan:
    """Shared no-op span used when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Registry:
    """One process-local bag of counters, histograms and span timers."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, float] = {}
        self._span_stack: list[str] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, name: str, n: float = 1.0) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name`` (last write wins).

        Gauges report *levels* (cache sizes, hit counts at a scope
        boundary) rather than monotone totals; merging across processes
        keeps the maximum, the conservative answer to "how big did this
        get anywhere".
        """
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str) -> _Span:
        """A nestable timer; elapsed time lands in ``span.<stack path>``."""
        return _Span(self, name)

    def timer(self, name: str) -> "_Timer":
        """Time a block into histogram ``name`` (no nesting semantics)."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain JSON-able dict with deterministic key order."""
        doc: dict[str, Any] = {
            "v": SNAPSHOT_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
        }
        if self.gauges:  # additive, so absent when unused (v1 layout)
            doc["gauges"] = {k: self.gauges[k] for k in sorted(self.gauges)}
        return doc

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` document into this registry."""
        version = snapshot.get("v", SNAPSHOT_VERSION)
        if version > SNAPSHOT_VERSION:
            raise ValueError(
                f"telemetry snapshot v{version} is newer than the "
                f"supported v{SNAPSHOT_VERSION}"
            )
        for name, value in (snapshot.get("counters") or {}).items():
            self.add(name, float(value))
        for name, doc in (snapshot.get("histograms") or {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_dict(doc)
        for name, value in (snapshot.get("gauges") or {}).items():
            value = float(value)
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value

    def clear(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.gauges.clear()
        self._span_stack.clear()


class _Timer:
    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: Registry, name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._start
        )


# ----------------------------------------------------------------------
# Process-local activation
# ----------------------------------------------------------------------
#: The active registry, or ``None`` when telemetry is disabled.  Hot
#: paths read this module attribute directly and skip all accounting on
#: ``None`` — keep it a plain rebindable global.
REGISTRY: Registry | None = None


def enabled() -> bool:
    return REGISTRY is not None


def enable(registry: Registry | None = None) -> Registry:
    """Install (and return) the process-local registry.

    Idempotent: enabling while enabled keeps the current registry
    unless an explicit one is passed.
    """
    global REGISTRY
    if registry is not None:
        REGISTRY = registry
    elif REGISTRY is None:
        REGISTRY = Registry()
    return REGISTRY


def disable() -> Registry | None:
    """Turn collection off; returns the registry that was active."""
    global REGISTRY
    active, REGISTRY = REGISTRY, None
    return active


class capture:
    """Context manager: collect into a fresh registry, then restore.

    >>> with capture() as reg:          # doctest: +SKIP
    ...     run_workload()
    >>> reg.snapshot()                  # doctest: +SKIP

    The previous registry (or disabled state) is restored on exit, so
    captures nest and never leak across tests or campaign jobs.  Merge
    the captured snapshot into an outer registry explicitly when totals
    should aggregate.
    """

    def __init__(self, registry: Registry | None = None):
        self._registry = registry or Registry()
        self._previous: Registry | None = None

    def __enter__(self) -> Registry:
        global REGISTRY
        self._previous = REGISTRY
        REGISTRY = self._registry
        return self._registry

    def __exit__(self, *exc) -> None:
        global REGISTRY
        REGISTRY = self._previous


# ----------------------------------------------------------------------
# Module-level conveniences (no-ops when disabled)
# ----------------------------------------------------------------------
def add(name: str, n: float = 1.0) -> None:
    reg = REGISTRY
    if reg is not None:
        reg.add(name, n)


def observe(name: str, value: float) -> None:
    reg = REGISTRY
    if reg is not None:
        reg.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    reg = REGISTRY
    if reg is not None:
        reg.set_gauge(name, value)


def span(name: str):
    reg = REGISTRY
    if reg is None:
        return _NULL_SPAN
    return reg.span(name)


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Combine snapshot documents into one (order-independent)."""
    merged = Registry()
    for snap in snapshots:
        if snap:
            merged.merge(snap)
    return merged.snapshot()


if os.environ.get("REPRO_TELEMETRY"):  # pragma: no cover - env-driven
    enable()
