"""Versioned JSON-lines store for telemetry run records.

Every measured run — a campaign, a replay, a benchmark pass — appends
one :class:`RunRecord` line to a store file (``TELEMETRY_runs.jsonl``
by default, same spirit as ``BENCH_scaling.json``: committed history
you can diff against).  A record carries:

* ``label`` — the user-chosen name runs are grouped and diffed by
  (``pr6-baseline``, ``anderson-on``, ...),
* ``kind`` — what produced it (``campaign``, ``replay``, ``bench``),
* ``scenario`` — scenario/workload identifier, when there is one,
* ``git`` — short revision the run was taken at,
* ``metrics`` — flat name→number KPIs (admission rate, req/s, ...),
* ``telemetry`` — a full registry snapshot
  (:meth:`repro.telemetry.Registry.snapshot`), optional,
* ``meta`` — anything else worth keeping (argv, shard count, ...).

Each line is a self-contained JSON object with a ``v`` field; like the
rest of the repo's on-disk formats, newer versions are refused loudly
rather than half-read.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Run-record schema version.
STORE_VERSION = 1

#: Default store file, repo-root relative (next to BENCH_scaling.json).
DEFAULT_STORE = "TELEMETRY_runs.jsonl"


class StoreError(ValueError):
    """A telemetry store file is malformed or too new."""


@dataclass(frozen=True)
class RunRecord:
    """One measured run, as appended to the JSON-lines store."""

    label: str
    kind: str = "campaign"
    scenario: str | None = None
    git: str | None = None
    created: str | None = None
    metrics: Mapping[str, float] = field(default_factory=dict)
    telemetry: Mapping[str, Any] | None = None
    meta: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "v": STORE_VERSION,
            "label": self.label,
            "kind": self.kind,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }
        if self.scenario is not None:
            doc["scenario"] = self.scenario
        if self.git is not None:
            doc["git"] = self.git
        if self.created is not None:
            doc["created"] = self.created
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        if self.meta:
            doc["meta"] = dict(self.meta)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunRecord":
        version = doc.get("v", STORE_VERSION)
        if not isinstance(version, int) or version < 1:
            raise StoreError(f"invalid run record version {version!r}")
        if version > STORE_VERSION:
            raise StoreError(
                f"run record v{version} is newer than the supported "
                f"v{STORE_VERSION}"
            )
        label = doc.get("label")
        if not isinstance(label, str) or not label:
            raise StoreError(f"run record missing label: {doc!r}")
        return cls(
            label=label,
            kind=str(doc.get("kind", "campaign")),
            scenario=doc.get("scenario"),
            git=doc.get("git"),
            created=doc.get("created"),
            metrics={
                str(k): float(v)
                for k, v in (doc.get("metrics") or {}).items()
            },
            telemetry=doc.get("telemetry"),
            meta=doc.get("meta") or {},
        )


def append_run(path: str | Path, record: RunRecord) -> None:
    """Append one record line, creating the store file if needed."""
    line = json.dumps(record.to_dict(), sort_keys=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")


def load_runs(
    path: str | Path, *, label: str | None = None
) -> list[RunRecord]:
    """Read every record (optionally only one label) from a store file."""
    p = Path(path)
    if not p.exists():
        raise StoreError(f"telemetry store not found: {p}")
    records: list[RunRecord] = []
    for lineno, line in enumerate(p.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(f"{p}:{lineno}: invalid JSON: {exc}") from exc
        record = RunRecord.from_dict(doc)
        if label is None or record.label == label:
            records.append(record)
    return records


def labels(path: str | Path) -> list[str]:
    """Distinct labels in first-appearance order."""
    seen: dict[str, None] = {}
    for record in load_runs(path):
        seen.setdefault(record.label, None)
    return list(seen)


def merge_run_telemetry(records: Iterable[RunRecord]) -> dict[str, Any]:
    """One combined registry snapshot across the records' telemetry."""
    from repro import telemetry as _t

    return _t.merge_snapshots(
        r.telemetry for r in records if r.telemetry
    )


def git_revision() -> str | None:
    """Short git revision of the working tree, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None
