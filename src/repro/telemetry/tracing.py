"""Distributed request tracing and the crash flight recorder.

:mod:`repro.telemetry` answers *how much* work the system did; this
module answers *where one request's time went*.  A trace is a set of
**spans** — named, timed intervals carrying a shared ``trace`` id —
minted at the system edge (the TCP server, or the replay driver),
propagated through protocol requests (the additive ``trace`` field)
into shard workers, and recorded wherever work happens:

* ``server.admit`` / ``server.release`` — queue + dispatch time of one
  request inside :class:`~repro.service.server.AdmissionServer`;
* ``shard.request`` / ``shard.release`` — the op's execution inside a
  shard backend (worker process or inline);
* ``admission.request`` — the controller's admission decision, nested
  under the shard span, with fixed-point solver attribution
  (``fp.solves`` / ``fp.iterations`` tags) folded in by
  :mod:`repro.util.fixed_point`.

Spans land in a **bounded per-process ring buffer** (old spans fall
off; tracing can run forever).  Worker rings are drained over the
shard pipes and folded into the parent's ring exactly like registry
snapshots, so one process ends up holding the fleet's recent spans —
:func:`to_chrome_trace` then renders them as Chrome trace-event JSON
(``chrome://tracing`` / https://ui.perfetto.dev), one track per
``(process, incarnation)`` so a supervised worker respawn shows up as
a track split.

Zero overhead when disabled
---------------------------
Mirrors the registry contract: the module global :data:`TRACER` is
``None`` when tracing is off, hot paths read it once and skip
everything on ``None`` — no allocation, no clock reads.  Tracing is
observational only: enabling it changes no decision or simulation
result.  Set ``REPRO_TRACE=1`` to enable at import time.

Flight recorder
---------------
:func:`write_flight_record` snapshots the evidence that is otherwise
lost with a dead worker — the last N spans, the registry state, and
the supervisor's op-journal position — into a self-contained
post-mortem JSON document.  The shard supervisor calls it on every
dead-worker detection and on permanent degradation (see
:class:`repro.service.sharding._ProcessShard`).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Span-record schema version (embedded in flight records).
TRACE_VERSION = 1

#: Flight-record schema version.
FLIGHT_VERSION = 1

#: Default ring-buffer capacity (spans kept per process).
DEFAULT_CAPACITY = 4096


class _TraceSpan:
    """Context manager: one open span on a tracer's stack."""

    __slots__ = (
        "_tracer", "_name", "_trace", "_span", "_parent", "_tags",
        "_ts", "_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent: str | None,
        tags: dict[str, float] | None,
    ):
        self._tracer = tracer
        self._name = name
        self._trace = trace_id
        self._span = span_id
        self._parent = parent
        self._tags = tags

    @property
    def context(self) -> dict[str, str]:
        """``{"id", "span"}`` — what a child (or the wire) propagates."""
        return {"id": self._trace, "span": self._span}

    def annotate(self, key: str, n: float = 1.0) -> None:
        """Accumulate a numeric tag on this span."""
        if self._tags is None:
            self._tags = {}
        self._tags[key] = self._tags.get(key, 0.0) + n

    def __enter__(self) -> "_TraceSpan":
        self._tracer._stack.append(self)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._tracer._stack
        # Defensive: the body may have unbalanced the stack (it never
        # should); bookkeeping must not raise out of __exit__.
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - defensive
            stack.remove(self)
        if exc_type is not None:
            self.annotate("error")
        self._tracer.record(
            name=self._name,
            trace=self._trace,
            span=self._span,
            parent=self._parent,
            ts=self._ts,
            dur=elapsed,
            tags=self._tags,
        )


class _NullSpan:
    """Shared no-op span used when tracing is disabled."""

    __slots__ = ()

    context = None

    def annotate(self, key: str, n: float = 1.0) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span recorder: id minting + bounded ring buffer.

    ``proc`` labels which process the spans belong to (``"server"``,
    ``"shard0"``, ...) and ``incarnation`` which respawn of it — the
    pair becomes the track identity in the Chrome export.  Span and
    trace ids embed the pid, so ids minted in different worker
    processes never collide.
    """

    def __init__(
        self,
        proc: str = "main",
        incarnation: int = 0,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.proc = proc
        self.incarnation = int(incarnation)
        self.capacity = capacity
        self.spans: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self._stack: list[_TraceSpan] = []
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    # -- id minting -----------------------------------------------------
    def mint_trace(self) -> str:
        return f"t{self._pid:x}.{next(self._ids)}"

    def mint_span(self) -> str:
        return f"s{self._pid:x}.{next(self._ids)}"

    # -- recording ------------------------------------------------------
    def span(
        self,
        name: str,
        trace: Mapping[str, Any] | None = None,
        tags: dict[str, float] | None = None,
    ) -> _TraceSpan:
        """Open a span: explicit parent context, else the innermost
        open span, else a fresh root trace."""
        if trace is not None:
            trace_id = str(trace.get("id") or self.mint_trace())
            parent = trace.get("span")
            parent = str(parent) if parent is not None else None
        elif self._stack:
            top = self._stack[-1]
            trace_id = top._trace
            parent = top._span
        else:
            trace_id = self.mint_trace()
            parent = None
        return _TraceSpan(self, name, trace_id, self.mint_span(), parent, tags)

    def current_context(self) -> dict[str, str] | None:
        """Propagation context of the innermost open span, or None."""
        if not self._stack:
            return None
        return self._stack[-1].context

    def annotate(self, key: str, n: float = 1.0) -> None:
        """Accumulate a numeric tag on the innermost open span (no-op
        when no span is open)."""
        if self._stack:
            self._stack[-1].annotate(key, n)

    def record(
        self,
        *,
        name: str,
        trace: str,
        span: str | None = None,
        parent: str | None = None,
        ts: float,
        dur: float,
        tags: Mapping[str, float] | None = None,
        proc: str | None = None,
        inc: int | None = None,
    ) -> None:
        """Append one finished span record to the ring."""
        doc: dict[str, Any] = {
            "trace": trace,
            "span": span or self.mint_span(),
            "name": name,
            "proc": proc if proc is not None else self.proc,
            "inc": int(inc) if inc is not None else self.incarnation,
            "ts": ts,
            "dur": dur,
        }
        if parent is not None:
            doc["parent"] = parent
        if tags:
            doc["tags"] = dict(tags)
        if len(self.spans) == self.spans.maxlen:
            self.dropped += 1
        self.spans.append(doc)

    # -- cross-process exchange -----------------------------------------
    def drain(self) -> list[dict[str, Any]]:
        """Pop every buffered span (what a worker ships to its parent)."""
        out = list(self.spans)
        self.spans.clear()
        return out

    def extend(self, spans: Iterable[Mapping[str, Any]]) -> None:
        """Fold drained span records (e.g. from a worker) into the ring."""
        for doc in spans:
            if len(self.spans) == self.spans.maxlen:
                self.dropped += 1
            self.spans.append(dict(doc))

    def snapshot(self) -> list[dict[str, Any]]:
        """Copy of the buffered spans, oldest first (non-draining)."""
        return [dict(doc) for doc in self.spans]

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.dropped = 0


# ----------------------------------------------------------------------
# Process-local activation (mirrors repro.telemetry.REGISTRY)
# ----------------------------------------------------------------------
#: The active tracer, or ``None`` when tracing is disabled.  Hot paths
#: read this module attribute once and skip all tracing on ``None``.
TRACER: Tracer | None = None


def tracing_enabled() -> bool:
    return TRACER is not None


def enable_tracing(
    tracer: Tracer | None = None,
    *,
    proc: str = "main",
    incarnation: int = 0,
    capacity: int = DEFAULT_CAPACITY,
) -> Tracer:
    """Install (and return) the process-local tracer.

    Idempotent like :func:`repro.telemetry.enable`: enabling while
    enabled keeps the current tracer unless an explicit one is passed.
    """
    global TRACER
    if tracer is not None:
        TRACER = tracer
    elif TRACER is None:
        TRACER = Tracer(proc=proc, incarnation=incarnation, capacity=capacity)
    return TRACER


def disable_tracing() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active."""
    global TRACER
    active, TRACER = TRACER, None
    return active


def span(name: str, trace: Mapping[str, Any] | None = None):
    """Module-level convenience: a real span when tracing is on, the
    shared no-op span otherwise."""
    tr = TRACER
    if tr is None:
        return NULL_SPAN
    return tr.span(name, trace=trace)


def annotate(key: str, n: float = 1.0) -> None:
    tr = TRACER
    if tr is not None:
        tr.annotate(key, n)


def current_context() -> dict[str, str] | None:
    tr = TRACER
    if tr is None:
        return None
    return tr.current_context()


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Render span records as a Chrome trace-event JSON object.

    Loadable in ``chrome://tracing`` and Perfetto.  Every distinct
    ``(proc, inc)`` pair becomes its own track (a synthetic ``pid``
    plus a ``process_name`` metadata event), so a shard worker that was
    killed and respawned renders as two adjacent tracks — the track
    split *is* the crash.  Trace/span/parent ids and tags travel in
    each event's ``args`` (click a slice to see them; slices of one
    request share ``args.trace``).
    """
    records = sorted(
        (dict(s) for s in spans),
        key=lambda s: (float(s.get("ts", 0.0)), str(s.get("span", ""))),
    )
    pid_of: dict[tuple[str, int], int] = {}
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    for s in records:
        key = (str(s.get("proc", "main")), int(s.get("inc", 0)))
        pid = pid_of.get(key)
        if pid is None:
            pid = pid_of[key] = len(pid_of) + 1
            proc, inc = key
            label = proc if inc == 0 else f"{proc} (incarnation {inc})"
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
            meta.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        args: dict[str, Any] = {"trace": s.get("trace")}
        if s.get("parent") is not None:
            args["parent"] = s["parent"]
        if s.get("span") is not None:
            args["span"] = s["span"]
        args.update(s.get("tags") or {})
        name = str(s.get("name", "span"))
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": round(float(s.get("ts", 0.0)) * 1e6, 3),
                "dur": max(round(float(s.get("dur", 0.0)) * 1e6, 3), 0.001),
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> list[dict[str, Any]]:
    """Check ``doc`` is a loadable Chrome trace-event object.

    Returns the duration (``"ph": "X"``) events; raises
    :class:`ValueError` on anything a trace viewer would refuse.  Used
    by the CI ``trace-smoke`` gate and the export tests.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("chrome trace must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace missing 'traceEvents' list")
    complete: list[dict[str, Any]] = []
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "pid"):
            if field not in ev:
                raise ValueError(f"traceEvents[{i}] missing {field!r}")
        if ev["ph"] == "X":
            for field in ("ts", "dur"):
                if not isinstance(ev.get(field), (int, float)):
                    raise ValueError(
                        f"traceEvents[{i}] missing numeric {field!r}"
                    )
            complete.append(dict(ev))
    return complete


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def write_flight_record(
    directory: str | Path,
    *,
    reason: str,
    shard: int,
    incarnation: int,
    restarts: int,
    journal: Mapping[str, Any],
    spans: Iterable[Mapping[str, Any]] | None = None,
    registry: Mapping[str, Any] | None = None,
    shard_telemetry: Mapping[str, Any] | None = None,
    max_spans: int = 256,
    extra: Mapping[str, Any] | None = None,
) -> str:
    """Write one post-mortem JSON document; returns its path.

    ``journal`` is the supervisor's op-journal position (length, limit,
    baseline size — enough to know what a recovery will replay);
    ``spans`` the parent's recent span records (the last ``max_spans``
    are kept); ``registry`` the parent-process registry snapshot and
    ``shard_telemetry`` the dead shard's last-known merged snapshot.
    The file name is deterministic per (shard, restart, reason), so a
    retried recovery overwrites its own document rather than littering.
    """
    from datetime import datetime, timezone

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    recent = list(spans or [])
    doc: dict[str, Any] = {
        "v": FLIGHT_VERSION,
        "kind": "flight_record",
        "reason": reason,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "shard": int(shard),
        "incarnation": int(incarnation),
        "restarts": int(restarts),
        "journal": dict(journal),
        "spans": recent[-max_spans:],
        "spans_dropped": max(len(recent) - max_spans, 0),
        "registry": dict(registry) if registry else None,
        "shard_telemetry": dict(shard_telemetry) if shard_telemetry else None,
    }
    if extra:
        doc["extra"] = dict(extra)
    path = directory / (
        f"flight_shard{int(shard)}_r{int(restarts)}_{reason}.json"
    )
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return str(path)


def load_flight_record(path: str | Path) -> dict[str, Any]:
    """Read a flight record back, refusing newer schema versions."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("kind") != "flight_record":
        raise ValueError(f"{path}: not a flight-record document")
    version = doc.get("v", FLIGHT_VERSION)
    if version > FLIGHT_VERSION:
        raise ValueError(
            f"{path}: flight record v{version} is newer than the "
            f"supported v{FLIGHT_VERSION}"
        )
    return doc


if os.environ.get("REPRO_TRACE"):  # pragma: no cover - env-driven
    enable_tracing()
