"""Deterministic discrete-event engine.

A binary heap of **flat event records** ``(time, seq, kind, a, b)``;
the sequence number makes simultaneous events fire in scheduling order,
so runs are exactly reproducible — a property the validation
experiments rely on.

``kind`` is an integer index into a per-engine **handler table**
(:meth:`EventEngine.register_handler`); the dispatch loop resolves it to
a fixed two-operand callable ``handler(a, b)``.  Hot callers —
transmitters, switch drivers, source ports — register their bound
methods once at construction and schedule ``(kind, operand, operand)``
triples through :meth:`schedule_call`, paying neither a closure nor an
argument-tuple allocation per event.  Kind ``0`` is the generic
callback handler backing the classic ``schedule(when, fn, *args)`` API,
which remains fully supported.  (A recycled-list record pool was
measured and rejected: CPython allocates small tuples from a free list,
and tuple comparison beats list comparison in every heap sift.)

:meth:`schedule_many` bulk-loads a prebuilt release list by extending
the heap and heapifying once instead of N pushes.  All of this is pure
overhead cutting: records compare on their ``(time, sequence)`` prefix
exactly like the old nested ``(time, seq, callback, args)`` tuples
(sequence numbers are unique, so the comparison never reaches the
payload slots), heapify of the same records yields the same pop order
as N pushes, and the dispatch loop batches all pops sharing a timestamp
under a single horizon check.  Traces are bit-identical to the
closure-based engine.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro import telemetry as _telemetry


def _dispatch_generic(callback: Callable[..., None], args: tuple) -> None:
    """Kind 0: the classic ``schedule(when, fn, *args)`` payload."""
    callback(*args)


class EventEngine:
    """Minimal but strict event queue.

    >>> eng = EventEngine()
    >>> hits = []
    >>> eng.schedule(1.0, hits.append, "a")
    >>> eng.schedule(0.5, hits.append, "b")
    >>> eng.run()
    >>> hits
    ['b', 'a']
    """

    def __init__(self) -> None:
        # Flat records (time, seq, kind, a, b).
        self._heap: list[tuple] = []
        self._handlers: list[Callable[[Any, Any], None]] = [_dispatch_generic]
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------
    # Handler table
    # ------------------------------------------------------------------
    def register_handler(self, handler: Callable[[Any, Any], None]) -> int:
        """Add ``handler(a, b)`` to the dispatch table; returns its kind.

        Handlers take exactly two positional operands (pad unused slots
        with defaults).  Registration is construction-time work — hot
        components register their bound methods once and schedule
        int-coded records ever after.
        """
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def replace_handler(
        self, kind: int, handler: Callable[[Any, Any], None]
    ) -> None:
        """Swap the handler behind an existing kind code.

        Lets builders register a kind before its final target exists
        (forward references during topology construction) and patch in
        the specialised handler afterwards; already-scheduled records
        dispatch through the new handler.
        """
        if not 0 < kind < len(self._handlers):
            raise IndexError(f"unknown handler kind {kind}")
        self._handlers[kind] = handler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Scheduling in the past (beyond float tolerance) is a programming
        error and raises immediately rather than corrupting causality.
        """
        if math.isnan(when) or math.isinf(when):
            raise ValueError(f"cannot schedule at t={when!r}")
        self.schedule_call(when, 0, callback, args)

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.schedule(self._now + delay, callback, *args)

    def schedule_call(
        self, when: float, kind: int, a: Any = None, b: Any = None
    ) -> None:
        """Hot path: schedule handler-table event ``kind`` with operands.

        Skips the NaN/inf validation of :meth:`schedule` (internal
        callers compute finite times from finite inputs) but keeps the
        causality guard.
        """
        now = self._now
        if when <= now:
            if when < now - 1e-12:
                raise ValueError(
                    f"causality violation: scheduling at {when!r} "
                    f"but now is {now!r}"
                )
            when = now
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (when, seq, kind, a, b))

    def schedule_call_in(
        self, delay: float, kind: int, a: Any = None, b: Any = None
    ) -> None:
        """:meth:`schedule_call` relative to now (no negative check)."""
        self.schedule_call(self._now + delay, kind, a, b)

    def schedule_many(self, events) -> None:
        """Bulk-schedule ``(when, kind, a, b)`` tuples.

        Appends prebuilt records and heapifies once — O(n) instead of
        n pushes — with the sequence numbers assigned in iteration
        order.  Because ``(time, sequence)`` is a total order (sequence
        numbers are unique), heapify yields exactly the pop order N
        individual pushes would have produced.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        for when, kind, a, b in events:
            if when <= now:
                if when < now - 1e-12:
                    raise ValueError(
                        f"cannot bulk-schedule at t={when!r} (now {now!r})"
                    )
                when = now
            elif when != when or math.isinf(when):  # NaN-safe
                raise ValueError(f"cannot bulk-schedule at t={when!r}")
            heap.append((when, seq, kind, a, b))
            seq += 1
        scheduled = seq - self._seq
        self._seq = seq
        heapify(heap)
        reg = _telemetry.REGISTRY
        if reg is not None:
            reg.observe("sim.bulk_schedule", scheduled)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: int | None = None) -> None:
        """Process events in time order until the queue empties, the
        horizon ``until`` is reached, or ``max_events`` fire."""
        heap = self._heap
        pop = heappop
        handlers = self._handlers
        processed = 0
        # Read the registry once per run; the disabled dispatch loops
        # below stay free of any telemetry test (the heap-peak probe
        # costs one compare per timestamp batch, which only the enabled
        # copies pay).
        reg = _telemetry.REGISTRY
        peak = len(heap) if reg is not None else 0
        try:
            if max_events is None and reg is None:
                # Unbudgeted loop (the standard full run): no per-event
                # budget compares.
                while heap:
                    when = heap[0][0]
                    if when > until:
                        break
                    self._now = when
                    # Drain the whole run of events at this timestamp
                    # (the common case: fragment bursts, simultaneous
                    # slot boundaries) without re-checking the horizon.
                    # Events a callback schedules *at* `when` join the
                    # same drain, in sequence order — exactly where the
                    # per-event loop would have popped them.
                    while True:
                        rec = pop(heap)
                        processed += 1
                        handlers[rec[2]](rec[3], rec[4])
                        if not heap or heap[0][0] != when:
                            break
            elif max_events is None:
                # Instrumented copy of the unbudgeted loop: identical
                # dispatch semantics plus the per-batch heap-peak probe.
                while heap:
                    when = heap[0][0]
                    if when > until:
                        break
                    if len(heap) > peak:
                        peak = len(heap)
                    self._now = when
                    while True:
                        rec = pop(heap)
                        processed += 1
                        handlers[rec[2]](rec[3], rec[4])
                        if not heap or heap[0][0] != when:
                            break
            else:
                budget = max_events
                while heap and processed < budget:
                    when = heap[0][0]
                    if when > until:
                        break
                    if reg is not None and len(heap) > peak:
                        peak = len(heap)
                    self._now = when
                    while processed < budget:
                        rec = pop(heap)
                        processed += 1
                        handlers[rec[2]](rec[3], rec[4])
                        if not heap or heap[0][0] != when:
                            break
        finally:
            self._events_processed += processed
            if reg is not None and processed:
                reg.observe("sim.heap_peak", peak)
        # Value comparison, not `is`: a computed float('inf') is a
        # different object from math.inf, and identity would wrongly
        # advance the clock to infinity on an empty queue.
        if until != math.inf and until > self._now and not self._heap:
            self._now = until

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def reset(self) -> None:
        """Clear queue, clock and counters for a fresh run.

        Registered handlers survive — components built around this
        engine keep their kind codes, which is what lets
        :meth:`repro.sim.simulator.Simulator.rebind` reuse a built
        topology across runs.
        """
        self._heap.clear()
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
