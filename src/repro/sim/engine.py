"""Deterministic discrete-event engine.

A heapq of ``(time, sequence, callback, args)`` tuples; the sequence
number makes simultaneous events fire in scheduling order, so runs are
exactly reproducible — a property the validation experiments rely on.

Events carry their arguments explicitly (``schedule(when, fn, *args)``)
so hot callers — transmitters, switch drivers, the release scheduler —
bind a method plus arguments instead of allocating a fresh closure per
event.  The dispatch loop batches all pops sharing a timestamp under a
single horizon check.  Both are pure overhead cuts: the pop order is
still governed by ``(time, sequence)`` alone, so traces are bit-
identical to the closure-based engine.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable


class EventEngine:
    """Minimal but strict event queue.

    >>> eng = EventEngine()
    >>> hits = []
    >>> eng.schedule(1.0, hits.append, "a")
    >>> eng.schedule(0.5, hits.append, "b")
    >>> eng.run()
    >>> hits
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Scheduling in the past (beyond float tolerance) is a programming
        error and raises immediately rather than corrupting causality.
        """
        if math.isnan(when) or math.isinf(when):
            raise ValueError(f"cannot schedule at t={when!r}")
        now = self._now
        if when < now - 1e-12:
            raise ValueError(
                f"causality violation: scheduling at {when!r} but now is {now!r}"
            )
        heapq.heappush(
            self._heap,
            (when if when > now else now, next(self._seq), callback, args),
        )

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.schedule(self._now + delay, callback, *args)

    def run(self, until: float = math.inf, max_events: int | None = None) -> None:
        """Process events in time order until the queue empties, the
        horizon ``until`` is reached, or ``max_events`` fire."""
        heap = self._heap
        pop = heapq.heappop
        budget = math.inf if max_events is None else max_events
        processed = 0
        try:
            while heap and processed < budget:
                when = heap[0][0]
                if when > until:
                    break
                self._now = when
                # Drain the whole run of events at this timestamp (the
                # common case: fragment bursts, simultaneous slot
                # boundaries) without re-checking the horizon.  Events a
                # callback schedules *at* `when` join the same drain, in
                # sequence order — exactly where the per-event loop
                # would have popped them.
                while processed < budget:
                    _, _, callback, args = pop(heap)
                    processed += 1
                    callback(*args)
                    if not heap or heap[0][0] != when:
                        break
        finally:
            self._events_processed += processed
        if until is not math.inf and until > self._now and not self._heap:
            self._now = until

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
