"""Deterministic discrete-event engine.

A heapq of ``(time, sequence, callback)`` triples; the sequence number
makes simultaneous events fire in scheduling order, so runs are exactly
reproducible — a property the validation experiments rely on.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable


class EventEngine:
    """Minimal but strict event queue.

    >>> eng = EventEngine()
    >>> hits = []
    >>> eng.schedule(1.0, lambda: hits.append("a"))
    >>> eng.schedule(0.5, lambda: hits.append("b"))
    >>> eng.run()
    >>> hits
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past (beyond float tolerance) is a programming
        error and raises immediately rather than corrupting causality.
        """
        if math.isnan(when) or math.isinf(when):
            raise ValueError(f"cannot schedule at t={when!r}")
        if when < self._now - 1e-12:
            raise ValueError(
                f"causality violation: scheduling at {when!r} but now is {self._now!r}"
            )
        heapq.heappush(self._heap, (max(when, self._now), next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.schedule(self._now + delay, callback)

    def run(self, until: float = math.inf, max_events: int | None = None) -> None:
        """Process events in time order until the queue empties, the
        horizon ``until`` is reached, or ``max_events`` fire."""
        budget = math.inf if max_events is None else max_events
        while self._heap and budget > 0:
            when, _, callback = self._heap[0]
            if when > until:
                break
            heapq.heappop(self._heap)
            self._now = when
            self._events_processed += 1
            budget -= 1
            callback()
        if until is not math.inf and until > self._now and not self._heap:
            self._now = until

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
