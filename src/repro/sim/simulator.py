"""Top-level simulator: build a network of simulated components and run.

:func:`simulate` wires together, from the same :class:`~repro.model`
objects the analysis consumes:

* one :class:`~repro.sim.host.OutputPort` per (source node, first link)
  pair, fed by each flow's release policy;
* one :class:`~repro.sim.swnode.SimSwitch` per switch node, with a
  :class:`~repro.sim.nic.LinkTransmitter` per outgoing interface;
* destination sinks recording per-packet completion.

Per-flow forwarding uses the flow's pre-specified route and per-link
802.1p priorities — exactly the information the paper's operator
provisions into the switches.

Fast backend
------------
``SimConfig.fast`` (default True) selects the fast simulation backend:

* traffic injection is precomputed — one packetization per distinct
  ``(payload_bits, transport)`` class, one jitter-offset vector per
  ``(fragment count, jitter)`` class, and all ``(arrival, offset,
  wire_bits)`` release triples of a flow assembled with numpy — then
  bulk-loaded into the engine via ``schedule_many`` (one heapify, not
  one push per fragment);
* per-hop and completion accounting runs on flat per-packet counter
  arrays and int-keyed counters instead of per-packet record objects
  and tuple-keyed dicts; :class:`~repro.sim.trace.PacketRecord` objects
  are materialised once, at trace finalisation.

Both changes are exhaustively checked to be **bit-identical** to the
reference backend (``fast=False``, the seed implementation) in
``tests/test_sim_equivalence.py`` — same release instants (the numpy
arithmetic performs the identical IEEE-754 operations), same event
order (identical schedule order, and ``(time, sequence)`` is a total
order), same trace records.  The fast injection path evaluates each
jitter policy once per frame class instead of once per arrival, so
custom jitter policies must be pure functions of ``(n_fragments,
jitter)`` — both built-ins are; stateful policies should run with
``fast=False``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro import telemetry as _telemetry

from repro.core.packetization import DEFAULT_CONFIG, PacketizationConfig, packetize
from repro.model.flow import Flow, check_unique_names
from repro.model.network import Network
from repro.model.routing import validate_route
from repro.sim.engine import EventEngine
from repro.sim.host import OutputPort
from repro.sim.nic import LinkTransmitter
from repro.sim.release import (
    EagerRelease,
    JitterPolicy,
    ReleasePolicy,
    SpreadJitterPolicy,
)
from repro.sim.swnode import SimSwitch
from repro.sim.trace import PacketRecord, SimulationTrace
from repro.switch.click import ClickSwitch
from repro.switch.queues import QueuedFrame, make_frame

#: SimConfig fields baked into a built topology; :meth:`Simulator.rebind`
#: requires them unchanged (everything else — duration, drain_factor —
#: only shapes releases and the horizon and may vary per run).
TOPOLOGY_CONFIG_FIELDS = (
    "switch_mode",
    "idle_cost",
    "source_discipline",
    "packetization",
    "nic_fifo_capacity",
    "priority_levels",
    "fast",
)


@dataclass(frozen=True)
class SimConfig:
    """Simulation knobs.

    Attributes
    ----------
    duration:
        Horizon in seconds; frames arriving up to the horizon are
        released, and the run continues until in-flight packets drain
        (bounded by ``drain_factor * duration``).
    switch_mode:
        ``"event"`` (efficient) or ``"rotation"`` (pessimistic, fixed
        ``CIRC`` rotation) — see :mod:`repro.sim.swnode`.
    idle_cost:
        Cost of a no-work task dispatch in event mode (0 = free).
    source_discipline:
        ``"fifo"`` or ``"priority"`` output queues at sources.
    packetization:
        Wire model; must match the analysis options when validating.
    drain_factor:
        Extra time (fraction of ``duration``) allowed for draining.
    nic_fifo_capacity:
        Capacity of every switch NIC FIFO in Ethernet frames; ``None``
        (default) models the analysis' no-loss assumption.  A finite
        value enables overflow/failure-injection experiments — dropped
        fragments leave their UDP packet permanently incomplete.
    priority_levels:
        Number of 802.1p levels enforced by switch output queues
        (commercial switches support 2-8); ``None`` = unlimited.
    fast:
        Use the fast simulation backend (vectorised release
        precomputation, bulk scheduling, flat per-packet accounting —
        see the module docstring).  Bit-identical to ``fast=False``;
        disable to run the reference implementation (the equivalence
        tests do) or when injecting stateful custom jitter policies.
    """

    duration: float = 1.0
    switch_mode: str = "event"
    idle_cost: float = 0.0
    source_discipline: str = "fifo"
    packetization: PacketizationConfig = DEFAULT_CONFIG
    drain_factor: float = 0.5
    nic_fifo_capacity: int | None = None
    priority_levels: int | None = None
    fast: bool = True

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.drain_factor < 0:
            raise ValueError("drain_factor must be >= 0")


def _make_switch_deliver(engine, hits, counts, n_nodes, node_idx, push, driver):
    """Fully inlined fast-path delivery into a switch: hop accounting
    plus the receive (stamp, rx push, pending, wake) with every target
    prebound — the handler-table entry behind one link's deliveries."""

    def deliver(frame, _unused=None):
        nf = frame.n_fragments
        pid = frame.packet_id
        now = engine._now
        if nf == 1:
            hits.append((pid, node_idx, now))
        else:
            key = pid * n_nodes + node_idx
            count = counts.get(key, 0) + 1
            if count == nf:
                del counts[key]
                hits.append((pid, node_idx, now))
            else:
                counts[key] = count
        # A delivered frame is uniquely owned (its only other reference
        # was the just-popped event record), so the arrival stamp can
        # mutate in place instead of cloning.
        frame.__dict__["enqueued_at"] = now
        if push(frame) is not False:
            driver._pending += 1
        if not driver._running:
            driver.wake()

    return deliver


class Simulator:
    """Builds and runs one simulation instance.

    The topology build (switch structures, transmitters, dispatch
    tables) is reusable: :meth:`rebind` swaps in a new flow set and/or
    timing configuration and resets all dynamic state, so sweeps over
    one network pay construction once (see the campaign's batched
    simulate action).
    """

    def __init__(
        self,
        network: Network,
        flows: Sequence[Flow],
        config: SimConfig | None = None,
        *,
        release_policies: Mapping[str, ReleasePolicy] | None = None,
        jitter_policies: Mapping[str, JitterPolicy] | None = None,
    ):
        check_unique_names(flows)
        for f in flows:
            validate_route(network, f.route)
        self.network = network
        self.flows = tuple(flows)
        self.config = config or SimConfig()
        self._built_config = self.config
        self.engine = EventEngine()
        self._release = dict(release_policies or {})
        self._jitter = dict(jitter_policies or {})

        self._build_topology()
        self._bind_flows()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_topology(self) -> None:
        net = self.network
        cfg = self.config

        # Stable node indexing for the fast backend's int-keyed hop
        # accounting.  The flat accounting containers live as long as
        # the topology (cleared in place per run) because the delivery
        # closures below bind them directly.
        self._node_names = [n.name for n in net.nodes()]
        self._node_index = {name: i for i, name in enumerate(self._node_names)}
        self._n_nodes = len(self._node_names)
        self._p_recv: list[int] = []
        self._p_completed: list[float | None] = []
        self._p_hits: list[tuple[int, int, float]] = []
        self._hop_counts: dict[int, int] = {}
        # Switch-target delivery kinds to patch once their SimSwitch
        # exists (transmitters are built before the switch they feed).
        # Patched entries stay valid across rebinds (all their bindings
        # are reset in place), so _finalize_delivers only processes the
        # tail beyond this watermark.
        self._deliver_fixups: list[tuple[int, str, str]] = []
        self._fixups_patched = 0

        self.switches: dict[str, SimSwitch] = {}
        switch_nodes = [n for n in net.nodes() if n.is_switch]

        # Build ClickSwitch structures.  Interfaces of a switch = all
        # distinct neighbours (either direction) — answered by the
        # network's incrementally-maintained adjacency maps instead of
        # a per-switch rescan of every link (O(nodes*links) in total).
        clicks: dict[str, ClickSwitch] = {}
        for node in switch_nodes:
            clicks[node.name] = ClickSwitch(
                node.name,
                net.interfaces_of(node.name),
                node.switch,
                priority_levels=cfg.priority_levels,
                nic_fifo_capacity=cfg.nic_fifo_capacity,
            )

        # Per-switch forwarding tables, refilled in place by
        # :meth:`_fill_route_tables` so the route closures below stay
        # valid across rebinds.
        self._route_tables: dict[str, dict[str, tuple[str, int]]] = {
            name: {} for name in clicks
        }

        def make_route_fn(sw_name: str, table: dict):
            def route_fn(frame: QueuedFrame) -> tuple[str, int]:
                try:
                    return table[frame.flow]
                except KeyError:
                    raise KeyError(
                        f"switch {sw_name!r}: no forwarding entry for "
                        f"flow {frame.flow!r}"
                    ) from None

            return route_fn

        for node in switch_nodes:
            click = clicks[node.name]
            transmitters: dict[str, LinkTransmitter] = {}
            for itf in click.interfaces:
                if not net.has_link(node.name, itf):
                    continue  # receive-only interface
                link = net.link(node.name, itf)
                deliver, deliver_kind = self._register_deliver(itf, node.name)
                transmitters[itf] = LinkTransmitter(
                    self.engine,
                    speed_bps=link.speed_bps,
                    prop_delay=link.prop_delay,
                    pull=(
                        lambda d=click.tx_fifo[itf]._items: (
                            d.popleft() if d else None
                        )
                    ),
                    deliver=deliver,
                    deliver_kind=deliver_kind,
                    on_idle=(lambda s=node.name, i=itf: self._on_tx_idle(s, i)),
                )
            # Receive-only interfaces still need queue structures (they
            # exist in ClickSwitch); SimSwitch requires a transmitter per
            # interface, so give dead interfaces a null transmitter.
            for itf in click.interfaces:
                if itf not in transmitters:
                    transmitters[itf] = LinkTransmitter(
                        self.engine,
                        speed_bps=1.0,
                        prop_delay=0.0,
                        pull=lambda: None,
                        deliver=lambda frame: None,
                    )

            sw = SimSwitch(
                self.engine,
                click,
                route_fn=make_route_fn(node.name, self._route_tables[node.name]),
                transmitters=transmitters,
                mode=cfg.switch_mode,
                idle_cost=cfg.idle_cost,
            )
            self.switches[node.name] = sw
            # Shortcut the on-idle hook to the owning driver's wake —
            # same effect as Simulator._on_tx_idle without two lookups
            # per drained transmission.
            for itf in click.interfaces:
                if net.has_link(node.name, itf):
                    sw.transmitters[itf].on_idle = sw._driver_of[itf].wake

        self.ports: dict[tuple[str, str], OutputPort] = {}

    def _register_deliver(self, dst_name: str, from_itf: str):
        """Create + register the delivery hook for one directed link.

        Switch-target hooks on the fast backend are recorded for
        :meth:`_finalize_delivers`, which patches in the fully inlined
        handler once the receiving :class:`SimSwitch` exists.
        """
        deliver = self._make_deliver(dst_name, from_itf)
        kind = self.engine.register_handler(deliver)
        if self.config.fast and self.network.node(dst_name).is_switch:
            self._deliver_fixups.append((kind, dst_name, from_itf))
        return deliver, kind

    def _finalize_delivers(self) -> None:
        """Patch switch-target delivery handlers with inlined closures
        binding the receiving switch's rx push and driver directly.

        Only the not-yet-patched tail is processed: rebinds that add no
        new ports re-patch nothing."""
        if not self.config.fast:
            return
        engine = self.engine
        pending, self._fixups_patched = (
            self._deliver_fixups[self._fixups_patched :],
            len(self._deliver_fixups),
        )
        for kind, dst_name, from_itf in pending:
            push, driver = self.switches[dst_name]._rx_of[from_itf]
            engine.replace_handler(
                kind,
                _make_switch_deliver(
                    engine,
                    self._p_hits,
                    self._hop_counts,
                    self._n_nodes,
                    self._node_index[dst_name],
                    push,
                    driver,
                ),
            )

    def _make_deliver(self, dst_name: str, from_itf: str):
        """Delivery hook for the link ``from_itf -> dst_name``.

        The destination's kind is resolved once (the network is
        immutable for the simulator's lifetime); the fast backend also
        binds its flat-accounting path here.
        """
        is_switch = self.network.node(dst_name).is_switch
        node_idx = self._node_index[dst_name]
        switches = self.switches
        if self.config.fast:
            engine = self.engine
            hits = self._p_hits
            if is_switch:
                # Placeholder only: _finalize_delivers swaps in the
                # real (inlined) _make_switch_deliver closure before
                # any event can fire — the receiving SimSwitch does not
                # exist yet here.  Failing loudly beats silently
                # dropping hop records if that ordering ever breaks.
                def deliver(frame: QueuedFrame, _unused=None) -> None:
                    raise RuntimeError(
                        f"delivery into {dst_name!r} before "
                        "_finalize_delivers patched the handler"
                    )
            else:
                recv = self._p_recv
                completed = self._p_completed

                def deliver(frame: QueuedFrame, _unused=None) -> None:
                    # Inlined _dest_receive_fast: at the destination the
                    # per-hop fragment count and the completion count
                    # coincide, so one counter serves both.
                    pid = frame.packet_id
                    count = recv[pid] + 1
                    recv[pid] = count
                    if count == frame.n_fragments:
                        now = engine._now
                        completed[pid] = now
                        hits.append((pid, node_idx, now))
        else:
            if is_switch:
                def deliver(frame: QueuedFrame, _unused=None) -> None:
                    self._record_hop(dst_name, frame)
                    switches[dst_name].receive(frame, from_itf)
            else:
                def deliver(frame: QueuedFrame, _unused=None) -> None:
                    self._record_hop(dst_name, frame)
                    self._on_destination_receive(dst_name, frame)
        return deliver

    def _fill_route_tables(self) -> None:
        """(Re)build per-switch ``flow -> (out interface, priority)``
        — in place, so the route closures keep their bindings."""
        for table in self._route_tables.values():
            table.clear()
        for flow in self.flows:
            for sw in flow.intermediate_switches():
                nxt = flow.succ(sw)
                self._route_tables[sw][flow.name] = (
                    nxt,
                    flow.priority_on(sw, nxt),
                )

    def _bind_flows(self) -> None:
        """Flow-dependent state: forwarding, ports, records, releases."""
        net = self.network
        cfg = self.config

        self._fill_route_tables()

        # Source output ports, one per (source node, first link);
        # existing ports (rebind) are reused as-is — they were reset.
        for flow in self.flows:
            src = flow.source
            nxt = flow.succ(src)
            key = (src, nxt)
            if key in self.ports:
                continue
            link = net.link(src, nxt)
            deliver, deliver_kind = self._register_deliver(nxt, src)
            self.ports[key] = OutputPort(
                self.engine,
                speed_bps=link.speed_bps,
                prop_delay=link.prop_delay,
                deliver=deliver,
                discipline=cfg.source_discipline,
                deliver_kind=deliver_kind,
            )

        # Fresh trace / accounting state.  The containers bound by the
        # delivery closures are cleared in place, not replaced.
        self.trace = SimulationTrace(duration=cfg.duration)
        self._finalized = False
        self._packet_ids = itertools.count()
        self._records: dict[int, PacketRecord] = {}
        self._hop_fragments: dict[tuple[int, str], int] = {}
        self._p_flow: list[str] = []
        self._p_frame: list[int] = []
        self._p_arrival: list[float] = []
        self._p_nfrag: list[int] = []
        self._p_recv.clear()
        self._p_completed.clear()
        self._p_hits.clear()
        self._hop_counts.clear()

        self._finalize_delivers()

        # Schedule all frame releases.
        if cfg.fast:
            self._schedule_releases_fast()
        else:
            for flow in self.flows:
                self._schedule_flow_releases(flow)

    # ------------------------------------------------------------------
    # Topology reuse
    # ------------------------------------------------------------------
    def rebind(
        self,
        flows: Sequence[Flow] | None = None,
        config: SimConfig | None = None,
        *,
        release_policies: Mapping[str, ReleasePolicy] | None = None,
        jitter_policies: Mapping[str, JitterPolicy] | None = None,
    ) -> "Simulator":
        """Reuse the built topology for a fresh run.

        Swaps in new flows and/or a new config (``duration`` /
        ``drain_factor`` may differ; topology-baked fields —
        :data:`TOPOLOGY_CONFIG_FIELDS` — must match the built config),
        resets every piece of dynamic state (engine clock/queue, switch
        queues, scheduler passes, driver rotations, transmitters,
        ports, trace) and re-schedules releases.  The subsequent
        :meth:`run` is bit-identical to a freshly constructed
        ``Simulator(network, flows, config)`` — asserted by
        ``tests/test_sim_equivalence.py``.
        """
        cfg = config or self.config
        for name in TOPOLOGY_CONFIG_FIELDS:
            if getattr(cfg, name) != getattr(self._built_config, name):
                raise ValueError(
                    f"rebind: config field {name!r} is baked into the "
                    f"built topology ({getattr(self._built_config, name)!r}"
                    f" -> {getattr(cfg, name)!r}); build a new Simulator"
                )
        new_flows = self.flows if flows is None else tuple(flows)
        check_unique_names(new_flows)
        for f in new_flows:
            validate_route(self.network, f.route)

        self.flows = new_flows
        self.config = cfg
        if release_policies is not None:
            self._release = dict(release_policies)
        if jitter_policies is not None:
            self._jitter = dict(jitter_policies)

        self.engine.reset()
        for sw in self.switches.values():
            sw.reset()
            for tx in sw.transmitters.values():
                tx.reset()
        for port in self.ports.values():
            port.reset()

        self._bind_flows()
        return self

    # ------------------------------------------------------------------
    # Compatibility hooks (kept for tests / external drivers)
    # ------------------------------------------------------------------
    def _pull_tx(self, switch: str, interface: str):
        return self.switches[switch].pull_tx(interface)

    def _on_tx_idle(self, switch: str, interface: str) -> None:
        self.switches[switch].on_tx_idle(interface)

    # ------------------------------------------------------------------
    # Traffic injection — reference backend (``fast=False``)
    # ------------------------------------------------------------------
    def _schedule_flow_releases(self, flow: Flow) -> None:
        policy = self._release.get(flow.name, EagerRelease())
        jitter_policy = self._jitter.get(flow.name, SpreadJitterPolicy())
        spec = flow.spec
        src = flow.source
        nxt = flow.succ(src)
        port = self.ports[(src, nxt)]
        first_prio = flow.priority_on(src, nxt)

        for arrival, k in policy.arrivals(spec, self.config.duration):
            pkt = packetize(
                spec.payload_bits[k], flow.transport, self.config.packetization
            )
            packet_id = next(self._packet_ids)
            record = PacketRecord(
                packet_id=packet_id,
                flow=flow.name,
                frame=k,
                arrival=arrival,
                n_fragments=pkt.n_eth_frames,
            )
            self._records[packet_id] = record
            self.trace.packets.append(record)

            offsets = jitter_policy.offsets(pkt.n_eth_frames, spec.jitters[k])
            for frag_idx, (bits, off) in enumerate(
                zip(pkt.fragment_wire_bits, offsets)
            ):
                frame = QueuedFrame(
                    flow=flow.name,
                    wire_bits=bits,
                    priority=first_prio,
                    packet_id=packet_id,
                    fragment=frag_idx,
                    n_fragments=pkt.n_eth_frames,
                    enqueued_at=arrival + off,
                )
                self.engine.schedule(arrival + off, port.enqueue, frame)

    # ------------------------------------------------------------------
    # Traffic injection — fast backend
    # ------------------------------------------------------------------
    def _schedule_releases_fast(self) -> None:
        """Precompute every release and bulk-load the engine.

        Packetization runs once per distinct ``(payload_bits,
        transport)`` class, jitter offsets once per ``(fragment count,
        jitter)`` class, and the flow's ``(arrival + offset)`` release
        instants come from one numpy broadcast per flow (identical
        IEEE-754 additions to the reference loop, hence bit-equal).
        The assembled records are heapified in one ``schedule_many``
        call; their order — flow by flow, arrival by arrival, fragment
        by fragment — matches the reference loop's schedule order, so
        sequence numbers (and therefore simultaneous-event pop order)
        are identical.
        """
        cfg = self.config
        duration = cfg.duration
        pkt_cache: dict[tuple, object] = {}
        off_cache: dict[tuple, np.ndarray] = {}
        events: list[tuple] = []
        append = events.append
        p_flow = self._p_flow
        p_frame = self._p_frame
        p_arrival = self._p_arrival
        p_nfrag = self._p_nfrag
        p_recv = self._p_recv
        p_completed = self._p_completed
        pid = len(p_arrival)

        for flow in self.flows:
            policy = self._release.get(flow.name, EagerRelease())
            jitter_policy = self._jitter.get(flow.name, SpreadJitterPolicy())
            spec = flow.spec
            src = flow.source
            nxt = flow.succ(src)
            kind = self.ports[(src, nxt)].enqueue_kind
            first_prio = flow.priority_on(src, nxt)
            fname = flow.name

            # One packetization + offset vector per frame class.
            pkts = []
            offs = []
            for k in range(spec.n_frames):
                key = (spec.payload_bits[k], flow.transport)
                pkt = pkt_cache.get(key)
                if pkt is None:
                    pkt = packetize(
                        spec.payload_bits[k], flow.transport, cfg.packetization
                    )
                    pkt_cache[key] = pkt
                pkts.append(pkt)
                # One offset vector per (policy, fragment count,
                # jitter) class; unhashable custom policies simply
                # skip the cache.
                okey: tuple | None
                okey = (jitter_policy, pkt.n_eth_frames, spec.jitters[k])
                try:
                    off = off_cache.get(okey)
                except TypeError:
                    okey = None
                    off = None
                if off is None:
                    off = np.asarray(
                        jitter_policy.offsets(
                            pkt.n_eth_frames, spec.jitters[k]
                        ),
                        dtype=np.float64,
                    )
                    if okey is not None:
                        off_cache[okey] = off
                offs.append(off)

            arrivals = list(policy.arrivals(spec, duration))
            if not arrivals:
                continue
            arr = np.array([a for a, _ in arrivals], dtype=np.float64)
            ks = [k for _, k in arrivals]
            nfrags = np.fromiter(
                (pkts[k].n_eth_frames for k in ks), dtype=np.intp, count=len(ks)
            )
            # All (arrival, offset) release triples of the flow at once.
            times = (
                np.repeat(arr, nfrags) + np.concatenate([offs[k] for k in ks])
            ).tolist()

            idx = 0
            for (arrival, k) in arrivals:
                pkt = pkts[k]
                wire = pkt.fragment_wire_bits
                nf = pkt.n_eth_frames
                p_flow.append(fname)
                p_frame.append(k)
                p_arrival.append(arrival)
                p_nfrag.append(nf)
                p_recv.append(0)
                p_completed.append(None)
                for frag_idx in range(nf):
                    t = times[idx]
                    idx += 1
                    append(
                        (
                            t,
                            kind,
                            make_frame(
                                fname,
                                wire[frag_idx],
                                first_prio,
                                pid,
                                frag_idx,
                                nf,
                                t,
                            ),
                            None,
                        )
                    )
                pid += 1

        self.engine.schedule_many(events)

    # ------------------------------------------------------------------
    # Completion — reference backend
    # ------------------------------------------------------------------
    def _record_hop(self, node: str, frame: QueuedFrame) -> None:
        """Track per-node fragment arrival; stamp the node when the
        packet's last fragment lands there (per-hop latency records)."""
        record = self._records.get(frame.packet_id)
        if record is None:
            return
        key = (frame.packet_id, node)
        count = self._hop_fragments.get(key, 0) + 1
        self._hop_fragments[key] = count
        if count == record.n_fragments:
            record.node_arrivals[node] = self.engine.now
            del self._hop_fragments[key]

    def _on_destination_receive(self, node: str, frame: QueuedFrame) -> None:
        record = self._records.get(frame.packet_id)
        if record is None:
            return
        record.fragments_received += 1
        if record.fragments_received == record.n_fragments:
            record.completed = self.engine.now

    # ------------------------------------------------------------------
    # Completion — fast backend: the per-fragment accounting is inlined
    # into the delivery closures (see _make_deliver); records deferred.
    # ------------------------------------------------------------------
    def _finalize_trace(self) -> None:
        """Materialise :class:`PacketRecord` objects from the flat
        arrays — in packet-id order, i.e. exactly the order the
        reference backend appended them at release-scheduling time."""
        records = [
            PacketRecord(
                packet_id=pid,
                flow=self._p_flow[pid],
                frame=self._p_frame[pid],
                arrival=self._p_arrival[pid],
                n_fragments=self._p_nfrag[pid],
                fragments_received=self._p_recv[pid],
                completed=self._p_completed[pid],
            )
            for pid in range(len(self._p_arrival))
        ]
        names = self._node_names
        for pid, node_idx, t in self._p_hits:
            records[pid].node_arrivals[names[node_idx]] = t
        self.trace.packets.extend(records)
        self._finalized = True

    # ------------------------------------------------------------------
    def run(self) -> SimulationTrace:
        """Release traffic, drain, and return the trace."""
        horizon = self.config.duration * (1.0 + self.config.drain_factor)
        reg = _telemetry.REGISTRY
        if reg is None:
            self.engine.run(until=horizon)
        else:
            before = self.engine.events_processed
            start = time.perf_counter()
            self.engine.run(until=horizon)
            reg.observe("sim.run_s", time.perf_counter() - start)
            reg.add("sim.runs")
            reg.add("sim.events", self.engine.events_processed - before)
        if self.config.fast and not self._finalized:
            self._finalize_trace()
        self.trace.events_processed = self.engine.events_processed
        return self.trace


def simulate(
    network: Network,
    flows: Sequence[Flow],
    *,
    duration: float = 1.0,
    config: SimConfig | None = None,
    release_policies: Mapping[str, ReleasePolicy] | None = None,
    jitter_policies: Mapping[str, JitterPolicy] | None = None,
) -> SimulationTrace:
    """One-call convenience wrapper around :class:`Simulator`.

    ``config`` overrides ``duration`` when both are given.
    """
    cfg = config or SimConfig(duration=duration)
    sim = Simulator(
        network,
        flows,
        cfg,
        release_policies=release_policies,
        jitter_policies=jitter_policies,
    )
    return sim.run()
