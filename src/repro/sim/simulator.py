"""Top-level simulator: build a network of simulated components and run.

:func:`simulate` wires together, from the same :class:`~repro.model`
objects the analysis consumes:

* one :class:`~repro.sim.host.OutputPort` per (source node, first link)
  pair, fed by each flow's release policy;
* one :class:`~repro.sim.swnode.SimSwitch` per switch node, with a
  :class:`~repro.sim.nic.LinkTransmitter` per outgoing interface;
* destination sinks recording per-packet completion.

Per-flow forwarding uses the flow's pre-specified route and per-link
802.1p priorities — exactly the information the paper's operator
provisions into the switches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.packetization import DEFAULT_CONFIG, PacketizationConfig, packetize
from repro.model.flow import Flow, check_unique_names
from repro.model.network import Network, NodeKind
from repro.model.routing import validate_route
from repro.sim.engine import EventEngine
from repro.sim.host import OutputPort
from repro.sim.nic import LinkTransmitter
from repro.sim.release import (
    EagerRelease,
    JitterPolicy,
    ReleasePolicy,
    SpreadJitterPolicy,
)
from repro.sim.swnode import SimSwitch
from repro.sim.trace import PacketRecord, SimulationTrace
from repro.switch.click import ClickSwitch
from repro.switch.queues import QueuedFrame


@dataclass(frozen=True)
class SimConfig:
    """Simulation knobs.

    Attributes
    ----------
    duration:
        Horizon in seconds; frames arriving up to the horizon are
        released, and the run continues until in-flight packets drain
        (bounded by ``drain_factor * duration``).
    switch_mode:
        ``"event"`` (efficient) or ``"rotation"`` (pessimistic, fixed
        ``CIRC`` rotation) — see :mod:`repro.sim.swnode`.
    idle_cost:
        Cost of a no-work task dispatch in event mode (0 = free).
    source_discipline:
        ``"fifo"`` or ``"priority"`` output queues at sources.
    packetization:
        Wire model; must match the analysis options when validating.
    drain_factor:
        Extra time (fraction of ``duration``) allowed for draining.
    nic_fifo_capacity:
        Capacity of every switch NIC FIFO in Ethernet frames; ``None``
        (default) models the analysis' no-loss assumption.  A finite
        value enables overflow/failure-injection experiments — dropped
        fragments leave their UDP packet permanently incomplete.
    priority_levels:
        Number of 802.1p levels enforced by switch output queues
        (commercial switches support 2-8); ``None`` = unlimited.
    """

    duration: float = 1.0
    switch_mode: str = "event"
    idle_cost: float = 0.0
    source_discipline: str = "fifo"
    packetization: PacketizationConfig = DEFAULT_CONFIG
    drain_factor: float = 0.5
    nic_fifo_capacity: int | None = None
    priority_levels: int | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.drain_factor < 0:
            raise ValueError("drain_factor must be >= 0")


class Simulator:
    """Builds and runs one simulation instance."""

    def __init__(
        self,
        network: Network,
        flows: Sequence[Flow],
        config: SimConfig | None = None,
        *,
        release_policies: Mapping[str, ReleasePolicy] | None = None,
        jitter_policies: Mapping[str, JitterPolicy] | None = None,
    ):
        check_unique_names(flows)
        for f in flows:
            validate_route(network, f.route)
        self.network = network
        self.flows = tuple(flows)
        self.config = config or SimConfig()
        self.engine = EventEngine()
        self.trace = SimulationTrace(duration=self.config.duration)
        self._release = dict(release_policies or {})
        self._jitter = dict(jitter_policies or {})
        self._packet_ids = itertools.count()
        self._records: dict[int, PacketRecord] = {}
        self._hop_fragments: dict[tuple[int, str], int] = {}

        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        net = self.network
        cfg = self.config

        # Destination sinks: (node, packet) completion recording.
        def make_deliver_to_endnode(node_name: str):
            def deliver(frame: QueuedFrame) -> None:
                self._on_destination_receive(node_name, frame)

            return deliver

        # Switches first (need their receive hooks for transmitters).
        self.switches: dict[str, SimSwitch] = {}
        switch_nodes = [n for n in net.nodes() if n.is_switch]

        # Build ClickSwitch structures.  Interfaces of a switch = all
        # distinct neighbours (either direction) — answered by the
        # network's incrementally-maintained adjacency maps instead of
        # a per-switch rescan of every link (O(nodes*links) in total).
        clicks: dict[str, ClickSwitch] = {}
        for node in switch_nodes:
            clicks[node.name] = ClickSwitch(
                node.name,
                net.interfaces_of(node.name),
                node.switch,
                priority_levels=cfg.priority_levels,
                nic_fifo_capacity=cfg.nic_fifo_capacity,
            )

        # Forwarding tables: flow -> per-switch (out interface, priority).
        self._forwarding: dict[str, dict[str, tuple[str, int]]] = {}
        for flow in self.flows:
            table: dict[str, tuple[str, int]] = {}
            for sw in flow.intermediate_switches():
                nxt = flow.succ(sw)
                table[sw] = (nxt, flow.priority_on(sw, nxt))
            self._forwarding[flow.name] = table

        # Create SimSwitch objects with their egress transmitters.
        # Transmitter delivery closures need the receiving object, which
        # may itself be a switch we have not created yet — resolve lazily.
        def make_deliver(dst_name: str, from_itf: str):
            def deliver(frame: QueuedFrame) -> None:
                self._record_hop(dst_name, frame)
                dst_node = net.node(dst_name)
                if dst_node.is_switch:
                    self.switches[dst_name].receive(frame, from_itf)
                else:
                    self._on_destination_receive(dst_name, frame)

            return deliver

        for node in switch_nodes:
            click = clicks[node.name]
            transmitters: dict[str, LinkTransmitter] = {}
            for itf in click.interfaces:
                if not net.has_link(node.name, itf):
                    continue  # receive-only interface
                link = net.link(node.name, itf)
                transmitters[itf] = LinkTransmitter(
                    self.engine,
                    speed_bps=link.speed_bps,
                    prop_delay=link.prop_delay,
                    pull=(lambda s=node.name, i=itf: self._pull_tx(s, i)),
                    deliver=make_deliver(itf, node.name),
                    on_idle=(lambda s=node.name, i=itf: self._on_tx_idle(s, i)),
                )
            # Receive-only interfaces still need queue structures (they
            # exist in ClickSwitch); SimSwitch requires a transmitter per
            # interface, so give dead interfaces a null transmitter.
            for itf in click.interfaces:
                if itf not in transmitters:
                    transmitters[itf] = LinkTransmitter(
                        self.engine,
                        speed_bps=1.0,
                        prop_delay=0.0,
                        pull=lambda: None,
                        deliver=lambda frame: None,
                    )

            def make_route_fn(sw_name: str):
                def route_fn(frame: QueuedFrame) -> tuple[str, int]:
                    try:
                        return self._forwarding[frame.flow][sw_name]
                    except KeyError:
                        raise KeyError(
                            f"switch {sw_name!r}: no forwarding entry for "
                            f"flow {frame.flow!r}"
                        ) from None

                return route_fn

            self.switches[node.name] = SimSwitch(
                self.engine,
                click,
                route_fn=make_route_fn(node.name),
                transmitters=transmitters,
                mode=cfg.switch_mode,
                idle_cost=cfg.idle_cost,
            )

        # Source output ports, one per (source node, first link).
        self.ports: dict[tuple[str, str], OutputPort] = {}
        for flow in self.flows:
            src = flow.source
            nxt = flow.succ(src)
            key = (src, nxt)
            if key in self.ports:
                continue
            link = net.link(src, nxt)
            self.ports[key] = OutputPort(
                self.engine,
                speed_bps=link.speed_bps,
                prop_delay=link.prop_delay,
                deliver=make_deliver(nxt, src),
                discipline=cfg.source_discipline,
            )

        # Schedule all frame releases.
        for flow in self.flows:
            self._schedule_flow_releases(flow)

    def _pull_tx(self, switch: str, interface: str):
        return self.switches[switch].pull_tx(interface)

    def _on_tx_idle(self, switch: str, interface: str) -> None:
        self.switches[switch].on_tx_idle(interface)

    # ------------------------------------------------------------------
    # Traffic injection
    # ------------------------------------------------------------------
    def _schedule_flow_releases(self, flow: Flow) -> None:
        policy = self._release.get(flow.name, EagerRelease())
        jitter_policy = self._jitter.get(flow.name, SpreadJitterPolicy())
        spec = flow.spec
        src = flow.source
        nxt = flow.succ(src)
        port = self.ports[(src, nxt)]
        first_prio = flow.priority_on(src, nxt)

        for arrival, k in policy.arrivals(spec, self.config.duration):
            pkt = packetize(
                spec.payload_bits[k], flow.transport, self.config.packetization
            )
            packet_id = next(self._packet_ids)
            record = PacketRecord(
                packet_id=packet_id,
                flow=flow.name,
                frame=k,
                arrival=arrival,
                n_fragments=pkt.n_eth_frames,
            )
            self._records[packet_id] = record
            self.trace.packets.append(record)

            offsets = jitter_policy.offsets(pkt.n_eth_frames, spec.jitters[k])
            for frag_idx, (bits, off) in enumerate(
                zip(pkt.fragment_wire_bits, offsets)
            ):
                frame = QueuedFrame(
                    flow=flow.name,
                    wire_bits=bits,
                    priority=first_prio,
                    packet_id=packet_id,
                    fragment=frag_idx,
                    n_fragments=pkt.n_eth_frames,
                    enqueued_at=arrival + off,
                )
                self.engine.schedule(arrival + off, port.enqueue, frame)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _record_hop(self, node: str, frame: QueuedFrame) -> None:
        """Track per-node fragment arrival; stamp the node when the
        packet's last fragment lands there (per-hop latency records)."""
        record = self._records.get(frame.packet_id)
        if record is None:
            return
        key = (frame.packet_id, node)
        count = self._hop_fragments.get(key, 0) + 1
        self._hop_fragments[key] = count
        if count == record.n_fragments:
            record.node_arrivals[node] = self.engine.now
            del self._hop_fragments[key]

    def _on_destination_receive(self, node: str, frame: QueuedFrame) -> None:
        record = self._records.get(frame.packet_id)
        if record is None:
            return
        record.fragments_received += 1
        if record.fragments_received == record.n_fragments:
            record.completed = self.engine.now

    # ------------------------------------------------------------------
    def run(self) -> SimulationTrace:
        """Release traffic, drain, and return the trace."""
        horizon = self.config.duration * (1.0 + self.config.drain_factor)
        self.engine.run(until=horizon)
        self.trace.events_processed = self.engine.events_processed
        return self.trace


def simulate(
    network: Network,
    flows: Sequence[Flow],
    *,
    duration: float = 1.0,
    config: SimConfig | None = None,
    release_policies: Mapping[str, ReleasePolicy] | None = None,
    jitter_policies: Mapping[str, JitterPolicy] | None = None,
) -> SimulationTrace:
    """One-call convenience wrapper around :class:`Simulator`.

    ``config`` overrides ``duration`` when both are given.
    """
    cfg = config or SimConfig(duration=duration)
    sim = Simulator(
        network,
        flows,
        cfg,
        release_policies=release_policies,
        jitter_policies=jitter_policies,
    )
    return sim.run()
