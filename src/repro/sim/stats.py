"""Post-run statistics of a simulation: link/switch/queue utilisation.

Operates on a :class:`~repro.sim.simulator.Simulator` instance after
``run()``; used by the validation experiments to confirm the simulator
actually loaded the network as intended (a sound bound over an idle
network proves nothing) and by operators as a what-happened report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.util.tables import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class LinkStats:
    """Wire-level statistics of one directed link."""

    src: str
    dst: str
    frames_sent: int
    bits_sent: int
    utilization: float  # fraction of the run the wire was busy


@dataclass(frozen=True)
class SwitchStats:
    """Processor-level statistics of one switch."""

    name: str
    dispatches: int
    busy_time: float
    busy_fraction: float
    frames_forwarded: int
    frames_dropped: int


@dataclass(frozen=True)
class NetworkStats:
    elapsed: float
    links: tuple[LinkStats, ...]
    switches: tuple[SwitchStats, ...]

    def link(self, src: str, dst: str) -> LinkStats:
        for l in self.links:
            if l.src == src and l.dst == dst:
                return l
        raise KeyError(f"no stats for link {src!r}->{dst!r}")

    def switch(self, name: str) -> SwitchStats:
        for s in self.switches:
            if s.name == name:
                return s
        raise KeyError(f"no stats for switch {name!r}")

    @property
    def total_drops(self) -> int:
        return sum(s.frames_dropped for s in self.switches)

    def render(self) -> str:
        lt = Table(
            ["link", "frames", "bits", "utilisation"],
            title="link statistics",
        )
        for l in sorted(self.links, key=lambda l: (l.src, l.dst)):
            lt.add_row(
                [f"{l.src}->{l.dst}", l.frames_sent, l.bits_sent,
                 f"{l.utilization:.4f}"]
            )
        st = Table(
            ["switch", "dispatches", "busy fraction", "forwarded", "dropped"],
            title="switch statistics",
        )
        for s in sorted(self.switches, key=lambda s: s.name):
            st.add_row(
                [s.name, s.dispatches, f"{s.busy_fraction:.4f}",
                 s.frames_forwarded, s.frames_dropped]
            )
        return lt.render() + "\n" + st.render()


def collect_stats(sim: "Simulator") -> NetworkStats:
    """Gather link and switch statistics from a completed simulation."""
    elapsed = max(sim.engine.now, 1e-12)
    links: list[LinkStats] = []

    # Source output ports.
    for (src, dst), port in sim.ports.items():
        tx = port.transmitter
        links.append(
            LinkStats(
                src=src,
                dst=dst,
                frames_sent=tx.frames_sent,
                bits_sent=tx.bits_sent,
                utilization=tx.bits_sent / tx.speed_bps / elapsed,
            )
        )

    switches: list[SwitchStats] = []
    for name, sw in sim.switches.items():
        for itf, tx in sw.transmitters.items():
            if not sim.network.has_link(name, itf):
                continue  # null transmitter of a receive-only interface
            links.append(
                LinkStats(
                    src=name,
                    dst=itf,
                    frames_sent=tx.frames_sent,
                    bits_sent=tx.bits_sent,
                    utilization=tx.bits_sent / tx.speed_bps / elapsed,
                )
            )
        dispatches = sum(d.dispatches for d in sw.drivers)
        busy = sum(d.busy_time for d in sw.drivers)
        dropped = sum(q.dropped for q in sw.click.rx_fifo.values())
        dropped += sum(q.dropped for q in sw.click.tx_fifo.values())
        n_proc = max(1, len(sw.drivers))
        switches.append(
            SwitchStats(
                name=name,
                dispatches=dispatches,
                busy_time=busy,
                busy_fraction=busy / (elapsed * n_proc),
                frames_forwarded=sw.frames_forwarded,
                frames_dropped=dropped,
            )
        )
    return NetworkStats(
        elapsed=elapsed, links=tuple(links), switches=tuple(switches)
    )
