"""Per-packet records and aggregate simulation results."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence  # noqa: F401 (Sequence in hints)


@dataclass
class PacketRecord:
    """Life of one UDP packet (one GMF frame instance).

    Attributes
    ----------
    flow:
        Flow name.
    frame:
        GMF frame index ``k``.
    arrival:
        Time the frame arrived at the source (deadline reference point).
    n_fragments:
        Ethernet frames the packet fragments into.
    completed:
        Time the *last* fragment reached the destination, or None while
        in flight / past the simulation horizon.
    """

    packet_id: int
    flow: str
    frame: int
    arrival: float
    n_fragments: int
    fragments_received: int = 0
    completed: float | None = None
    #: node name -> time the packet's *last* fragment arrived there
    #: (per-hop latency localisation; populated by the simulator).
    node_arrivals: dict = field(default_factory=dict)

    @property
    def response(self) -> float | None:
        """End-to-end response (None while incomplete)."""
        if self.completed is None:
            return None
        return self.completed - self.arrival

    def hop_latencies(self, route: Sequence[str]) -> list[tuple[str, float]]:
        """Per-hop ``(node, cumulative latency)`` along ``route``.

        Only nodes where the full packet has arrived appear; the last
        entry equals the end-to-end response when the packet completed.
        """
        out: list[tuple[str, float]] = []
        for node in route[1:]:
            if node in self.node_arrivals:
                out.append((node, self.node_arrivals[node] - self.arrival))
        return out


@dataclass
class SimulationTrace:
    """Everything measured during one simulation run."""

    duration: float
    packets: list[PacketRecord] = field(default_factory=list)
    events_processed: int = 0

    # ------------------------------------------------------------------
    def completed_packets(
        self, flow: str | None = None, frame: int | None = None
    ) -> list[PacketRecord]:
        """Completed packet records, optionally filtered."""
        return [
            p
            for p in self.packets
            if p.completed is not None
            and (flow is None or p.flow == flow)
            and (frame is None or p.frame == frame)
        ]

    def responses(self, flow: str, frame: int | None = None) -> list[float]:
        """All observed response times of a flow (or one of its frames)."""
        return [p.response for p in self.completed_packets(flow, frame)]

    def worst_response(self, flow: str, frame: int | None = None) -> float:
        """Largest observed response (``-inf`` when nothing completed)."""
        responses = self.responses(flow, frame)
        return max(responses) if responses else -math.inf

    def mean_response(self, flow: str, frame: int | None = None) -> float:
        responses = self.responses(flow, frame)
        if not responses:
            return math.nan
        return sum(responses) / len(responses)

    def response_percentile(
        self, flow: str, q: float, frame: int | None = None
    ) -> float:
        """Nearest-rank percentile of a flow's observed responses.

        ``q = 50`` is the median, ``q = 99`` the tail operators care
        about when comparing against the worst-case bound.  NaN when no
        packet completed.
        """
        responses = sorted(self.responses(flow, frame))
        if not responses:
            return math.nan
        return percentile(responses, q)

    def count_completed(self, flow: str | None = None) -> int:
        return len(self.completed_packets(flow))

    def count_incomplete(self, flow: str | None = None) -> int:
        """Packets still in flight at the horizon (backlog indicator)."""
        return sum(
            1
            for p in self.packets
            if p.completed is None and (flow is None or p.flow == flow)
        )

    def deadline_misses(self, deadlines: Mapping[str, Sequence[float]]) -> int:
        """Count completed packets whose response exceeded the frame deadline.

        ``deadlines`` maps flow name to its per-frame deadline tuple.
        """
        misses = 0
        for p in self.packets:
            if p.completed is None or p.flow not in deadlines:
                continue
            if p.response > deadlines[p.flow][p.frame]:
                misses += 1
        return misses

    def flows(self) -> list[str]:
        return sorted({p.flow for p in self.packets})


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (``0 < q <= 100``)."""
    if not sorted_values:
        raise ValueError("no values")
    if not (0.0 < q <= 100.0):
        raise ValueError("q must be in (0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]
