"""Discrete-event simulator of the multihop software-switched network.

The paper's evaluation platform is a physical Click-based switch; this
simulator is the documented substitution (DESIGN.md): it executes the
same queueing and scheduling mechanisms the analysis models —

* sources releasing GMF frame sequences (with generalized jitter) into
  work-conserving output queues,
* links serialising Ethernet frames at ``linkspeed`` plus propagation,
* switches running per-interface ingress/egress tasks under stride
  (round-robin) scheduling with ``CROUTE``/``CSEND`` costs and
  prioritised output queues —

and measures per-UDP-packet end-to-end response times, which experiment
E4 compares against the analysis bounds (simulated max must never
exceed the bound).

Entry point: :func:`repro.sim.simulator.simulate`.
"""

from repro.sim.engine import EventEngine
from repro.sim.release import (
    BurstJitterPolicy,
    EagerRelease,
    PeriodicRelease,
    RandomRelease,
    ReleasePolicy,
    SpreadJitterPolicy,
)
from repro.sim.trace import PacketRecord, SimulationTrace
from repro.sim.simulator import SimConfig, Simulator, simulate

__all__ = [
    "BurstJitterPolicy",
    "EagerRelease",
    "EventEngine",
    "PacketRecord",
    "PeriodicRelease",
    "RandomRelease",
    "ReleasePolicy",
    "SimConfig",
    "SimulationTrace",
    "Simulator",
    "SpreadJitterPolicy",
    "simulate",
]
