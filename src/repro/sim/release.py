"""Frame-release processes at source nodes.

A GMF flow specifies only *minimum* separations ``T_i^k``; how the
source actually releases frames is a policy.  The policies here cover
the spectrum the validation experiments need:

* :class:`EagerRelease` — every separation exactly at its minimum (the
  densest legal arrival pattern; the adversarial default for bound
  validation);
* :class:`PeriodicRelease` — separations scaled by a slack factor
  ``>= 1`` (steady under-utilised sources);
* :class:`RandomRelease` — separations inflated by random slack drawn
  reproducibly from a seeded RNG (realistic bursty-but-legal traffic).

Within one frame, the UDP packet's Ethernet fragments are released over
the generalized-jitter window ``[t, t + GJ_i^k)`` according to a jitter
policy:

* :class:`BurstJitterPolicy` — all fragments at ``t`` (no spread);
* :class:`SpreadJitterPolicy` — fragments spaced evenly with the last
  one approaching the window's end (maximally stretched release).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

import numpy as np

from repro.model.gmf import GmfSpec


class ReleasePolicy(Protocol):
    """Produces the absolute arrival times of a flow's frame sequence."""

    def arrivals(self, spec: GmfSpec, until: float) -> Iterator[tuple[float, int]]:
        """Yield ``(arrival_time, frame_index)`` pairs up to ``until``."""
        ...


@dataclass(frozen=True)
class EagerRelease:
    """Release every frame exactly at its minimum separation.

    ``phase`` shifts the first arrival; ``start_frame`` rotates which
    frame of the GMF cycle arrives first (the GMF model leaves this
    free, and analyses must hold for every rotation).
    """

    phase: float = 0.0
    start_frame: int = 0

    def arrivals(self, spec: GmfSpec, until: float) -> Iterator[tuple[float, int]]:
        t = self.phase
        k = self.start_frame % spec.n_frames
        while t <= until:
            yield (t, k)
            t += spec.min_separations[k]
            k = (k + 1) % spec.n_frames


@dataclass(frozen=True)
class PeriodicRelease:
    """Separations scaled by a constant ``slack_factor >= 1``."""

    slack_factor: float = 1.0
    phase: float = 0.0
    start_frame: int = 0

    def __post_init__(self) -> None:
        if self.slack_factor < 1.0:
            raise ValueError(
                "slack_factor must be >= 1 (below 1 violates the GMF "
                "minimum separations)"
            )

    def arrivals(self, spec: GmfSpec, until: float) -> Iterator[tuple[float, int]]:
        t = self.phase
        k = self.start_frame % spec.n_frames
        while t <= until:
            yield (t, k)
            t += spec.min_separations[k] * self.slack_factor
            k = (k + 1) % spec.n_frames


@dataclass(frozen=True)
class RandomRelease:
    """Separations inflated by random slack: ``T * (1 + U[0, spread])``.

    Seeded, so simulations are reproducible.  ``spread = 0`` degenerates
    to :class:`EagerRelease`.
    """

    seed: int = 0
    spread: float = 0.5
    phase: float = 0.0
    start_frame: int = 0

    def __post_init__(self) -> None:
        if self.spread < 0:
            raise ValueError("spread must be >= 0")

    def arrivals(self, spec: GmfSpec, until: float) -> Iterator[tuple[float, int]]:
        rng = np.random.default_rng(self.seed)
        t = self.phase
        k = self.start_frame % spec.n_frames
        while t <= until:
            yield (t, k)
            slack = 1.0 + rng.uniform(0.0, self.spread)
            t += spec.min_separations[k] * slack
            k = (k + 1) % spec.n_frames


# ----------------------------------------------------------------------
# Generalized-jitter policies: fragment offsets within [t, t + GJ)
# ----------------------------------------------------------------------
class JitterPolicy(Protocol):
    """Places a packet's fragments inside its generalized-jitter window."""

    def offsets(self, n_fragments: int, jitter: float) -> Sequence[float]:
        ...


@dataclass(frozen=True)
class BurstJitterPolicy:
    """All Ethernet fragments released together at the frame arrival."""

    def offsets(self, n_fragments: int, jitter: float) -> Sequence[float]:
        return [0.0] * n_fragments


@dataclass(frozen=True)
class SpreadJitterPolicy:
    """Fragments spread across the window, first at 0, last near ``GJ``.

    The paper defines the window as half-open ``[t, t + GJ)``; the last
    fragment is placed at ``GJ * (F-1)/F`` so releases stay inside it.
    """

    def offsets(self, n_fragments: int, jitter: float) -> Sequence[float]:
        if n_fragments == 1 or jitter <= 0.0:
            return [0.0] * n_fragments
        return [jitter * i / n_fragments for i in range(n_fragments)]
