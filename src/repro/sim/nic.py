"""Network-interface and link dynamics.

A :class:`LinkTransmitter` serialises Ethernet frames onto a directed
link at ``linkspeed`` bits/s, one at a time (non-preemptive — the basis
of the analysis' ``MFT`` blocking term), and delivers each frame to the
receiving node ``prop`` seconds after its last bit leaves.

The transmitter pulls from an attached queue-like *source* via a
callback, so the same class serves both endpoint output ports (pull
from a work-conserving queue) and switch NICs (pull from the tx FIFO,
notifying the egress task when the FIFO drains).

Completion and delivery events go through the engine's flat-record
handler table: ``_finish`` is registered once at construction, and
``deliver`` either arrives pre-registered (``deliver_kind``, the
simulator's fast path) or is wrapped into a two-operand handler here —
either way no per-event closure or argument tuple is allocated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import EventEngine
from repro.switch.queues import QueuedFrame

#: Delivers a frame to the receiving node: ``(frame, arrival_time)``.
DeliverFn = Callable[[QueuedFrame], None]
#: Pulls the next frame to transmit, or None when nothing is pending.
PullFn = Callable[[], Optional[QueuedFrame]]


class LinkTransmitter:
    """Serialises frames over one directed link.

    Parameters
    ----------
    engine:
        The event engine.
    speed_bps, prop_delay:
        Link characteristics.
    pull:
        Called whenever the transmitter is ready for the next frame.
    deliver:
        Called (at the receiver's clock) when a frame fully arrives.
    on_idle:
        Optional hook fired when a transmission ends and ``pull``
        returned nothing — switches use it to wake the egress task.
    deliver_kind:
        Optional pre-registered handler-table kind for the delivery
        event (a ``handler(frame, None)`` registered on ``engine``).
        When omitted, ``deliver`` is wrapped and registered here.
    """

    def __init__(
        self,
        engine: EventEngine,
        *,
        speed_bps: float,
        prop_delay: float,
        pull: PullFn,
        deliver: DeliverFn,
        on_idle: Callable[[], None] | None = None,
        deliver_kind: int | None = None,
    ):
        if speed_bps <= 0:
            raise ValueError("linkspeed must be positive")
        self.engine = engine
        self.speed_bps = speed_bps
        self.prop_delay = prop_delay
        self.pull = pull
        self.deliver = deliver
        self.on_idle = on_idle
        self.busy = False
        self.frames_sent = 0
        self.bits_sent = 0
        self.busy_until = 0.0
        self._schedule_call = engine.schedule_call
        self._k_finish = engine.register_handler(self._finish)
        if deliver_kind is None:
            # `self.deliver` is re-read per event so tests may swap it.
            deliver_kind = engine.register_handler(
                lambda frame, _unused, _self=self: _self.deliver(frame)
            )
        self._k_deliver = deliver_kind

    def kick(self) -> None:
        """Notify the transmitter that the source may have a frame.

        Idempotent: does nothing while a transmission is in flight (the
        completion handler pulls the next frame itself).
        """
        if self.busy:
            return
        frame = self.pull()
        if frame is None:
            return
        self._transmit(frame)

    def _transmit(self, frame: QueuedFrame) -> None:
        self.busy = True
        wire_bits = frame.wire_bits
        done = self.engine._now + wire_bits / self.speed_bps
        self.busy_until = done
        self.frames_sent += 1
        self.bits_sent += wire_bits
        self._schedule_call(done, self._k_finish, frame)

    def _finish(self, frame: QueuedFrame, _unused=None) -> None:
        # Deliver after propagation; receiving is independent of the
        # transmitter's next action.
        self._schedule_call(
            self.engine._now + self.prop_delay, self._k_deliver, frame
        )
        nxt = self.pull()
        if nxt is not None:
            self._transmit(nxt)
        else:
            self.busy = False
            if self.on_idle is not None:
                self.on_idle()

    def reset(self) -> None:
        """Back to idle with zeroed counters (topology reuse)."""
        self.busy = False
        self.frames_sent = 0
        self.bits_sent = 0
        self.busy_until = 0.0

    @property
    def utilization_bits(self) -> int:
        """Total bits pushed through this link (diagnostics)."""
        return self.bits_sent
