"""Simulation dynamics of a software Ethernet switch.

Wraps the structural :class:`~repro.switch.click.ClickSwitch` with
event-driven behaviour.  Two processor-driver models are provided; both
are legal executions of the paper's system, so the analysis bound must
dominate either (experiment E4 checks both):

* :class:`EventDriver` (``mode="event"``) — tasks with no work complete
  (almost) instantly; after a full rotation finds no work the processor
  sleeps until new work arrives.  This is the *efficient* execution: a
  realistic Click system under light load.
* :class:`RotationDriver` (``mode="rotation"``) — every task always
  consumes its full ``CROUTE``/``CSEND`` budget, so the rotation has a
  fixed period ``CIRC(N)`` anchored at boot, and an Ethernet frame that
  *just* missed its task's slot waits nearly a full ``CIRC``.  This is
  the *pessimistic* execution the analysis' ``CIRC`` terms model.

Task semantics (Fig. 5): an ingress task moves one frame from its NIC
receive FIFO to the classified output priority queue (cost ``CROUTE``);
an egress task moves the highest-priority frame from its output queue to
the NIC transmit FIFO, but only when that FIFO is empty (cost
``CSEND``).  Work is claimed at dispatch time and its downstream effect
applies at completion (tasks are non-preemptive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.sim.engine import EventEngine
from repro.sim.nic import LinkTransmitter
from repro.switch.click import ClickSwitch, SwitchTask, TaskKind
from repro.switch.queues import QueuedFrame

#: Maps a frame to its (outgoing interface, outgoing priority).
RouteFn = Callable[[QueuedFrame], tuple[str, int]]


class SimSwitch:
    """One simulated switch: queues + processors + egress transmitters."""

    def __init__(
        self,
        engine: EventEngine,
        click: ClickSwitch,
        *,
        route_fn: RouteFn,
        transmitters: Mapping[str, LinkTransmitter],
        mode: str = "event",
        idle_cost: float = 0.0,
    ):
        if mode not in ("event", "rotation"):
            raise ValueError(f"unknown switch mode {mode!r}")
        missing = set(click.interfaces) - set(transmitters)
        if missing:
            raise ValueError(f"switch {click.name!r}: no transmitter for {missing}")
        self.engine = engine
        self.click = click
        self.route_fn = route_fn
        self.transmitters = dict(transmitters)
        self.frames_forwarded = 0

        driver_cls = EventDriver if mode == "event" else RotationDriver
        self.drivers: list[ProcessorDriverBase] = []
        per_proc = click.n_interfaces // click.config.n_processors
        for p in range(click.config.n_processors):
            interfaces = click.interfaces[p * per_proc : (p + 1) * per_proc]
            self.drivers.append(
                driver_cls(
                    engine,
                    self,
                    interfaces,
                    idle_cost=idle_cost,
                    scheduler=click.schedulers[p],
                )
            )
        self._driver_of = {
            itf: self.drivers[click.processor_of[itf]] for itf in click.interfaces
        }

    # ------------------------------------------------------------------
    # External events
    # ------------------------------------------------------------------
    def receive(self, frame: QueuedFrame, from_interface: str) -> None:
        """An Ethernet frame fully arrived on a NIC (after the wire)."""
        stamped = frame.with_enqueue_time(self.engine.now)
        self.click.rx_fifo[from_interface].push(stamped)
        self._driver_of[from_interface].wake()

    def on_tx_idle(self, interface: str) -> None:
        """The NIC transmit path drained; the egress task may refill."""
        self._driver_of[interface].wake()

    def notify_output_enqueued(self, interface: str) -> None:
        self._driver_of[interface].wake()

    # ------------------------------------------------------------------
    # Task work predicates and actions (shared by both drivers)
    # ------------------------------------------------------------------
    def task_has_work(self, task: SwitchTask, at: float) -> bool:
        if task.kind is TaskKind.INGRESS:
            head = self.click.rx_fifo[task.interface].peek()
            return head is not None and head.enqueued_at <= at
        head = self.click.output_queue[task.interface].peek()
        return (
            head is not None
            and head.enqueued_at <= at
            and len(self.click.tx_fifo[task.interface]) == 0
        )

    def claim_work(self, task: SwitchTask) -> QueuedFrame:
        """Dequeue the frame the task will process (dispatch time)."""
        if task.kind is TaskKind.INGRESS:
            return self.click.rx_fifo[task.interface].pop()
        return self.click.output_queue[task.interface].pop()

    def complete_work(self, task: SwitchTask, frame: QueuedFrame) -> None:
        """Apply the task's effect (completion time)."""
        now = self.engine.now
        if task.kind is TaskKind.INGRESS:
            out_itf, priority = self.route_fn(frame)
            if out_itf not in self.click.output_queue:
                raise KeyError(
                    f"switch {self.click.name!r}: routed to unknown "
                    f"interface {out_itf!r}"
                )
            routed = QueuedFrame(
                flow=frame.flow,
                wire_bits=frame.wire_bits,
                priority=priority,
                packet_id=frame.packet_id,
                fragment=frame.fragment,
                n_fragments=frame.n_fragments,
                enqueued_at=now,
            )
            self.click.output_queue[out_itf].push(routed)
            self.notify_output_enqueued(out_itf)
        else:
            self.click.tx_fifo[task.interface].push(frame.with_enqueue_time(now))
            self.frames_forwarded += 1
            self.transmitters[task.interface].kick()

    def pull_tx(self, interface: str) -> QueuedFrame | None:
        """Transmitter pull hook: next frame of the NIC transmit FIFO."""
        fifo = self.click.tx_fifo[interface]
        return fifo.pop() if fifo else None

    def has_backlog(self, interfaces: tuple[str, ...]) -> bool:
        """Any pending work on this processor's interfaces?"""
        for itf in interfaces:
            if self.click.rx_fifo[itf]:
                return True
            if self.click.output_queue[itf]:
                return True
        return False


class ProcessorDriverBase:
    """Common state of a processor driver."""

    def __init__(
        self,
        engine: EventEngine,
        switch: SimSwitch,
        interfaces: tuple[str, ...],
        *,
        idle_cost: float,
        scheduler=None,
    ):
        if idle_cost < 0:
            raise ValueError("idle_cost must be >= 0")
        self.engine = engine
        self.switch = switch
        self.interfaces = tuple(interfaces)
        self.idle_cost = idle_cost
        self.scheduler = scheduler
        # Task rotation in Click's insertion order: per interface, the
        # ingress task then the egress task.
        self.tasks: list[SwitchTask] = []
        for task in switch.click.tasks:
            if task.interface in self.interfaces:
                self.tasks.append(task)
        self.dispatches = 0
        self.busy_time = 0.0

    def wake(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EventDriver(ProcessorDriverBase):
    """Efficient execution: idle tasks cost ``idle_cost`` (default 0).

    The processor sleeps after one full rotation without work; any
    enqueue wakes it.  With ``idle_cost == 0`` the rotation through idle
    tasks is instantaneous, so a newly arrived frame is served after at
    most the busy tasks ahead of it — strictly better than the
    ``CIRC``-paced worst case.
    """

    def __init__(self, engine, switch, interfaces, *, idle_cost: float, scheduler=None):
        super().__init__(
            engine, switch, interfaces, idle_cost=idle_cost, scheduler=scheduler
        )
        self._running = False
        self._rotation = 0  # index into self.tasks (round-robin path)
        self._misses = 0
        # Weighted stride allocations must follow the actual scheduler's
        # dispatch order; round-robin uses the equivalent cheap rotation.
        self._use_stride = scheduler is not None and not scheduler.is_round_robin()

    def _next_task(self) -> SwitchTask:
        if self._use_stride:
            return self.scheduler.dispatch().payload
        task = self.tasks[self._rotation]
        self._rotation = (self._rotation + 1) % len(self.tasks)
        return task

    def wake(self) -> None:
        if self._running:
            return
        self._running = True
        self._misses = 0
        self._step()

    def _step(self) -> None:
        """Dispatch tasks until work is found or a full rotation idles."""
        while True:
            if self._misses >= len(self.tasks):
                # One full rotation without work.  Work may have arrived
                # mid-rotation for a task we already passed (possible when
                # idle_cost > 0 spreads the rotation over time), so
                # re-check before sleeping.
                if any(
                    self.switch.task_has_work(t, self.engine.now)
                    for t in self.tasks
                ):
                    self._misses = 0
                else:
                    self._running = False
                    return
            task = self._next_task()
            self.dispatches += 1
            if self.switch.task_has_work(task, self.engine.now):
                self._misses = 0
                frame = self.switch.claim_work(task)
                self.busy_time += task.cost
                self.engine.schedule_in(task.cost, self._complete, task, frame)
                return
            self._misses += 1
            if self.idle_cost > 0.0:
                self.engine.schedule_in(self.idle_cost, self._step)
                return

    def _complete(self, task: SwitchTask, frame: QueuedFrame) -> None:
        self.switch.complete_work(task, frame)
        self._misses = 0
        self._step()


class RotationDriver(ProcessorDriverBase):
    """Pessimistic execution: a fixed rotation anchored at boot.

    Every task's slot recurs with period ``CIRC`` regardless of load;
    a task serves at most one frame per slot, and only frames enqueued
    before the slot starts.  While a processor has no backlog its slots
    are skipped analytically (no events), but the *phase* is preserved,
    so a frame arriving just after its task's slot start waits almost a
    full ``CIRC`` — the worst case the analysis charges per frame.
    """

    def __init__(self, engine, switch, interfaces, *, idle_cost: float, scheduler=None):
        super().__init__(
            engine, switch, interfaces, idle_cost=idle_cost, scheduler=scheduler
        )
        if scheduler is not None and not scheduler.is_round_robin():
            raise ValueError(
                "rotation (pessimistic) mode models the paper's "
                "round-robin configuration; weighted stride tickets "
                "require switch_mode='event'"
            )
        self.offsets: list[float] = []
        acc = 0.0
        for task in self.tasks:
            self.offsets.append(acc)
            acc += task.cost
        self.period = acc  # == CIRC of this processor's partition
        if self.period <= 0.0:
            raise ValueError(
                "rotation mode needs positive task costs (the fixed "
                "rotation has period CIRC = sum of costs); use "
                "switch_mode='event' for zero-cost switches"
            )
        self._armed = False
        self._idle_slots = 0

    # ------------------------------------------------------------------
    def wake(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._idle_slots = 0
        self._arm_next_slot()

    def _arm_next_slot(self) -> None:
        """Schedule the next slot boundary at or after 'now'."""
        now = self.engine.now
        best_time = None
        best_idx = None
        for idx, off in enumerate(self.offsets):
            # Smallest m with m*period + off >= now (strictly: allow ==).
            m = max(0, -(-(now - off) // self.period)) if self.period > 0 else 0
            t = m * self.period + off
            if t < now - 1e-15:
                t += self.period
            if best_time is None or t < best_time - 1e-15:
                best_time = t
                best_idx = idx
        self.engine.schedule(best_time, self._slot, best_idx, best_time)

    def _slot(self, idx: int, start: float) -> None:
        task = self.tasks[idx]
        self.dispatches += 1
        if self.switch.task_has_work(task, start):
            self._idle_slots = 0
            frame = self.switch.claim_work(task)
            self.busy_time += task.cost
            done = start + task.cost
            self.engine.schedule(done, self._complete_slot, task, frame, idx, start)
        else:
            self._idle_slots += 1
            self._after_slot(idx, start)

    def _complete_slot(
        self, task: SwitchTask, frame: QueuedFrame, idx: int, start: float
    ) -> None:
        self.switch.complete_work(task, frame)
        self._after_slot(idx, start)

    def _after_slot(self, idx: int, start: float) -> None:
        # Disarm after a full idle rotation with no backlog; phase is
        # recovered analytically on the next wake().
        if self._idle_slots >= len(self.tasks) and not self.switch.has_backlog(
            self.interfaces
        ):
            self._armed = False
            return
        nxt_idx = (idx + 1) % len(self.tasks)
        nxt_start = start + (
            self.offsets[nxt_idx] - self.offsets[idx]
            if nxt_idx > idx
            else self.period - self.offsets[idx] + self.offsets[nxt_idx]
        )
        self.engine.schedule(nxt_start, self._slot, nxt_idx, nxt_start)
