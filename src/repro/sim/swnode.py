"""Simulation dynamics of a software Ethernet switch.

Wraps the structural :class:`~repro.switch.click.ClickSwitch` with
event-driven behaviour.  Two processor-driver models are provided; both
are legal executions of the paper's system, so the analysis bound must
dominate either (experiment E4 checks both):

* :class:`EventDriver` (``mode="event"``) — tasks with no work complete
  (almost) instantly; after a full rotation finds no work the processor
  sleeps until new work arrives.  This is the *efficient* execution: a
  realistic Click system under light load.
* :class:`RotationDriver` (``mode="rotation"``) — every task always
  consumes its full ``CROUTE``/``CSEND`` budget, so the rotation has a
  fixed period ``CIRC(N)`` anchored at boot, and an Ethernet frame that
  *just* missed its task's slot waits nearly a full ``CIRC``.  This is
  the *pessimistic* execution the analysis' ``CIRC`` terms model.

Task semantics (Fig. 5): an ingress task moves one frame from its NIC
receive FIFO to the classified output priority queue (cost ``CROUTE``);
an egress task moves the highest-priority frame from its output queue to
the NIC transmit FIFO, but only when that FIFO is empty (cost
``CSEND``).  Work is claimed at dispatch time and its downstream effect
applies at completion (tasks are non-preemptive).

Implementation note: the :class:`EventDriver` dispatch rotation is the
simulator's hottest loop (one work-probe per task per dispatch).  For
the paper's round-robin ticket configuration it runs over a prebuilt
per-task table binding each task's queue containers directly, probing
them inline instead of through ``task_has_work``; the probe order,
predicates and claims are exactly those of the method-based path (which
remains in use for weighted-stride configurations and the rotation
driver), so traces are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop
from typing import Callable, Mapping

from repro.sim.engine import EventEngine
from repro.sim.nic import LinkTransmitter
from repro.switch.click import ClickSwitch, SwitchTask, TaskKind
from repro.switch.queues import QueuedFrame

#: Maps a frame to its (outgoing interface, outgoing priority).
RouteFn = Callable[[QueuedFrame], tuple[str, int]]


class SimSwitch:
    """One simulated switch: queues + processors + egress transmitters."""

    def __init__(
        self,
        engine: EventEngine,
        click: ClickSwitch,
        *,
        route_fn: RouteFn,
        transmitters: Mapping[str, LinkTransmitter],
        mode: str = "event",
        idle_cost: float = 0.0,
    ):
        if mode not in ("event", "rotation"):
            raise ValueError(f"unknown switch mode {mode!r}")
        missing = set(click.interfaces) - set(transmitters)
        if missing:
            raise ValueError(f"switch {click.name!r}: no transmitter for {missing}")
        self.engine = engine
        self.click = click
        self.route_fn = route_fn
        self.transmitters = dict(transmitters)
        self.frames_forwarded = 0

        driver_cls = EventDriver if mode == "event" else RotationDriver
        self.drivers: list[ProcessorDriverBase] = []
        per_proc = click.n_interfaces // click.config.n_processors
        for p in range(click.config.n_processors):
            interfaces = click.interfaces[p * per_proc : (p + 1) * per_proc]
            self.drivers.append(
                driver_cls(
                    engine,
                    self,
                    interfaces,
                    idle_cost=idle_cost,
                    scheduler=click.schedulers[p],
                )
            )
        self._driver_of = {
            itf: self.drivers[click.processor_of[itf]] for itf in click.interfaces
        }
        # Prebound per-interface hot paths (one dict lookup instead of
        # two or three).  When the rx FIFO is unbounded its push cannot
        # drop, so the deque's append is bound directly.
        self._rx_of = {
            itf: (
                click.rx_fifo[itf]._items.append
                if click.rx_fifo[itf].capacity is None
                else click.rx_fifo[itf].push,
                self._driver_of[itf],
            )
            for itf in click.interfaces
        }
        self._out_of = {
            itf: (click.output_queue[itf].push, self._driver_of[itf])
            for itf in click.interfaces
        }
        self._tx_of = {
            itf: (click.tx_fifo[itf], self.transmitters[itf])
            for itf in click.interfaces
        }
        # Event drivers register their per-task completion handlers
        # once the switch's lookup tables above exist.
        for driver in self.drivers:
            finish = getattr(driver, "bind_completions", None)
            if finish is not None:
                finish()

    # ------------------------------------------------------------------
    # External events
    # ------------------------------------------------------------------
    def receive(self, frame: QueuedFrame, from_interface: str) -> None:
        """An Ethernet frame fully arrived on a NIC (after the wire)."""
        push, driver = self._rx_of[from_interface]
        # deque.append returns None, FifoQueue.push returns False on a
        # drop — only frames actually queued count as pending work.
        if push(frame.with_enqueue_time(self.engine._now)) is not False:
            driver._pending += 1
        if not driver._running:
            driver.wake()

    def on_tx_idle(self, interface: str) -> None:
        """The NIC transmit path drained; the egress task may refill."""
        self._driver_of[interface].wake()

    def notify_output_enqueued(self, interface: str) -> None:
        """External hook: a frame entered ``output_queue[interface]``.

        Keeps the pending-work count (the event driver's O(1) sleep
        test) in step with the queue — callers who push to an output
        queue directly must use this, not a bare ``wake``.
        """
        driver = self._driver_of[interface]
        driver._pending += 1
        driver.wake()

    # ------------------------------------------------------------------
    # Task work predicates and actions (shared by both drivers)
    # ------------------------------------------------------------------
    def task_has_work(self, task: SwitchTask, at: float) -> bool:
        if task.kind is TaskKind.INGRESS:
            head = self.click.rx_fifo[task.interface].peek()
            return head is not None and head.enqueued_at <= at
        head = self.click.output_queue[task.interface].peek()
        return (
            head is not None
            and head.enqueued_at <= at
            and len(self.click.tx_fifo[task.interface]) == 0
        )

    def claim_work(self, task: SwitchTask) -> QueuedFrame:
        """Dequeue the frame the task will process (dispatch time)."""
        if task.kind is TaskKind.INGRESS:
            return self.click.rx_fifo[task.interface].pop()
        return self.click.output_queue[task.interface].pop()

    def complete_work(self, task: SwitchTask, frame: QueuedFrame) -> None:
        """Apply the task's effect (completion time)."""
        now = self.engine._now
        if task.kind is TaskKind.INGRESS:
            out_itf, priority = self.route_fn(frame)
            try:
                out_queue = self.click.output_queue[out_itf]
            except KeyError:
                raise KeyError(
                    f"switch {self.click.name!r}: routed to unknown "
                    f"interface {out_itf!r}"
                ) from None
            out_queue.push(frame.reclassified(priority, now))
            driver = self._driver_of[out_itf]
            driver._pending += 1
            if not driver._running:
                driver.wake()
        else:
            fifo, tx = self._tx_of[task.interface]
            self.frames_forwarded += 1
            # No re-stamp on the NIC handoff: the tx copy's enqueue
            # time is never read (egress claims gate on the FIFO being
            # *empty*, and the receiver re-stamps on arrival).
            if tx.busy:
                fifo.push(frame)
            else:
                # The egress task only claims against an empty tx FIFO
                # and nothing else fills it, so an idle transmitter's
                # kick would pull this very frame straight back out —
                # skip the FIFO round-trip.
                tx._transmit(frame)

    def pull_tx(self, interface: str) -> QueuedFrame | None:
        """Transmitter pull hook: next frame of the NIC transmit FIFO."""
        fifo = self.click.tx_fifo[interface]
        return fifo.pop() if fifo else None

    def has_backlog(self, interfaces: tuple[str, ...]) -> bool:
        """Any pending work on this processor's interfaces?"""
        for itf in interfaces:
            if self.click.rx_fifo[itf]:
                return True
            if self.click.output_queue[itf]:
                return True
        return False

    def reset(self) -> None:
        """Drain all state for a fresh run on the same topology."""
        self.click.reset()
        self.frames_forwarded = 0
        for driver in self.drivers:
            driver.reset()


class ProcessorDriverBase:
    """Common state of a processor driver."""

    def __init__(
        self,
        engine: EventEngine,
        switch: SimSwitch,
        interfaces: tuple[str, ...],
        *,
        idle_cost: float,
        scheduler=None,
    ):
        if idle_cost < 0:
            raise ValueError("idle_cost must be >= 0")
        self.engine = engine
        self.switch = switch
        self.interfaces = tuple(interfaces)
        self.idle_cost = idle_cost
        self.scheduler = scheduler
        # Task rotation in Click's insertion order: per interface, the
        # ingress task then the egress task.
        self.tasks: list[SwitchTask] = []
        for task in switch.click.tasks:
            if task.interface in self.interfaces:
                self.tasks.append(task)
        self.dispatches = 0
        self.busy_time = 0.0
        # Unclaimed frames in this processor's rx FIFOs and output
        # queues, maintained by SimSwitch.receive / complete_work and
        # the claim sites.  ``_pending == 0`` proves no task has work
        # (claimability additionally needs an empty tx FIFO, so the
        # converse does not hold) — the event driver uses it to sleep
        # in O(1) instead of probing a provably empty rotation.
        self._pending = 0

    #: Class-level default so callers can guard ``wake()`` with a plain
    #: attribute read on any driver type; only the event driver ever
    #: sets it per instance (the rotation driver gates on ``_armed``
    #: inside ``wake`` and keeps this False, so the guard degrades to
    #: always calling ``wake`` — the original behaviour).
    _running = False

    def wake(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EventDriver(ProcessorDriverBase):
    """Efficient execution: idle tasks cost ``idle_cost`` (default 0).

    The processor sleeps after one full rotation without work; any
    enqueue wakes it.  With ``idle_cost == 0`` the rotation through idle
    tasks is instantaneous, so a newly arrived frame is served after at
    most the busy tasks ahead of it — strictly better than the
    ``CIRC``-paced worst case.
    """

    def __init__(self, engine, switch, interfaces, *, idle_cost: float, scheduler=None):
        super().__init__(
            engine, switch, interfaces, idle_cost=idle_cost, scheduler=scheduler
        )
        self._running = False
        self._rotation = 0  # index into self.tasks (round-robin path)
        self._misses = 0
        # Weighted stride allocations must follow the actual scheduler's
        # dispatch order; round-robin uses the equivalent cheap rotation.
        self._use_stride = scheduler is not None and not scheduler.is_round_robin()
        # O(1) sleep is sound only when idle probes neither cost
        # simulated time (idle_cost > 0) nor advance scheduler passes
        # (weighted stride).
        self._can_fast_sleep = not self._use_stride and idle_cost == 0.0
        self._complete_work = switch.complete_work
        self._k_step = engine.register_handler(self._step)
        self._k_complete = engine.register_handler(self._complete)
        # Per-task probe table for the inlined rotation, built by
        # :meth:`bind_completions` once the owning switch's lookup
        # tables exist (SimSwitch calls it at the end of its own
        # construction; drivers never run before that).
        self._probe: list[tuple] = []

    def bind_completions(self) -> None:
        """Build the probe table with a dedicated completion handler
        per task.

        Each row binds the task's queue containers directly — ingress
        probes the rx FIFO's deque; egress probes the output queue's
        heap and the tx FIFO's deque — plus the engine kind of a
        completion closure with the task's effect targets prebound
        (route + classify into an output queue for ingress; NIC handoff
        for egress), so a completed task never goes through the generic
        ``complete_work`` dispatch.  The containers are mutated in
        place for the simulator's lifetime (see ``queues.clear``), so
        the bindings stay valid across topology-reusing resets.
        """
        engine = self.engine
        switch = self.switch
        click = switch.click
        self._probe = []
        for task in self.tasks:
            itf = task.interface
            if task.kind is TaskKind.INGRESS:
                kind = engine.register_handler(
                    self._make_ingress_complete(switch)
                )
                self._probe.append(
                    (task, True, click.rx_fifo[itf]._items, None, task.cost, kind)
                )
            else:
                kind = engine.register_handler(
                    self._make_egress_complete(switch, itf)
                )
                self._probe.append(
                    (
                        task,
                        False,
                        click.output_queue[itf]._heap,
                        click.tx_fifo[itf]._items,
                        task.cost,
                        kind,
                    )
                )

    def _make_ingress_complete(self, switch: SimSwitch):
        route_fn = switch.route_fn
        out_of = switch._out_of
        engine = self.engine

        def complete(frame: QueuedFrame, _unused=None) -> None:
            out_itf, priority = route_fn(frame)
            try:
                out_push, out_driver = out_of[out_itf]
            except KeyError:
                raise KeyError(
                    f"switch {switch.click.name!r}: routed to unknown "
                    f"interface {out_itf!r}"
                ) from None
            # The claimed frame is uniquely owned (it left its rx FIFO
            # at claim time), so classification mutates it in place
            # instead of cloning — the generic complete_work keeps the
            # cloning semantics for externally supplied frames.
            d = frame.__dict__
            d["priority"] = priority
            d["enqueued_at"] = engine._now
            out_push(frame)
            out_driver._pending += 1
            if not out_driver._running:
                out_driver.wake()
            self._misses = 0
            if self._pending == 0 and self._can_fast_sleep:
                self._running = False
                return
            self._step()

        return complete

    def _make_egress_complete(self, switch: SimSwitch, itf: str):
        fifo, tx = switch._tx_of[itf]

        def complete(frame: QueuedFrame, _unused=None) -> None:
            switch.frames_forwarded += 1
            # See complete_work: no re-stamp (the tx copy's enqueue
            # time is never read), and an idle transmitter skips the
            # FIFO round-trip its kick would immediately undo.
            if tx.busy:
                fifo.push(frame)
            else:
                tx._transmit(frame)
            self._misses = 0
            if self._pending == 0 and self._can_fast_sleep:
                self._running = False
                return
            self._step()

        return complete

    def _next_task(self) -> SwitchTask:
        if self._use_stride:
            return self.scheduler.dispatch().payload
        task = self.tasks[self._rotation]
        self._rotation = (self._rotation + 1) % len(self.tasks)
        return task

    def wake(self) -> None:
        if self._running:
            return
        self._running = True
        self._misses = 0
        self._step()

    def reset(self) -> None:
        self._running = False
        self._rotation = 0
        self._misses = 0
        self.dispatches = 0
        self.busy_time = 0.0
        self._pending = 0

    def _step(self, _a=None, _b=None) -> None:
        """Dispatch tasks until work is found or a full rotation idles."""
        if self._pending == 0 and self._can_fast_sleep:
            # Nothing claimable anywhere on this processor, and a free
            # rotation neither schedules events nor moves the rotation
            # index (n probes mod n) — sleep in O(1).  (With a timed
            # rotation the probes cost simulated time, so they must
            # run; with weighted stride they advance scheduler passes,
            # so _step_stride never short-circuits.)
            self._running = False
            return
        if self._use_stride:
            return self._step_stride()
        engine = self.engine
        now = engine._now
        probe = self._probe
        n = len(probe)
        rotation = self._rotation
        misses = self._misses
        idle_cost = self.idle_cost
        dispatches = self.dispatches
        while True:
            if misses >= n:
                # One full rotation without work.  With idle_cost 0
                # the rotation is instantaneous — no event fired and
                # the clock did not move between probes, so a
                # re-check would find exactly what the probes found;
                # sleep directly.  A timed rotation (idle_cost > 0)
                # may have been overtaken by work for a task already
                # passed, so re-check before sleeping.
                if idle_cost == 0.0 or not any(
                    self.switch.task_has_work(t, now) for t in self.tasks
                ):
                    self._running = False
                    break
                misses = 0
            task, is_ingress, a, b, cost, k_complete = probe[rotation]
            rotation += 1
            if rotation == n:
                rotation = 0
            dispatches += 1
            if is_ingress:
                # rx FIFO head arrived?
                has = a and a[0].enqueued_at <= now
            else:
                # output-queue head arrived and tx FIFO empty?
                has = a and a[0][2].enqueued_at <= now and not b
            if has:
                misses = 0
                frame = a.popleft() if is_ingress else heappop(a)[2]
                self._pending -= 1
                self.busy_time += cost
                engine.schedule_call(now + cost, k_complete, frame)
                break
            misses += 1
            if idle_cost > 0.0:
                engine.schedule_call(now + idle_cost, self._k_step)
                break
        self._rotation = rotation
        self._misses = misses
        self.dispatches = dispatches

    def _step_stride(self) -> None:
        """Weighted-stride dispatch (the scheduler owns the order)."""
        engine = self.engine
        while True:
            if self._misses >= len(self.tasks):
                if any(
                    self.switch.task_has_work(t, engine._now)
                    for t in self.tasks
                ):
                    self._misses = 0
                else:
                    self._running = False
                    return
            task = self.scheduler.dispatch().payload
            self.dispatches += 1
            if self.switch.task_has_work(task, engine._now):
                self._misses = 0
                frame = self.switch.claim_work(task)
                self._pending -= 1
                self.busy_time += task.cost
                engine.schedule_call(
                    engine._now + task.cost, self._k_complete, task, frame
                )
                return
            self._misses += 1
            if self.idle_cost > 0.0:
                engine.schedule_call(engine._now + self.idle_cost, self._k_step)
                return

    def _complete(self, task: SwitchTask, frame: QueuedFrame) -> None:
        self._complete_work(task, frame)
        self._misses = 0
        if self._pending == 0 and self._can_fast_sleep:
            self._running = False
            return
        self._step()


class RotationDriver(ProcessorDriverBase):
    """Pessimistic execution: a fixed rotation anchored at boot.

    Every task's slot recurs with period ``CIRC`` regardless of load;
    a task serves at most one frame per slot, and only frames enqueued
    before the slot starts.  While a processor has no backlog its slots
    are skipped analytically (no events), but the *phase* is preserved,
    so a frame arriving just after its task's slot start waits almost a
    full ``CIRC`` — the worst case the analysis charges per frame.
    """

    def __init__(self, engine, switch, interfaces, *, idle_cost: float, scheduler=None):
        super().__init__(
            engine, switch, interfaces, idle_cost=idle_cost, scheduler=scheduler
        )
        if scheduler is not None and not scheduler.is_round_robin():
            raise ValueError(
                "rotation (pessimistic) mode models the paper's "
                "round-robin configuration; weighted stride tickets "
                "require switch_mode='event'"
            )
        self.offsets: list[float] = []
        acc = 0.0
        for task in self.tasks:
            self.offsets.append(acc)
            acc += task.cost
        self.period = acc  # == CIRC of this processor's partition
        if self.period <= 0.0:
            raise ValueError(
                "rotation mode needs positive task costs (the fixed "
                "rotation has period CIRC = sum of costs); use "
                "switch_mode='event' for zero-cost switches"
            )
        self._armed = False
        self._idle_slots = 0
        self._k_slot = engine.register_handler(self._slot)
        self._k_complete_slot = engine.register_handler(self._complete_slot)

    # ------------------------------------------------------------------
    def wake(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._idle_slots = 0
        self._arm_next_slot()

    def reset(self) -> None:
        self._armed = False
        self._idle_slots = 0
        self.dispatches = 0
        self.busy_time = 0.0
        self._pending = 0

    def _arm_next_slot(self) -> None:
        """Schedule the next slot boundary at or after 'now'."""
        now = self.engine._now
        best_time = None
        best_idx = None
        for idx, off in enumerate(self.offsets):
            # Smallest m with m*period + off >= now (strictly: allow ==).
            m = max(0, -(-(now - off) // self.period)) if self.period > 0 else 0
            t = m * self.period + off
            if t < now - 1e-15:
                t += self.period
            if best_time is None or t < best_time - 1e-15:
                best_time = t
                best_idx = idx
        self.engine.schedule_call(best_time, self._k_slot, best_idx, best_time)

    def _slot(self, idx: int, start: float) -> None:
        task = self.tasks[idx]
        self.dispatches += 1
        if self.switch.task_has_work(task, start):
            self._idle_slots = 0
            frame = self.switch.claim_work(task)
            self._pending -= 1
            self.busy_time += task.cost
            done = start + task.cost
            self.engine.schedule_call(
                done, self._k_complete_slot, frame, (task, idx, start)
            )
        else:
            self._idle_slots += 1
            self._after_slot(idx, start)

    def _complete_slot(self, frame: QueuedFrame, slot: tuple) -> None:
        task, idx, start = slot
        self.switch.complete_work(task, frame)
        self._after_slot(idx, start)

    def _after_slot(self, idx: int, start: float) -> None:
        # Disarm after a full idle rotation with no backlog; phase is
        # recovered analytically on the next wake().
        if self._idle_slots >= len(self.tasks) and not self.switch.has_backlog(
            self.interfaces
        ):
            self._armed = False
            return
        nxt_idx = (idx + 1) % len(self.tasks)
        nxt_start = start + (
            self.offsets[nxt_idx] - self.offsets[idx]
            if nxt_idx > idx
            else self.period - self.offsets[idx] + self.offsets[nxt_idx]
        )
        self.engine.schedule_call(nxt_start, self._k_slot, nxt_idx, nxt_start)
