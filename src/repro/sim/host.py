"""Source-node model: release GMF frames into work-conserving ports.

The network operator cannot control the queueing discipline at the
source (Sec. 3.2), only assume it is work-conserving; the port therefore
supports both FIFO (default, a normal PC's network stack) and
static-priority (a source that does honour 802.1p) disciplines — both
satisfy the first-hop analysis's assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import EventEngine
from repro.sim.nic import LinkTransmitter
from repro.switch.queues import FifoQueue, PriorityQueue, QueuedFrame


class OutputPort:
    """One outgoing interface of an end host (or IP router).

    Frames enter via :meth:`enqueue`; the attached
    :class:`~repro.sim.nic.LinkTransmitter` drains the queue
    work-conservingly.
    """

    def __init__(
        self,
        engine: EventEngine,
        *,
        speed_bps: float,
        prop_delay: float,
        deliver: Callable[[QueuedFrame], None],
        discipline: str = "fifo",
    ):
        if discipline not in ("fifo", "priority"):
            raise ValueError(f"unknown source discipline {discipline!r}")
        self.discipline = discipline
        self._fifo = FifoQueue()
        self._prio = PriorityQueue()
        self.transmitter = LinkTransmitter(
            engine,
            speed_bps=speed_bps,
            prop_delay=prop_delay,
            pull=self._pull,
            deliver=deliver,
        )

    def enqueue(self, frame: QueuedFrame) -> None:
        if self.discipline == "fifo":
            self._fifo.push(frame)
        else:
            self._prio.push(frame)
        self.transmitter.kick()

    def _pull(self) -> QueuedFrame | None:
        if self.discipline == "fifo":
            return self._fifo.pop() if self._fifo else None
        return self._prio.pop() if self._prio else None

    def backlog(self) -> int:
        return len(self._fifo) + len(self._prio)
