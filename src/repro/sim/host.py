"""Source-node model: release GMF frames into work-conserving ports.

The network operator cannot control the queueing discipline at the
source (Sec. 3.2), only assume it is work-conserving; the port therefore
supports both FIFO (default, a normal PC's network stack) and
static-priority (a source that does honour 802.1p) disciplines — both
satisfy the first-hop analysis's assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import EventEngine
from repro.sim.nic import LinkTransmitter
from repro.switch.queues import FifoQueue, PriorityQueue, QueuedFrame


class OutputPort:
    """One outgoing interface of an end host (or IP router).

    Frames enter via :meth:`enqueue`; the attached
    :class:`~repro.sim.nic.LinkTransmitter` drains the queue
    work-conservingly.  ``enqueue_kind`` is the port's handler-table
    code on the engine — the simulator bulk-schedules all precomputed
    frame releases as flat ``(time, enqueue_kind, frame)`` records.
    """

    def __init__(
        self,
        engine: EventEngine,
        *,
        speed_bps: float,
        prop_delay: float,
        deliver: Callable[[QueuedFrame], None],
        discipline: str = "fifo",
        deliver_kind: int | None = None,
    ):
        if discipline not in ("fifo", "priority"):
            raise ValueError(f"unknown source discipline {discipline!r}")
        self.discipline = discipline
        self._fifo = FifoQueue()
        self._prio = PriorityQueue()
        self._queue = self._fifo if discipline == "fifo" else self._prio
        self._fifo_items = self._fifo._items
        self.enqueue_kind = engine.register_handler(self.enqueue)
        self.transmitter = LinkTransmitter(
            engine,
            speed_bps=speed_bps,
            prop_delay=prop_delay,
            pull=self._pull,
            deliver=deliver,
            deliver_kind=deliver_kind,
        )

    def enqueue(self, frame: QueuedFrame, _unused=None) -> None:
        tx = self.transmitter
        if tx.busy or self._queue:
            self._queue.push(frame)
            tx.kick()
        else:
            # Idle transmitter over an empty queue: kick would pull
            # this very frame straight back out — skip the round-trip.
            tx._transmit(frame)

    def _pull(self) -> QueuedFrame | None:
        if self.discipline == "fifo":
            items = self._fifo_items
            return items.popleft() if items else None
        queue = self._prio
        return queue.pop() if queue else None

    def reset(self) -> None:
        """Empty queues and idle the transmitter (topology reuse)."""
        self._fifo.clear()
        self._prio.clear()
        self.transmitter.reset()

    def backlog(self) -> int:
        return len(self._fifo) + len(self._prio)
