"""Seeded random GMF flow-set generation for synthetic sweeps.

The acceptance-ratio experiment (E5) needs flow sets at a controlled
*offered utilisation*.  The classic recipe from schedulability
evaluation is UUniFast (Bini & Buttazzo): split a total utilisation
uniformly at random over ``n`` flows; here each flow's share is then
realised as a random GMF cycle (random frame count, separations and
payload mix) routed over random host pairs of a topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.packetization import DEFAULT_CONFIG, packetize
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, NodeKind
from repro.model.routing import RouteError, shortest_route


def uunifast(rng: np.random.Generator, n: int, total: float) -> list[float]:
    """UUniFast: ``n`` utilisations summing to ``total``, uniform over
    the simplex.  Standard generator for schedulability experiments."""
    if n < 1:
        raise ValueError("need at least one task")
    if total < 0:
        raise ValueError("total utilisation must be >= 0")
    utils: list[float] = []
    remaining = total
    for i in range(1, n):
        nxt = remaining * rng.random() ** (1.0 / (n - i))
        utils.append(remaining - nxt)
        remaining = nxt
    utils.append(remaining)
    return utils


@dataclass(frozen=True)
class RandomFlowConfig:
    """Shape parameters of random GMF flows.

    Attributes
    ----------
    n_frames_range:
        Inclusive range of GMF cycle lengths.
    separation_range:
        Inclusive range (seconds) each ``T_i^k`` is drawn from
        (log-uniform).
    burstiness:
        Ratio between the largest and smallest payload within a flow's
        cycle (1.0 = all frames equal; MPEG-like streams are ~8-10).
        Payload sizes are scaled afterwards to hit the flow's
        utilisation share.
    deadline_factor_range:
        Deadline = factor * TSUM, factor drawn uniformly from this range.
    jitter_fraction:
        ``GJ_i^k = jitter_fraction * T_i^k``.
    priority_levels:
        Flows get random priorities in ``0..priority_levels-1``.
    """

    n_frames_range: tuple[int, int] = (1, 8)
    separation_range: tuple[float, float] = (5e-3, 50e-3)
    burstiness: float = 8.0
    deadline_factor_range: tuple[float, float] = (0.5, 2.0)
    jitter_fraction: float = 0.05
    priority_levels: int = 8

    def __post_init__(self) -> None:
        lo, hi = self.n_frames_range
        if not (1 <= lo <= hi):
            raise ValueError("invalid n_frames_range")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        if self.priority_levels < 1:
            raise ValueError("need at least one priority level")


def _random_spec(
    rng: np.random.Generator,
    cfg: RandomFlowConfig,
    *,
    utilization: float,
    linkspeed_bps: float,
) -> GmfSpec:
    """One random GMF spec whose CSUM/TSUM on ``linkspeed`` is close to
    (and at most) ``utilization``.

    Payload sizes are drawn with the configured burstiness and scaled so
    the *wire* utilisation (including per-fragment overheads) matches;
    because overheads quantise, the scale is found by a short bisection
    and rounded down (never exceeding the requested share).
    """
    lo, hi = cfg.n_frames_range
    n = int(rng.integers(lo, hi + 1))
    seps = np.exp(
        rng.uniform(
            math.log(cfg.separation_range[0]),
            math.log(cfg.separation_range[1]),
            size=n,
        )
    )
    tsum = float(seps.sum())
    # Relative payload mix with the requested burstiness.
    mix = rng.uniform(1.0, cfg.burstiness, size=n)
    mix[int(rng.integers(0, n))] = cfg.burstiness  # ensure the ratio exists
    mix /= mix.sum()

    budget_bits = utilization * tsum * linkspeed_bps  # wire bits per cycle

    def wire_bits(scale: float) -> float:
        total = 0
        for share in mix:
            payload = max(64, int(share * scale))
            total += packetize(payload, config=DEFAULT_CONFIG).wire_bits
        return total

    # Bisection on the total payload scale.
    lo_s, hi_s = 1.0, max(2.0, budget_bits)
    for _ in range(60):
        mid = 0.5 * (lo_s + hi_s)
        if wire_bits(mid) <= budget_bits:
            lo_s = mid
        else:
            hi_s = mid
    scale = lo_s

    payloads = tuple(max(64, int(share * scale)) for share in mix)
    deadline_factor = rng.uniform(*cfg.deadline_factor_range)
    deadline = max(1e-4, deadline_factor * tsum)
    return GmfSpec(
        min_separations=tuple(float(t) for t in seps),
        deadlines=(deadline,) * n,
        jitters=tuple(float(cfg.jitter_fraction * t) for t in seps),
        payload_bits=payloads,
    )


def random_flow_set(
    network: Network,
    *,
    n_flows: int,
    total_utilization: float,
    seed: int = 0,
    config: RandomFlowConfig | None = None,
    name_prefix: str = "rf",
) -> list[Flow]:
    """Random GMF flows over random host pairs at a target utilisation.

    ``total_utilization`` is interpreted per the *slowest link on each
    flow's route*: each flow's CSUM/TSUM share (UUniFast) is realised on
    that link speed, so the most loaded link of the network carries at
    most roughly ``total_utilization``.  Flows are routed on shortest
    paths between distinct random end hosts (or routers).
    """
    rng = np.random.default_rng(seed)
    cfg = config or RandomFlowConfig()
    endpoints = [
        n.name
        for n in network.nodes()
        if n.kind in (NodeKind.ENDHOST, NodeKind.ROUTER)
    ]
    if len(endpoints) < 2:
        raise ValueError("topology needs at least two route endpoints")

    shares = uunifast(rng, n_flows, total_utilization)
    flows: list[Flow] = []
    for i, share in enumerate(shares):
        for _attempt in range(100):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            try:
                route = shortest_route(network, str(src), str(dst))
                break
            except RouteError:
                continue
        else:
            raise RouteError("could not find a routable host pair")
        slowest = min(
            network.linkspeed(a, b) for a, b in zip(route, route[1:])
        )
        spec = _random_spec(
            rng, cfg, utilization=max(share, 1e-6), linkspeed_bps=slowest
        )
        flows.append(
            Flow(
                name=f"{name_prefix}{i}",
                spec=spec,
                route=route,
                priority=int(rng.integers(0, cfg.priority_levels)),
            )
        )
    return flows
