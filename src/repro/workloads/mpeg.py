"""MPEG video traffic as GMF flows (the paper's Fig. 3 example).

An MPEG group of pictures (GoP) such as ``IBBPBBPBB`` is transmitted in
decode order: the I- and first P-frame go out together ("I+P" in
Fig. 3), then the stream alternates B/P frames every frame time (30 ms
in the figure).  Frame sizes differ wildly between I, P and B frames —
exactly what the GMF model expresses and the sporadic model cannot.

The scan of the paper does not preserve Fig. 4's per-frame byte sizes
(DESIGN.md), so :func:`paper_fig3_spec` uses canonical MPEG-1 frame
sizes documented below; the recoverable values (``TSUM = 270 ms`` for
the 9-frame GoP at 30 ms) are matched exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.flow import Flow, Transport
from repro.model.gmf import GmfSpec
from repro.util.units import ms

#: Canonical frame payload sizes (bits) used for the Fig. 3/4 example:
#: a ~1.5 Mbit/s MPEG-1 stream.  The first entry is the "I+P" pair.
DEFAULT_I_BITS = 120_000
DEFAULT_P_BITS = 48_000
DEFAULT_B_BITS = 16_000


@dataclass(frozen=True)
class MpegGopPattern:
    """A GoP structure in *transmission order*.

    ``pattern`` is a string over ``{"I", "P", "B"}``; the paper's
    Fig. 3 sequence IBBPBBPBB is transmitted as
    ``(I+P) B B P B B (P?) ...`` — use :func:`paper_fig3_pattern` for
    that exact example.  Each character becomes one GMF frame.
    """

    pattern: str
    frame_time: float
    i_bits: int = DEFAULT_I_BITS
    p_bits: int = DEFAULT_P_BITS
    b_bits: int = DEFAULT_B_BITS

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("empty GoP pattern")
        bad = set(self.pattern) - set("IPBX")
        if bad:
            raise ValueError(f"unknown frame types {bad!r} (use I/P/B/X)")
        if self.frame_time <= 0:
            raise ValueError("frame_time must be positive")

    def payload_bits(self) -> tuple[int, ...]:
        """Per-GMF-frame payload sizes; ``X`` means I+P sent together."""
        sizes = {
            "I": self.i_bits,
            "P": self.p_bits,
            "B": self.b_bits,
            "X": self.i_bits + self.p_bits,  # the Fig. 3 "I+P" packet
        }
        return tuple(sizes[c] for c in self.pattern)


def paper_fig3_pattern(frame_time: float = ms(30)) -> MpegGopPattern:
    """The paper's Fig. 3 transmission order for the IBBPBBPBB GoP.

    Because B frames reference the *next* I/P frame, decode order sends
    the I frame together with the first P frame ("I+P" in Fig. 3),
    giving nine transmitted UDP packets per GoP:
    ``X B B P B B P B B`` with ``X = I+P``, one every 30 ms.
    """
    return MpegGopPattern(pattern="XBBPBBPBB", frame_time=frame_time)


def mpeg_gop_spec(
    gop: MpegGopPattern,
    *,
    deadline: float,
    jitter: float = 0.0,
) -> GmfSpec:
    """Build the GMF spec of an MPEG GoP stream.

    One GMF frame per transmitted packet, all separated by the constant
    frame time; shared end-to-end deadline and generalized jitter.
    """
    n = len(gop.pattern)
    return GmfSpec(
        min_separations=(gop.frame_time,) * n,
        deadlines=(deadline,) * n,
        jitters=(jitter,) * n,
        payload_bits=gop.payload_bits(),
    )


def paper_fig3_spec(
    *,
    deadline: float = ms(100),
    jitter: float = ms(1),
    frame_time: float = ms(30),
) -> GmfSpec:
    """The Fig. 3/4 example flow: IBBPBBPBB at 30 ms, 1 ms jitter.

    ``TSUM`` is exactly ``9 * 30 ms = 270 ms`` — the value the paper
    reports for Eq. 6 on this example.
    """
    return mpeg_gop_spec(
        paper_fig3_pattern(frame_time), deadline=deadline, jitter=jitter
    )


def paper_fig3_flow(
    route: Sequence[str],
    *,
    name: str = "mpeg",
    priority: int = 5,
    deadline: float = ms(100),
    jitter: float = ms(1),
    transport: Transport = Transport.UDP,
) -> Flow:
    """The Fig. 2 flow (source 0 → switches 4, 6 → destination 3)."""
    return Flow(
        name=name,
        spec=paper_fig3_spec(deadline=deadline, jitter=jitter),
        route=tuple(route),
        priority=priority,
        transport=transport,
    )
