"""Network topologies: the paper's Fig. 1 example and parametric families.

All constructors return a :class:`~repro.model.network.Network` with
full-duplex links; switch processing parameters default to the paper's
measured Click costs (CROUTE = 2.7 µs, CSEND = 1.0 µs).
"""

from __future__ import annotations

from repro.model.network import Network, SwitchConfig
from repro.util.units import mbps


def paper_fig1_network(
    *,
    speed_bps: float = mbps(10),
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """The example network of Fig. 1.

    Nodes 0-3 are IP end hosts, nodes 4-6 are software Ethernet
    switches, node 7 is the IP router to the global Internet.  Links
    (from the figure): hosts 0,1 attach to switch 4; host 2 attaches to
    switch 5; host 3 attaches to switch 6; switches form the chain
    4-6 and 5-6; the router 7 attaches to switch 6.  The Fig. 2 route
    0 → 4 → 6 → 3 exists in this topology, and Sec. 3.1's worked
    example uses ``linkspeed(0,4) = 10^7 bit/s`` (the default here).
    """
    net = Network()
    for h in ("n0", "n1", "n2", "n3"):
        net.add_endhost(h)
    for s in ("n4", "n5", "n6"):
        net.add_switch(s, switch_config)
    net.add_router("n7")
    duplex = lambda a, b: net.add_duplex_link(
        a, b, speed_bps=speed_bps, prop_delay=prop_delay
    )
    duplex("n0", "n4")
    duplex("n1", "n4")
    duplex("n2", "n5")
    duplex("n4", "n6")
    duplex("n5", "n6")
    duplex("n3", "n6")
    duplex("n7", "n6")
    return net


def line_network(
    n_switches: int,
    *,
    hosts_per_switch: int = 1,
    speed_bps: float = mbps(100),
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """A chain ``sw0 - sw1 - ... - sw{n-1}`` with hosts at each switch.

    Hosts are named ``h{switch}_{index}``.  Used by the hop-count
    sensitivity experiment (E7): a flow from a host at ``sw0`` to a host
    at ``sw{n-1}`` traverses ``n_switches`` switches.
    """
    if n_switches < 1:
        raise ValueError("need at least one switch")
    net = Network()
    for s in range(n_switches):
        net.add_switch(f"sw{s}", switch_config)
        for h in range(hosts_per_switch):
            net.add_endhost(f"h{s}_{h}")
            net.add_duplex_link(
                f"h{s}_{h}", f"sw{s}", speed_bps=speed_bps, prop_delay=prop_delay
            )
    for s in range(n_switches - 1):
        net.add_duplex_link(
            f"sw{s}", f"sw{s + 1}", speed_bps=speed_bps, prop_delay=prop_delay
        )
    return net


def star_network(
    n_hosts: int,
    *,
    speed_bps: float = mbps(100),
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """One switch ``sw`` with ``n_hosts`` hosts ``h0..h{n-1}`` attached."""
    if n_hosts < 2:
        raise ValueError("a star needs at least two hosts")
    net = Network()
    net.add_switch("sw", switch_config)
    for h in range(n_hosts):
        net.add_endhost(f"h{h}")
        net.add_duplex_link(
            f"h{h}", "sw", speed_bps=speed_bps, prop_delay=prop_delay
        )
    return net


def fat_tree_network(
    *,
    spines: int = 2,
    leaves: int = 4,
    hosts_per_leaf: int = 2,
    speed_bps: float = mbps(100),
    uplink_speed_bps: float | None = None,
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """A two-tier folded-Clos (leaf/spine) fabric with path diversity.

    Every leaf switch ``leaf{j}`` connects to every spine switch
    ``spine{i}``, so any leaf-to-leaf route has ``spines`` equal-length
    choices — the multi-path regime the single-path line/star/tree
    families cannot express.  Hosts ``h{leaf}_{k}`` attach to leaves;
    ``uplink_speed_bps`` (default: same as host links) sets the
    leaf-spine capacity.
    """
    if spines < 1 or leaves < 2:
        raise ValueError("a fat-tree needs >= 1 spine and >= 2 leaves")
    if hosts_per_leaf < 1:
        raise ValueError("each leaf needs at least one host")
    uplink = speed_bps if uplink_speed_bps is None else uplink_speed_bps
    net = Network()
    for i in range(spines):
        net.add_switch(f"spine{i}", switch_config)
    for j in range(leaves):
        leaf = f"leaf{j}"
        net.add_switch(leaf, switch_config)
        for i in range(spines):
            net.add_duplex_link(
                leaf, f"spine{i}", speed_bps=uplink, prop_delay=prop_delay
            )
        for k in range(hosts_per_leaf):
            host = f"h{j}_{k}"
            net.add_endhost(host)
            net.add_duplex_link(
                host, leaf, speed_bps=speed_bps, prop_delay=prop_delay
            )
    return net


def multi_pod_fat_tree_network(
    *,
    pods: int = 4,
    aggs_per_pod: int = 2,
    leaves_per_pod: int = 4,
    hosts_per_leaf: int = 4,
    cores: int = 2,
    speed_bps: float = mbps(1000),
    agg_speed_bps: float | None = None,
    core_speed_bps: float | None = None,
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """A three-tier datacenter fabric: pods of leaf/agg switches under a
    shared core tier.

    Node naming is load-bearing: the hierarchical admission layer
    (``core/hierarchy.py``) classifies nodes into pods by the ``p{i}_``
    prefix, and routes can be built from names alone (no graph search —
    essential when generating 10^5 flows; see :func:`multi_pod_route`):

    * ``core{c}`` — core switches, shared by all pods;
    * ``p{i}_agg{a}`` — pod ``i``'s aggregation switches, each linked
      to every core switch;
    * ``p{i}_leaf{l}`` — pod ``i``'s leaf switches, each linked to
      every aggregation switch of the pod;
    * ``p{i}_h{l}_{k}`` — host ``k`` of leaf ``l`` in pod ``i``.

    ``agg_speed_bps`` / ``core_speed_bps`` default to the host link
    speed (uniform fabric).
    """
    if pods < 1 or aggs_per_pod < 1 or leaves_per_pod < 1 or cores < 1:
        raise ValueError("pods, aggs, leaves and cores must all be >= 1")
    if hosts_per_leaf < 1:
        raise ValueError("each leaf needs at least one host")
    agg_speed = speed_bps if agg_speed_bps is None else agg_speed_bps
    core_speed = agg_speed if core_speed_bps is None else core_speed_bps
    net = Network()
    for c in range(cores):
        net.add_switch(f"core{c}", switch_config)
    for p in range(pods):
        for a in range(aggs_per_pod):
            agg = f"p{p}_agg{a}"
            net.add_switch(agg, switch_config)
            for c in range(cores):
                net.add_duplex_link(
                    agg, f"core{c}", speed_bps=core_speed, prop_delay=prop_delay
                )
        for l in range(leaves_per_pod):
            leaf = f"p{p}_leaf{l}"
            net.add_switch(leaf, switch_config)
            for a in range(aggs_per_pod):
                net.add_duplex_link(
                    leaf,
                    f"p{p}_agg{a}",
                    speed_bps=agg_speed,
                    prop_delay=prop_delay,
                )
            for k in range(hosts_per_leaf):
                host = f"p{p}_h{l}_{k}"
                net.add_endhost(host)
                net.add_duplex_link(
                    host, leaf, speed_bps=speed_bps, prop_delay=prop_delay
                )
    return net


def multi_pod_route(
    src: str, dst: str, *, agg: int = 0, core: int = 0
) -> tuple[str, ...]:
    """The canonical route between two hosts of a multi-pod fabric.

    Built purely from the :func:`multi_pod_fat_tree_network` naming
    scheme — O(1), no graph search, which is what makes generating
    10^5-flow scenarios cheap.  ``agg``/``core`` select which
    aggregation/core switch carries the route (path diversity).

    * same leaf: ``src -> leaf -> dst``;
    * same pod: ``src -> leafA -> agg -> leafB -> dst``;
    * cross-pod: ``src -> leafA -> aggA -> core -> aggB -> leafB -> dst``.
    """
    ps, ls, _ = src.split("_")
    pd, ld, _ = dst.split("_")
    src_leaf = f"{ps}_leaf{ls[1:]}"
    dst_leaf = f"{pd}_leaf{ld[1:]}"
    if ps == pd:
        if src_leaf == dst_leaf:
            return (src, src_leaf, dst)
        return (src, src_leaf, f"{ps}_agg{agg}", dst_leaf, dst)
    return (
        src,
        src_leaf,
        f"{ps}_agg{agg}",
        f"core{core}",
        f"{pd}_agg{agg}",
        dst_leaf,
        dst,
    )


def tree_network(
    depth: int,
    *,
    fanout: int = 2,
    hosts_per_leaf: int = 2,
    speed_bps: float = mbps(100),
    prop_delay: float = 0.0,
    switch_config: SwitchConfig | None = None,
) -> Network:
    """A ``fanout``-ary switch tree of given depth with hosts at leaves.

    Models the paper's "edge of the Internet": an organisation's access
    network.  Switch names are ``sw`` + path digits (root ``sw``);
    leaf switches get ``hosts_per_leaf`` hosts ``h<leafname>_<i>``.
    The root also carries an IP router ``gw`` (the uplink of Fig. 1).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    net = Network()
    net.add_switch("sw", switch_config)
    net.add_router("gw")
    net.add_duplex_link("gw", "sw", speed_bps=speed_bps, prop_delay=prop_delay)

    frontier = ["sw"]
    for level in range(1, depth):
        nxt: list[str] = []
        for parent in frontier:
            for c in range(fanout):
                child = f"{parent}{c}"
                net.add_switch(child, switch_config)
                net.add_duplex_link(
                    parent, child, speed_bps=speed_bps, prop_delay=prop_delay
                )
                nxt.append(child)
        frontier = nxt
    for leaf in frontier:
        for h in range(hosts_per_leaf):
            name = f"h{leaf}_{h}"
            net.add_endhost(name)
            net.add_duplex_link(
                name, leaf, speed_bps=speed_bps, prop_delay=prop_delay
            )
    return net
