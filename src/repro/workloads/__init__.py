"""Workload generation: paper scenarios and synthetic sweeps.

* :mod:`repro.workloads.mpeg` — MPEG GoP traffic (the paper's Fig. 3
  IBBPBBPBB example);
* :mod:`repro.workloads.voip` — Voice-over-IP flows (the paper's
  motivating application);
* :mod:`repro.workloads.generator` — seeded random GMF flow sets with
  target utilisation (UUniFast-style) for acceptance-ratio sweeps;
* :mod:`repro.workloads.topologies` — the paper's Fig. 1 example network
  plus parametric line/star/tree edge networks.
"""

from repro.workloads.mpeg import (
    MpegGopPattern,
    mpeg_gop_spec,
    paper_fig3_spec,
    paper_fig3_flow,
)
from repro.workloads.voip import voip_spec, voip_flow
from repro.workloads.generator import (
    RandomFlowConfig,
    random_flow_set,
    uunifast,
)
from repro.workloads.topologies import (
    paper_fig1_network,
    fat_tree_network,
    line_network,
    star_network,
    tree_network,
)

__all__ = [
    "MpegGopPattern",
    "RandomFlowConfig",
    "fat_tree_network",
    "line_network",
    "mpeg_gop_spec",
    "paper_fig1_network",
    "paper_fig3_flow",
    "paper_fig3_spec",
    "random_flow_set",
    "star_network",
    "tree_network",
    "uunifast",
    "voip_flow",
    "voip_spec",
]
