"""Voice-over-IP traffic (the paper's motivating application).

A VoIP codec emits fixed-size voice packets at a constant packet time —
a sporadic (single-frame GMF) flow.  Defaults model G.711 with a 20 ms
packetisation interval (160 bytes of voice payload per packet); G.729
(20 bytes / 20 ms) is available via the ``codec`` argument.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.flow import Flow, Transport
from repro.model.gmf import GmfSpec
from repro.util.units import ms

#: codec -> (payload bytes per packet, packet interval seconds)
CODECS: dict[str, tuple[int, float]] = {
    "g711": (160, ms(20)),
    "g729": (20, ms(20)),
    "g722": (160, ms(20)),
}


def voip_spec(
    *,
    codec: str = "g711",
    deadline: float = ms(50),
    jitter: float = 0.0,
) -> GmfSpec:
    """GMF (sporadic) spec of one direction of a VoIP call."""
    try:
        payload_bytes, interval = CODECS[codec]
    except KeyError:
        raise ValueError(
            f"unknown codec {codec!r}; choose from {sorted(CODECS)}"
        ) from None
    return GmfSpec(
        min_separations=(interval,),
        deadlines=(deadline,),
        jitters=(jitter,),
        payload_bits=(payload_bytes * 8,),
    )


def voip_flow(
    route: Sequence[str],
    *,
    name: str,
    priority: int = 7,
    codec: str = "g711",
    deadline: float = ms(50),
    jitter: float = 0.0,
    transport: Transport = Transport.RTP,
) -> Flow:
    """One direction of a VoIP call over ``route`` (RTP by default)."""
    return Flow(
        name=name,
        spec=voip_spec(codec=codec, deadline=deadline, jitter=jitter),
        route=tuple(route),
        priority=priority,
        transport=transport,
    )
