"""Flows: a GMF spec bound to a route, transport and priority.

Sec. 2.1 of the paper: a flow has a source node, a destination node, a
pre-specified route across Ethernet switches, and GMF parameters.  The
output queues of Ethernet switches schedule the flow's Ethernet frames by
static priority (IEEE 802.1p); the priority may differ per link, so
``priority_on`` mirrors the paper's ``prio(tau, N1, N2)`` (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.model.gmf import GmfSpec


class Transport(Enum):
    """Transport stack of the flow's packets (affects header overhead)."""

    UDP = "udp"
    RTP = "rtp"  # RTP over UDP: 16 extra header bytes (Sec. 3.1)


@dataclass(frozen=True)
class Flow:
    """A flow ``tau_i``: GMF spec + route + priority.

    Attributes
    ----------
    name:
        Unique identifier used in results and error messages.
    spec:
        The GMF tuples ``(T, D, GJ, S)``.
    route:
        Node names from source to destination inclusive.  Validate against
        a :class:`~repro.model.network.Network` with
        :func:`repro.model.routing.validate_route` before analysis.
    priority:
        Default static priority on every link; **larger is higher**.
    link_priorities:
        Optional per-link overrides mapping ``(N1, N2)`` to a priority,
        modelling 802.1p re-marking at switch boundaries.
    transport:
        UDP or RTP-over-UDP; selects the header overhead in
        :mod:`repro.core.packetization`.
    """

    name: str
    spec: GmfSpec
    route: tuple[str, ...]
    priority: int = 0
    link_priorities: Mapping[tuple[str, str], int] = field(default_factory=dict)
    transport: Transport = Transport.UDP

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError(f"flow {self.name!r}: route needs >= 2 nodes")
        if len(set(self.route)) != len(self.route):
            raise ValueError(f"flow {self.name!r}: route visits a node twice")
        object.__setattr__(self, "route", tuple(self.route))
        object.__setattr__(self, "link_priorities", dict(self.link_priorities))
        for (a, b) in self.link_priorities:
            if not self.uses_link(a, b):
                raise ValueError(
                    f"flow {self.name!r}: priority override for link "
                    f"({a!r},{b!r}) which is not on its route"
                )

    # ------------------------------------------------------------------
    # Route topology helpers (succ / prec of the paper)
    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        """``SOURCE(tau_i)``."""
        return self.route[0]

    @property
    def destination(self) -> str:
        """``DESTINATION(tau_i)``."""
        return self.route[-1]

    def succ(self, node: str) -> str:
        """``succ(tau_i, N)``: next node after ``N`` on the route."""
        idx = self._index(node)
        if idx == len(self.route) - 1:
            raise ValueError(f"flow {self.name!r}: {node!r} is the destination")
        return self.route[idx + 1]

    def prec(self, node: str) -> str:
        """``prec(tau_i, N)``: node before ``N`` on the route."""
        idx = self._index(node)
        if idx == 0:
            raise ValueError(f"flow {self.name!r}: {node!r} is the source")
        return self.route[idx - 1]

    def _index(self, node: str) -> int:
        try:
            return self.route.index(node)
        except ValueError:
            raise ValueError(
                f"flow {self.name!r}: node {node!r} not on route {self.route!r}"
            ) from None

    def uses_link(self, src: str, dst: str) -> bool:
        """True when ``link(src, dst)`` is on this flow's route."""
        return any(
            a == src and b == dst for a, b in zip(self.route, self.route[1:])
        )

    def links(self) -> list[tuple[str, str]]:
        """All ``(N1, N2)`` links of the route, in order."""
        return list(zip(self.route, self.route[1:]))

    def intermediate_switches(self) -> tuple[str, ...]:
        """Nodes strictly between source and destination."""
        return self.route[1:-1]

    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.route) - 1

    # ------------------------------------------------------------------
    # Priorities
    # ------------------------------------------------------------------
    def priority_on(self, src: str, dst: str) -> int:
        """``prio(tau_i, N1, N2)``: the 802.1p priority on a route link."""
        if not self.uses_link(src, dst):
            raise ValueError(
                f"flow {self.name!r} does not use link ({src!r},{dst!r})"
            )
        return self.link_priorities.get((src, dst), self.priority)

    def with_priority(self, priority: int) -> "Flow":
        """Copy of this flow with a different default priority."""
        return Flow(
            name=self.name,
            spec=self.spec,
            route=self.route,
            priority=priority,
            link_priorities=dict(self.link_priorities),
            transport=self.transport,
        )

    def with_spec(self, spec: GmfSpec) -> "Flow":
        """Copy of this flow with a different GMF spec (baseline collapses)."""
        return Flow(
            name=self.name,
            spec=spec,
            route=self.route,
            priority=self.priority,
            link_priorities=dict(self.link_priorities),
            transport=self.transport,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {'->'.join(self.route)} prio={self.priority} "
            f"{self.spec.describe()}"
        )


def flows_on_link(flows: Sequence[Flow], src: str, dst: str) -> list[Flow]:
    """``flows(N1, N2)`` (Sec. 3): the flows whose route uses the link."""
    return [f for f in flows if f.uses_link(src, dst)]


def hep_flows(flows: Sequence[Flow], flow: Flow, src: str, dst: str) -> list[Flow]:
    """``hep(tau_i, N1, N2)`` (Eq. 2): higher-or-equal-priority flows.

    Flows (other than ``flow`` itself) that use ``link(src, dst)`` with a
    priority on that link at least that of ``flow``.
    """
    mine = flow.priority_on(src, dst)
    return [
        f
        for f in flows_on_link(flows, src, dst)
        if f.name != flow.name and f.priority_on(src, dst) >= mine
    ]


def lp_flows(flows: Sequence[Flow], flow: Flow, src: str, dst: str) -> list[Flow]:
    """``lp(tau_i, N)`` (Eq. 3): strictly lower-priority flows on the link."""
    mine = flow.priority_on(src, dst)
    return [
        f
        for f in flows_on_link(flows, src, dst)
        if f.name != flow.name and f.priority_on(src, dst) < mine
    ]


def check_unique_names(flows: Sequence[Flow]) -> None:
    """Raise ValueError when two flows share a name."""
    seen: set[str] = set()
    for f in flows:
        if f.name in seen:
            raise ValueError(f"duplicate flow name {f.name!r}")
        seen.add(f.name)
