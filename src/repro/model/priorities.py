"""Priority-assignment policies.

The paper assumes priorities are given (IEEE 802.1p markings chosen by
the network operator).  Real deployments need a policy; the classic
choices from fixed-priority scheduling theory are provided here, plus a
clamp onto the 2-8 hardware priority levels the paper notes commercial
switches support.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.model.flow import Flow


def _rank_to_priority(
    flows: Sequence[Flow], key: Callable[[Flow], float]
) -> list[Flow]:
    """Assign distinct priorities so that smaller ``key`` = higher priority.

    Ties are broken by flow name for determinism.  Returns new Flow
    objects (flows are immutable).
    """
    ordered = sorted(flows, key=lambda f: (key(f), f.name))
    n = len(ordered)
    # Highest priority (largest integer) to the smallest key.
    reassigned = [f.with_priority(n - rank) for rank, f in enumerate(ordered)]
    by_name = {f.name: f for f in reassigned}
    return [by_name[f.name] for f in flows]


def assign_deadline_monotonic(flows: Sequence[Flow]) -> list[Flow]:
    """Deadline-monotonic: smaller minimum relative deadline = higher priority.

    For GMF flows the binding constraint is the tightest frame deadline.
    """
    return _rank_to_priority(flows, key=lambda f: min(f.spec.deadlines))


def assign_rate_monotonic(flows: Sequence[Flow]) -> list[Flow]:
    """Rate-monotonic analogue: smaller average frame separation = higher.

    Uses ``TSUM / n`` (mean inter-frame time over the GMF cycle), the
    natural generalisation of the sporadic period.
    """
    return _rank_to_priority(
        flows, key=lambda f: f.spec.tsum / f.spec.n_frames
    )


def clamp_to_levels(flows: Sequence[Flow], n_levels: int) -> list[Flow]:
    """Compress distinct priorities onto ``n_levels`` hardware levels.

    Commercial 802.1p switches expose 2-8 priority levels (paper
    introduction, point iii).  Priorities are grouped preserving order:
    the flows are ranked by priority and split into ``n_levels`` bands of
    near-equal size (higher band = higher hardware level).
    """
    if n_levels < 1:
        raise ValueError("need at least one priority level")
    if not flows:
        return []
    ordered = sorted(flows, key=lambda f: (-f.priority, f.name))
    n = len(ordered)
    out: dict[str, Flow] = {}
    for rank, f in enumerate(ordered):
        band = min(n_levels - 1, rank * n_levels // n)
        out[f.name] = f.with_priority(n_levels - 1 - band)
    return [out[f.name] for f in flows]
