"""Cross-cutting model validation.

Checks that a (network, flows) problem instance is well-formed before
analysis or simulation: unique names, valid routes, switch-only
forwarding, and sanity warnings (e.g. a deadline shorter than the
minimum possible path latency can never be met).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.packetization import DEFAULT_CONFIG, packetize
from repro.model.flow import Flow, check_unique_names
from repro.model.network import Network
from repro.model.routing import validate_route


@dataclass(frozen=True)
class ValidationIssue:
    """A single finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    flow: str | None
    message: str


@dataclass(frozen=True)
class ValidationReport:
    issues: tuple[ValidationIssue, ...]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def errors(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "error")

    @property
    def warnings(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "warning")


def validate_problem(network: Network, flows: Sequence[Flow]) -> ValidationReport:
    """Validate a complete problem instance.

    Errors make analysis meaningless (bad routes, duplicate names);
    warnings flag instances that are structurally fine but can never be
    schedulable (deadline below the no-contention path latency).
    """
    issues: list[ValidationIssue] = []
    try:
        check_unique_names(flows)
    except ValueError as exc:
        issues.append(ValidationIssue("error", None, str(exc)))

    for flow in flows:
        try:
            validate_route(network, flow.route)
        except ValueError as exc:
            issues.append(ValidationIssue("error", flow.name, str(exc)))
            continue
        issues.extend(_latency_floor_warnings(network, flow))
    return ValidationReport(issues=tuple(issues))


def minimum_path_latency(network: Network, flow: Flow, frame: int) -> float:
    """A lower bound on frame ``k``'s end-to-end latency with zero load.

    Transmission time on every link plus propagation plus one
    ``CROUTE + CSEND`` of switch processing per intermediate switch.
    This is a *floor*: no analysis or simulation can report less.
    """
    pkt = packetize(flow.spec.payload_bits[frame], flow.transport, DEFAULT_CONFIG)
    total = 0.0
    for (a, b) in flow.links():
        total += pkt.wire_bits / network.linkspeed(a, b)
        total += network.prop(a, b)
    for sw in flow.intermediate_switches():
        cfg = network.node(sw).switch
        total += cfg.c_route + cfg.c_send
    return total


def _latency_floor_warnings(network: Network, flow: Flow):
    for k in flow.spec.frame_indices():
        floor = minimum_path_latency(network, flow, k)
        if flow.spec.deadlines[k] < floor:
            yield ValidationIssue(
                "warning",
                flow.name,
                f"frame {k}: deadline {flow.spec.deadlines[k]:.6g}s is below "
                f"the zero-load path latency {floor:.6g}s; never schedulable",
            )
