"""Multihop network model: nodes, links, software switches.

Models the setting of Sec. 2.1 / Fig. 1 of the paper: a network of

* **IP end hosts** (sources/destinations of flows, e.g. PCs running video
  conferencing),
* **software-implemented Ethernet switches** (Click-style: one processor,
  stride-scheduled ingress/egress tasks, prioritised output queues),
* **IP routers** (the boundary to the wider Internet; routes never
  traverse them — a router can only terminate a route).

Links are directed point-to-point Ethernet links with a bit rate
``linkspeed(N1, N2)`` and a propagation delay ``prop(N1, N2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.util.units import us


class NodeKind(Enum):
    """Role of a node in the network (Fig. 1)."""

    ENDHOST = "endhost"
    SWITCH = "switch"
    ROUTER = "router"


@dataclass(frozen=True)
class SwitchConfig:
    """Processing parameters of a software-implemented Ethernet switch.

    Attributes
    ----------
    c_route:
        ``CROUTE(N)``: uninterrupted execution time to dequeue an Ethernet
        frame from an ingress NIC FIFO, classify it and enqueue it into
        the right prioritised output queue.  The paper measured 2.7 µs on
        its Click implementation.
    c_send:
        ``CSEND(N)``: uninterrupted execution time to move an Ethernet
        frame from a priority queue into the egress NIC FIFO.  Measured
        1.0 µs in the paper.
    n_processors:
        Conclusions extension: with ``m`` processors and
        ``NINTERFACES % m == 0``, interfaces are partitioned evenly so a
        task is served every ``(NINTERFACES/m) * (CROUTE + CSEND)``.
    interface_tickets:
        **Extension beyond the paper** (which restricts stride
        scheduling to all-tickets-equal round-robin, footnote 1):
        per-interface stride tickets as ``((interface, tickets), ...)``.
        Both tasks of an interface get its ticket count; unlisted
        interfaces default to 1.  When any entry is present, the
        per-task service period is bounded by the stride throughput-
        error argument instead of the exact round-robin ``CIRC`` —
        see :meth:`service_bound`.  Not combinable with multiprocessor
        partitioning.
    """

    c_route: float = us(2.7)
    c_send: float = us(1.0)
    n_processors: int = 1
    interface_tickets: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.c_route < 0 or self.c_send < 0:
            raise ValueError("task execution times must be >= 0")
        if self.n_processors < 1:
            raise ValueError("a switch has at least one processor")
        if self.interface_tickets:
            if self.n_processors != 1:
                raise ValueError(
                    "weighted stride tickets are only supported on "
                    "single-processor switches"
                )
            for itf, tk in self.interface_tickets:
                if tk < 1:
                    raise ValueError(
                        f"interface {itf!r}: tickets must be >= 1"
                    )
            names = [itf for itf, _ in self.interface_tickets]
            if len(set(names)) != len(names):
                raise ValueError("duplicate interface in interface_tickets")

    @property
    def is_weighted(self) -> bool:
        """True when a non-round-robin ticket allocation is configured."""
        return bool(self.interface_tickets)

    def tickets_for(self, interface: str) -> int:
        """Stride tickets of both tasks of ``interface`` (default 1)."""
        for itf, tk in self.interface_tickets:
            if itf == interface:
                return tk
        return 1

    def service_bound(self, interfaces: Sequence[str], interface: str) -> float:
        """Worst-case time between two services of ``interface``'s tasks.

        Round-robin configuration: exactly ``CIRC`` (Sec. 3.3).  With
        weighted tickets: stride scheduling guarantees a task with
        ``w`` of ``W`` total tickets is dispatched at least once in any
        ``ceil(W/w) + 1`` consecutive dispatches (the throughput-error
        bound of Waldspurger & Weihl); each intervening dispatch costs
        at most ``max(CROUTE, CSEND)``.  The weighted bound is
        conservative — for tickets all equal it exceeds the exact
        round-robin value, so the exact value is used whenever possible.
        """
        if interface not in interfaces:
            raise ValueError(f"unknown interface {interface!r}")
        if not self.is_weighted:
            return self.circ(len(interfaces))
        total = 2 * sum(self.tickets_for(itf) for itf in interfaces)
        mine = self.tickets_for(interface)
        dispatches = -(-total // mine) + 1
        return dispatches * max(self.c_route, self.c_send)

    def circ(self, n_interfaces: int) -> float:
        """``CIRC(N)``: worst-case period between services of one task.

        Sec. 3.3: with round-robin stride scheduling over
        ``NINTERFACES`` ingress tasks and ``NINTERFACES`` egress tasks,
        each pairing costs ``CROUTE + CSEND``, so any given task runs once
        every ``NINTERFACES × (CROUTE + CSEND)``.  With ``m`` processors
        (conclusions) the interfaces are partitioned, dividing the factor.
        """
        if n_interfaces < 1:
            raise ValueError("a switch has at least one interface")
        if n_interfaces % self.n_processors != 0:
            raise ValueError(
                f"NINTERFACES={n_interfaces} is not divisible by "
                f"m={self.n_processors} processors (conclusions require "
                "equal divisibility)"
            )
        per_processor = n_interfaces // self.n_processors
        return per_processor * (self.c_route + self.c_send)


@dataclass
class Node:
    """A network node (end host, switch or router)."""

    name: str
    kind: NodeKind
    switch: SwitchConfig | None = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.SWITCH and self.switch is None:
            self.switch = SwitchConfig()
        if self.kind is not NodeKind.SWITCH and self.switch is not None:
            raise ValueError(f"node {self.name!r} is not a switch but has a SwitchConfig")

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH


@dataclass(frozen=True)
class Link:
    """A directed link ``link(N1, N2)`` with speed and propagation delay."""

    src: str
    dst: str
    speed_bps: float
    prop_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self-links are not allowed")
        if self.speed_bps <= 0:
            raise ValueError("linkspeed must be positive")
        if self.prop_delay < 0:
            raise ValueError("propagation delay must be >= 0")

    @property
    def ends(self) -> tuple[str, str]:
        return (self.src, self.dst)


class Network:
    """A multihop network: named nodes plus directed links.

    The class exposes exactly the queries the analysis needs:
    ``linkspeed``, ``prop``, ``NINTERFACES(N)`` and ``CIRC(N)``.

    >>> net = Network()
    >>> _ = net.add_endhost("h0"); _ = net.add_switch("s0")
    >>> net.add_duplex_link("h0", "s0", speed_bps=1e7)
    >>> net.linkspeed("h0", "s0")
    10000000.0
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        # Adjacency maps, maintained incrementally by add_link so the
        # interface queries below are O(degree) instead of O(links).
        # Both the simulator build and the analysis context's CIRC
        # queries lean on them for every switch.
        self._neighbors: dict[str, set[str]] = {}
        self._incoming: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._neighbors[node.name] = set()
        self._incoming[node.name] = set()
        return node

    def add_endhost(self, name: str) -> Node:
        """Add an IP end host (a PC; sources/sinks of flows)."""
        return self.add_node(Node(name=name, kind=NodeKind.ENDHOST))

    def add_switch(self, name: str, config: SwitchConfig | None = None) -> Node:
        """Add a software-implemented Ethernet switch."""
        return self.add_node(
            Node(name=name, kind=NodeKind.SWITCH, switch=config or SwitchConfig())
        )

    def add_router(self, name: str) -> Node:
        """Add an IP router (may only start or end a route)."""
        return self.add_node(Node(name=name, kind=NodeKind.ROUTER))

    def add_link(
        self, src: str, dst: str, *, speed_bps: float, prop_delay: float = 0.0
    ) -> Link:
        """Add one directed link."""
        for name in (src, dst):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        key = (src, dst)
        if key in self._links:
            raise ValueError(f"duplicate link {src!r}->{dst!r}")
        link = Link(src=src, dst=dst, speed_bps=speed_bps, prop_delay=prop_delay)
        self._links[key] = link
        self._neighbors[src].add(dst)
        self._incoming[dst].add(src)
        return link

    def add_duplex_link(
        self, a: str, b: str, *, speed_bps: float, prop_delay: float = 0.0
    ) -> None:
        """Add both directions of a full-duplex Ethernet link.

        Switched Ethernet links are full duplex (this is what removes the
        CSMA/CD random backoff the paper's introduction highlights), so
        workloads almost always want both directions.
        """
        self.add_link(a, b, speed_bps=speed_bps, prop_delay=prop_delay)
        self.add_link(b, a, speed_bps=speed_bps, prop_delay=prop_delay)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> Iterator[str]:
        return iter(self._nodes.keys())

    def link(self, src: str, dst: str) -> Link:
        """The link ``link(src, dst)``; KeyError if absent."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r}->{dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def neighbors(self, name: str) -> frozenset[str]:
        """Nodes reachable over one outgoing link of ``name``."""
        return frozenset(self._neighbors[name])

    def linkspeed(self, src: str, dst: str) -> float:
        """``linkspeed(N1, N2)`` in bit/s."""
        return self.link(src, dst).speed_bps

    def prop(self, src: str, dst: str) -> float:
        """``prop(N1, N2)``: propagation delay in seconds."""
        return self.link(src, dst).prop_delay

    def n_interfaces(self, name: str) -> int:
        """``NINTERFACES(N)``: number of attached network interfaces.

        Counted as the number of distinct neighbouring nodes (each
        neighbour is reached through one NIC; duplex pairs share a NIC).
        """
        self.node(name)
        return len(self._neighbors[name] | self._incoming[name])

    def circ(self, name: str) -> float:
        """``CIRC(N)`` for switch ``name`` (Sec. 3.3)."""
        node = self.node(name)
        if node.switch is None:
            raise ValueError(f"node {name!r} is not a switch; CIRC is undefined")
        return node.switch.circ(self.n_interfaces(name))

    def interfaces_of(self, name: str) -> tuple[str, ...]:
        """Sorted neighbour names reached through ``name``'s NICs."""
        self.node(name)
        return tuple(sorted(self._neighbors[name] | self._incoming[name]))

    def circ_task(self, name: str, interface: str) -> float:
        """Worst-case service period of ``interface``'s tasks at switch
        ``name``.

        Equals :meth:`circ` for the paper's round-robin configuration;
        with weighted stride tickets (extension) it is the per-interface
        bound of :meth:`SwitchConfig.service_bound`.
        """
        node = self.node(name)
        if node.switch is None:
            raise ValueError(f"node {name!r} is not a switch; CIRC is undefined")
        return node.switch.service_bound(self.interfaces_of(name), interface)

    def describe(self) -> str:
        """Multi-line human-readable summary of the topology."""
        lines = [f"Network: {len(self._nodes)} nodes, {len(self._links)} links"]
        for node in self._nodes.values():
            lines.append(f"  {node.name} [{node.kind.value}]")
        for link in self._links.values():
            lines.append(
                f"  {link.src} -> {link.dst}: {link.speed_bps:.6g} bit/s, "
                f"prop {link.prop_delay:.6g} s"
            )
        return "\n".join(lines)
