"""The generalized multiframe (GMF) traffic model with generalized jitter.

Sec. 2.3 of the paper: a flow ``tau_i`` is a (potentially infinite)
cyclically repeating sequence of ``n_i`` *frames* — UDP packets, not to be
confused with Ethernet frames.  Frame ``k`` (``k = 0..n_i-1``) is described
by:

* ``T_i^k``  — minimum separation between the arrival of frame ``k`` and
  frame ``(k+1) mod n_i`` at the source node (seconds);
* ``D_i^k``  — relative end-to-end deadline of frame ``k`` (seconds);
* ``GJ_i^k`` — *generalized jitter*: if the first Ethernet frame of frame
  ``k`` is released at ``t``, all its Ethernet frames are released within
  ``[t, t + GJ_i^k)``;
* ``S_i^k``  — payload size in bits of the frame's UDP packet.

The classic sporadic task model is the special case ``n_i = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass(frozen=True)
class GmfSpec:
    """Immutable GMF parameter tuple ``(T_i, D_i, GJ_i, S_i)`` of a flow.

    All tuples must have the same length ``n_frames >= 1``.  Times are in
    seconds, sizes in bits.

    >>> spec = GmfSpec(min_separations=(0.030,) * 3,
    ...                deadlines=(0.100,) * 3,
    ...                jitters=(0.0,) * 3,
    ...                payload_bits=(8_000, 4_000, 4_000))
    >>> spec.n_frames
    3
    >>> spec.tsum
    0.09
    """

    min_separations: tuple[float, ...]
    deadlines: tuple[float, ...]
    jitters: tuple[float, ...]
    payload_bits: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.min_separations)
        if n == 0:
            raise ValueError("a GMF flow needs at least one frame")
        for name, tup in (
            ("deadlines", self.deadlines),
            ("jitters", self.jitters),
            ("payload_bits", self.payload_bits),
        ):
            if len(tup) != n:
                raise ValueError(
                    f"|{name}| = {len(tup)} but |min_separations| = {n}; "
                    "the paper requires |T|=|D|=|GJ|=|S|=n"
                )
        for k, t in enumerate(self.min_separations):
            if not (t >= 0 and math.isfinite(t)):
                raise ValueError(f"T[{k}] = {t!r} must be finite and >= 0")
        if sum(self.min_separations) <= 0:
            raise ValueError(
                "TSUM must be positive: at least one frame separation > 0 "
                "(otherwise the flow releases unbounded work instantly)"
            )
        for k, d in enumerate(self.deadlines):
            if not (d > 0 and math.isfinite(d)):
                raise ValueError(f"D[{k}] = {d!r} must be finite and > 0")
        for k, j in enumerate(self.jitters):
            if not (j >= 0 and math.isfinite(j)):
                raise ValueError(f"GJ[{k}] = {j!r} must be finite and >= 0")
        for k, s in enumerate(self.payload_bits):
            if not isinstance(s, int):
                raise TypeError(f"S[{k}] = {s!r} must be an int (bits)")
            if s <= 0:
                raise ValueError(f"S[{k}] = {s!r} must be > 0 bits")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Number of frames ``n_i`` in one cycle of the flow."""
        return len(self.min_separations)

    @property
    def tsum(self) -> float:
        """``TSUM_i`` (Eq. 6): duration of one full cycle of the flow."""
        return float(sum(self.min_separations))

    @property
    def max_jitter(self) -> float:
        """Largest generalized jitter of any frame (used by ``extra_j``)."""
        return max(self.jitters)

    @property
    def max_payload_bits(self) -> int:
        """Largest frame payload, used by the sporadic-collapse baseline."""
        return max(self.payload_bits)

    @property
    def min_separation(self) -> float:
        """Smallest inter-frame separation, the sporadic-collapse period."""
        return min(self.min_separations)

    def frame_indices(self) -> range:
        """Iterate over frame indices ``0..n_i-1``."""
        return range(self.n_frames)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def rotate(self, offset: int) -> "GmfSpec":
        """Return the same flow with the frame numbering rotated.

        Rotating the start frame does not change the flow's behaviour
        (the GMF cycle has no distinguished origin); analyses must be
        invariant under rotation, which the property tests exercise.
        """
        n = self.n_frames
        offset %= n
        rot = lambda tup: tuple(tup[(k + offset) % n] for k in range(n))
        return GmfSpec(
            min_separations=rot(self.min_separations),
            deadlines=rot(self.deadlines),
            jitters=rot(self.jitters),
            payload_bits=rot(self.payload_bits),
        )

    def separation_window(self, first: int, count: int) -> float:
        """``TSUM_i(k1, k2)`` (Eq. 9): minimum time spanned by ``count``
        consecutive frame arrivals starting at frame ``first``.

        The sum covers ``count - 1`` separations (time between the first
        and last arrival of the window); ``count = 1`` gives ``0``.
        """
        if count < 1:
            raise ValueError("a window contains at least one frame")
        n = self.n_frames
        total = 0.0
        for idx in range(first, first + count - 1):
            total += self.min_separations[idx % n]
        return total

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"GMF(n={self.n_frames}, TSUM={self.tsum:.6g}s, "
            f"S=[{min(self.payload_bits)}..{max(self.payload_bits)}]bits)"
        )


def sporadic_spec(
    *,
    period: float,
    deadline: float,
    payload_bits: int,
    jitter: float = 0.0,
) -> GmfSpec:
    """Build the 1-frame GMF spec equivalent to a sporadic stream.

    Convenience for tests and the sporadic baseline: a sporadic stream
    with minimum inter-arrival ``period`` is exactly a GMF flow with a
    single frame.
    """
    return GmfSpec(
        min_separations=(period,),
        deadlines=(deadline,),
        jitters=(jitter,),
        payload_bits=(payload_bits,),
    )


def gmf_from_uniform(
    *,
    separations: Sequence[float],
    deadline: float,
    payload_bits: Sequence[int],
    jitter: float = 0.0,
) -> GmfSpec:
    """Build a GMF spec with a shared deadline and jitter for all frames.

    Most workloads (e.g. an MPEG stream) have per-frame sizes but a single
    end-to-end latency requirement; this helper avoids repeating it.
    """
    n = len(separations)
    if len(payload_bits) != n:
        raise ValueError("separations and payload_bits must have equal length")
    return GmfSpec(
        min_separations=tuple(float(t) for t in separations),
        deadlines=(float(deadline),) * n,
        jitters=(float(jitter),) * n,
        payload_bits=tuple(int(s) for s in payload_bits),
    )


def frames_overview(spec: GmfSpec) -> Iterator[tuple[int, float, float, float, int]]:
    """Yield ``(k, T, D, GJ, S)`` rows for pretty-printing a spec."""
    for k in spec.frame_indices():
        yield (
            k,
            spec.min_separations[k],
            spec.deadlines[k],
            spec.jitters[k],
            spec.payload_bits[k],
        )
