"""Route construction and validation.

The paper pre-specifies each flow's route (Sec. 2.1): it starts at an IP
end host or IP router, ends at an IP end host or IP router, and all
intermediate nodes are Ethernet switches (never IP routers).  This module
validates that property and provides a shortest-path helper for workload
generators.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.model.network import Network, NodeKind


class RouteError(ValueError):
    """A route violates the paper's structural constraints."""


def validate_route(network: Network, route: Sequence[str]) -> tuple[str, ...]:
    """Validate a route and return it as a tuple.

    Checks (Sec. 2.1):

    * at least two nodes (source != destination);
    * every consecutive pair is connected by a directed link;
    * the source and destination are end hosts or routers;
    * every intermediate node is an Ethernet switch;
    * no node repeats (routes are simple paths).
    """
    route = tuple(route)
    if len(route) < 2:
        raise RouteError(f"route {route!r} needs at least source and destination")
    if len(set(route)) != len(route):
        raise RouteError(f"route {route!r} visits a node twice")
    for name in route:
        if not network.has_node(name):
            raise RouteError(f"route {route!r} mentions unknown node {name!r}")
    for src, dst in zip(route, route[1:]):
        if not network.has_link(src, dst):
            raise RouteError(f"route {route!r} uses missing link {src!r}->{dst!r}")
    for endpoint in (route[0], route[-1]):
        kind = network.node(endpoint).kind
        if kind not in (NodeKind.ENDHOST, NodeKind.ROUTER):
            raise RouteError(
                f"route endpoint {endpoint!r} is a {kind.value}; must be an "
                "end host or IP router"
            )
    for middle in route[1:-1]:
        kind = network.node(middle).kind
        if kind is not NodeKind.SWITCH:
            raise RouteError(
                f"intermediate node {middle!r} is a {kind.value}; routes may "
                "only traverse Ethernet switches"
            )
    return route


def shortest_route(
    network: Network,
    source: str,
    destination: str,
    *,
    weight: str = "hops",
) -> tuple[str, ...]:
    """Shortest valid route from ``source`` to ``destination``.

    Dijkstra over the directed topology, restricted so intermediate nodes
    are switches.  ``weight`` selects the metric:

    * ``"hops"`` — fewest links;
    * ``"latency"`` — smallest sum of propagation delays;
    * ``"transmission"`` — smallest sum of ``1/linkspeed`` (prefers fast
      links; useful when generating contention-heavy workloads).

    Raises :class:`RouteError` when no valid route exists.
    """
    if source == destination:
        raise RouteError("source and destination must differ")
    for name in (source, destination):
        if not network.has_node(name):
            raise RouteError(f"unknown node {name!r}")

    def edge_cost(src: str, dst: str) -> float:
        link = network.link(src, dst)
        if weight == "hops":
            return 1.0
        if weight == "latency":
            return link.prop_delay
        if weight == "transmission":
            return 1.0 / link.speed_bps
        raise ValueError(f"unknown weight {weight!r}")

    # Dijkstra; only switches may be expanded as intermediate nodes.
    dist: dict[str, float] = {source: 0.0}
    prev: dict[str, str] = {}
    heap: list[tuple[float, str]] = [(0.0, source)]
    visited: set[str] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        if u == destination:
            break
        if u != source and not network.node(u).is_switch:
            # End hosts / routers cannot forward traffic.
            continue
        for v in network.neighbors(u):
            if v != destination and not network.node(v).is_switch:
                continue  # cannot route *through* a non-switch
            nd = d + edge_cost(u, v)
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    if destination not in dist:
        raise RouteError(f"no switch-only route from {source!r} to {destination!r}")
    path = [destination]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return validate_route(network, path)


def hops(route: Sequence[str]) -> int:
    """Number of links traversed by a route."""
    return len(route) - 1


def links_of_route(route: Sequence[str]) -> list[tuple[str, str]]:
    """The ordered ``(src, dst)`` link pairs of a route."""
    return list(zip(route, route[1:]))
