"""Traffic and network model substrate.

This package holds the *inputs* to the analysis: the generalized
multiframe (GMF) traffic description (Sec. 2.3 of the paper), the
multihop network of end hosts / software Ethernet switches / IP routers
(Sec. 2.1, Fig. 1), flows binding a GMF spec to a route and priority, and
priority-assignment policies.
"""

from repro.model.gmf import GmfSpec, gmf_from_uniform, sporadic_spec
from repro.model.network import (
    Link,
    Network,
    Node,
    NodeKind,
    SwitchConfig,
)
from repro.model.flow import Flow, Transport
from repro.model.routing import RouteError, shortest_route, validate_route
from repro.model.priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
    clamp_to_levels,
)

__all__ = [
    "Flow",
    "GmfSpec",
    "Link",
    "Network",
    "Node",
    "NodeKind",
    "RouteError",
    "SwitchConfig",
    "Transport",
    "assign_deadline_monotonic",
    "assign_rate_monotonic",
    "clamp_to_levels",
    "gmf_from_uniform",
    "shortest_route",
    "sporadic_spec",
    "validate_route",
]
