"""Unit helpers.

All analysis code uses **seconds** for time and **bits** (or bits per
second) for data; these helpers make call sites explicit about units so a
reader never has to guess whether ``2.7`` means microseconds or
milliseconds.  The paper mixes µs (switch task costs), ms (MPEG frame
times) and Mbit/s (link speeds); converting at the boundary keeps the
equations in :mod:`repro.core` unit-free.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One millisecond, in seconds.
MILLISECOND = 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds (``us(2.7) == 2.7e-6``)."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Convert milliseconds to seconds (``ms(30) == 0.030``)."""
    return value * MILLISECOND


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * MEGA


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * GIGA


def bits_from_bytes(n_bytes: float) -> int:
    """Number of bits in ``n_bytes`` bytes."""
    return int(n_bytes * BITS_PER_BYTE)


def bytes_from_bits(n_bits: float) -> float:
    """Number of bytes occupied by ``n_bits`` bits (may be fractional)."""
    return n_bits / BITS_PER_BYTE


def fmt_duration(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit.

    >>> fmt_duration(2.7e-6)
    '2.700 us'
    >>> fmt_duration(0.27)
    '270.000 ms'
    """
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.3f} ns"


def fmt_rate(bits_per_second: float) -> str:
    """Human-readable bit rate with an auto-selected unit.

    >>> fmt_rate(10_000_000)
    '10.000 Mbit/s'
    """
    magnitude = abs(bits_per_second)
    if magnitude >= GIGA:
        return f"{bits_per_second / GIGA:.3f} Gbit/s"
    if magnitude >= MEGA:
        return f"{bits_per_second / MEGA:.3f} Mbit/s"
    if magnitude >= KILO:
        return f"{bits_per_second / KILO:.3f} kbit/s"
    return f"{bits_per_second:.3f} bit/s"
