"""Generic driver for the busy-period / response-time fixed points.

Every analysis in the paper (Eqs. 14-19, 21-26, 28-33 and the holistic
iteration of Sec. 3.5) is an iteration ``x_{v+1} = f(x_v)`` with a
monotone non-decreasing ``f`` started from a lower bound, stopped at the
first ``x_{v+1} == x_v``.  This module centralises convergence detection,
divergence cut-offs and iteration accounting so the analysis modules stay
equation-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class FixedPointDiverged(RuntimeError):
    """Raised when a busy-period iteration exceeds its divergence bound.

    The paper's Eqs. 20/34/35 give utilisation conditions under which the
    iterations converge; outside them the iteration grows without bound and
    the flow set is deemed unschedulable.  Callers normally pre-check the
    utilisation condition, but the horizon/iteration caps here are the
    backstop for pathological inputs (e.g. utilisation exactly 1).
    """

    def __init__(self, message: str, last_value: float, iterations: int):
        super().__init__(message)
        self.last_value = last_value
        self.iterations = iterations


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a convergent fixed-point iteration.

    Attributes
    ----------
    value:
        The fixed point ``x`` with ``f(x) == x``.
    iterations:
        Number of applications of ``f`` performed (0 when the seed was
        already a fixed point).
    """

    value: float
    iterations: int


#: Default cap on the number of iterations before declaring divergence.
DEFAULT_MAX_ITERATIONS = 100_000

#: Default relative tolerance used to declare convergence.  The recurrences
#: in this library are sums/products of floats, so exact equality is usually
#: reached, but a tolerance guards against last-bit oscillation.
DEFAULT_REL_TOL = 1e-12


def iterate_fixed_point(
    f: Callable[[float], float],
    seed: float,
    *,
    horizon: float = float("inf"),
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    rel_tol: float = DEFAULT_REL_TOL,
    what: str = "fixed point",
) -> FixedPointResult:
    """Iterate ``x <- f(x)`` from ``seed`` until convergence.

    Parameters
    ----------
    f:
        Monotone non-decreasing update function.
    seed:
        Starting value; must be a lower bound on the fixed point for the
        result to be the *least* fixed point (all callers guarantee this).
    horizon:
        Upper bound on ``x`` beyond which the iteration is declared
        divergent (e.g. the deadline or a busy-period cap).
    max_iterations:
        Hard cap on iterations, a backstop for slow growth near
        utilisation 1.
    rel_tol:
        Relative tolerance for convergence.
    what:
        Human-readable description used in error messages.

    Raises
    ------
    FixedPointDiverged
        If the iteration exceeds ``horizon`` or ``max_iterations``.
    ValueError
        If ``f`` ever decreases the iterate, which indicates a programming
        error in the caller (the paper's recurrences are monotone).
    """
    x = float(seed)
    for iteration in range(max_iterations):
        nxt = float(f(x))
        if nxt < x and (x - nxt) > rel_tol * max(1.0, abs(x)):
            raise ValueError(
                f"{what}: update decreased from {x!r} to {nxt!r}; "
                "recurrence is expected to be monotone non-decreasing"
            )
        if nxt > horizon:
            raise FixedPointDiverged(
                f"{what}: iterate {nxt!r} exceeded horizon {horizon!r}",
                last_value=nxt,
                iterations=iteration + 1,
            )
        if abs(nxt - x) <= rel_tol * max(1.0, abs(x), abs(nxt)):
            return FixedPointResult(value=nxt, iterations=iteration + 1)
        x = nxt
    raise FixedPointDiverged(
        f"{what}: no convergence after {max_iterations} iterations "
        f"(last value {x!r})",
        last_value=x,
        iterations=max_iterations,
    )
