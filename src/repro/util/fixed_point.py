"""Generic driver for the busy-period / response-time fixed points.

Every analysis in the paper (Eqs. 14-19, 21-26, 28-33 and the holistic
iteration of Sec. 3.5) is an iteration ``x_{v+1} = f(x_v)`` with a
monotone non-decreasing ``f`` started from a lower bound, stopped at the
first ``x_{v+1} == x_v``.  This module centralises convergence detection,
divergence cut-offs and iteration accounting so the analysis modules stay
equation-shaped.

Accelerated mode
----------------
Plain Picard iteration climbs the demand staircase one plateau at a
time, which near utilisation 1 means thousands of tiny steps.  The
recurrences here admit a *safeguarded* certified-floor acceleration
that keeps the result exact:

* The caller certifies an affine lower support ``f(t) >= rate*t +
  intercept`` for all ``t >= 0`` (a :class:`LinearLowerBound`).  For the
  paper's recurrences this is immediate: every ``MX``/``NX`` demand term
  is bounded below by its long-run rate (Eqs. 4-6), so ``rate`` is the
  summed utilisation of the interferer set and ``intercept`` collects
  the constant terms and jitter shifts.  No fixed point can lie below
  ``intercept / (1 - rate)`` — starting the iteration at that *floor*
  is sound and cannot overshoot the least fixed point, so the
  accelerated iteration converges to *the same* fixed point as plain
  Picard (the holistic engine relies on this for bit-identical
  results), skipping the entire staircase climb below the floor.
  Secant / Anderson(1) extrapolation *above* the floor is available as
  an **opt-in** mode (``anderson=True``; Rebholz et al. 2021, Bian &
  Chen 2022 motivate the nonsmooth variant) but is deliberately *not*
  part of the default fast path, because it is **sound yet not always
  exact**: the staircases cross the diagonal more than once (exactly
  why the analyses examine several instances ``q``), and above the
  certified floor no global-certificate clamp can stop an extrapolated
  step from jumping past the least fixed point.  The mode defends
  every jump with the same safeguard the floor uses — below the least
  fixed point a monotone ``f`` satisfies ``f(t) > t`` strictly, so any
  non-increase at a jump target is overshoot evidence and restarts the
  iteration as plain (floor-accelerated) Picard, and a jump target is
  never allowed to *prove* divergence.  That makes the mode exact on
  recurrences with a single diagonal crossing at or above the seed
  (the textbook response-time shape) and guarantees that any accepted
  result is a true fixed point — i.e. a valid, possibly pessimistic,
  upper bound on the least one — but a jump into a strictly-
  increasing region above the least fixed point is undetectable in a
  black-box model.  Hence: off by default, never part of the
  bit-identical engine family, tested for exactness on the
  single-crossing class and for sound pessimism on adversarial
  staircases in ``tests/test_fixed_point.py``.
* The floor is defended twice against certificate rounding: its shave
  scales with the ``1/(1-rate)`` error amplification (collapsing to a
  vacuous floor as ``rate`` approaches 1), and the first evaluation
  after a floor jump must not decrease — below the least fixed point a
  monotone ``f`` satisfies ``f(t) > t`` strictly, so any decrease
  proves an overshoot and the iteration restarts as plain Picard.
* ``rate >= 1`` with a positive intercept certifies ``f(t) > t``
  everywhere: the iteration cannot converge and is declared divergent
  immediately instead of crawling to the horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro import telemetry as _telemetry
from repro.telemetry import tracing as _tracing


class FixedPointDiverged(RuntimeError):
    """Raised when a busy-period iteration exceeds its divergence bound.

    The paper's Eqs. 20/34/35 give utilisation conditions under which the
    iterations converge; outside them the iteration grows without bound and
    the flow set is deemed unschedulable.  Callers normally pre-check the
    utilisation condition, but the horizon/iteration caps here are the
    backstop for pathological inputs (e.g. utilisation exactly 1).
    """

    def __init__(self, message: str, last_value: float, iterations: int):
        super().__init__(message)
        self.last_value = last_value
        self.iterations = iterations


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a convergent fixed-point iteration.

    Attributes
    ----------
    value:
        The fixed point ``x`` with ``f(x) == x``.
    iterations:
        Number of applications of ``f`` that advanced the iterate (0
        when the seed was already a fixed point; the final confirming
        application that reproduces its input exactly is not counted).
    """

    value: float
    iterations: int


@dataclass(frozen=True)
class LinearLowerBound:
    """Certificate ``f(t) >= rate*t + intercept`` for all ``t >= 0``.

    Produced by the stage analyses from the interferer set's long-run
    demand rates; consumed by :func:`iterate_fixed_point` to bound the
    region that provably contains no fixed point (see module docstring).
    """

    rate: float
    intercept: float

    @property
    def floor(self) -> float:
        """Largest value certified to be <= the least fixed point.

        ``rate*t + intercept > t`` for every ``t`` below
        ``intercept / (1 - rate)``, so no fixed point exists there.
        Returns ``inf`` when ``rate >= 1`` and the intercept is positive
        (no fixed point exists at all) and ``0.0`` when the certificate
        is vacuous.
        """
        if self.intercept <= 0.0:
            return 0.0
        if self.rate >= 1.0:
            return math.inf
        # Shaved so that float rounding in the certificate (a summed
        # rate a few ulps above the staircase's true long-run slope)
        # cannot push the floor past the true least fixed point.  The
        # rounding error is amplified by 1/(1-rate), so the margin must
        # scale the same way; near rate 1 it reaches 1 and the floor
        # collapses to 0 (plain Picard — sound, just unaccelerated).
        slack = 1.0 - self.rate
        margin = min(1.0, 1e-10 / slack)
        return (self.intercept / slack) * (1.0 - margin)


def solve_cached(
    cache: dict,
    key: float,
    f: Callable[[float], float],
    *,
    seed: float,
    horizon: float = float("inf"),
    max_iterations: int = 0,
    what: str = "fixed point",
    accelerator: LinearLowerBound | None = None,
    anderson: bool = False,
) -> float | None:
    """Memoized least-fixed-point solve; ``None`` records divergence.

    The stage analyses solve the same recurrence for many frames or
    instances that differ only in a seed/backlog value; this helper
    centralises the cache-or-solve pattern (and its divergence-as-None
    convention) they all share.  ``max_iterations <= 0`` means the
    module default.
    """
    reg = _telemetry.REGISTRY
    if key not in cache:
        if reg is not None:
            reg.add("engine.fixed_point.cache_misses")
        try:
            cache[key] = iterate_fixed_point(
                f,
                seed=seed,
                horizon=horizon,
                max_iterations=(
                    max_iterations
                    if max_iterations > 0
                    else DEFAULT_MAX_ITERATIONS
                ),
                what=what,
                accelerator=accelerator,
                anderson=anderson,
            ).value
        except FixedPointDiverged:
            cache[key] = None
    elif reg is not None:
        reg.add("engine.fixed_point.cache_hits")
    return cache[key]


#: Default cap on the number of iterations before declaring divergence.
DEFAULT_MAX_ITERATIONS = 100_000

#: Fraction of the secant step (beyond the plain Picard step) an
#: Anderson(1) jump actually takes.  The staircases are discretisations
#: of the affine trend the secant reconstructs, so the continuous
#: crossing typically lies slightly *past* the least fixed point;
#: stopping short keeps most of the speedup while making overshoot (a
#: safeguarded restart at best, a sound-but-pessimistic fixed point at
#: worst) the exception rather than the rule.
ANDERSON_DAMPING = 0.9

#: Minimum relative progress (beyond the plain Picard step) a jump must
#: promise to be taken.  Near the fixed point the remaining gap shrinks
#: below the staircase's plateau width, where any extrapolation lands
#: past the least crossing and triggers a safeguarded restart that
#: throws the whole climb away — so the endgame is always handed back
#: to plain Picard.
ANDERSON_MIN_GAIN = 0.05

#: Default relative tolerance used to declare convergence.  The recurrences
#: in this library are sums/products of floats, so exact equality is usually
#: reached, but a tolerance guards against last-bit oscillation.
DEFAULT_REL_TOL = 1e-12


def iterate_fixed_point(
    f: Callable[[float], float],
    seed: float,
    *,
    horizon: float = float("inf"),
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    rel_tol: float = DEFAULT_REL_TOL,
    what: str = "fixed point",
    accelerator: LinearLowerBound | None = None,
    anderson: bool = False,
) -> FixedPointResult:
    """Iterate ``x <- f(x)`` from ``seed`` until convergence.

    Parameters
    ----------
    f:
        Monotone non-decreasing update function.
    seed:
        Starting value; must be a lower bound on the fixed point for the
        result to be the *least* fixed point (all callers guarantee this).
    horizon:
        Upper bound on ``x`` beyond which the iteration is declared
        divergent (e.g. the deadline or a busy-period cap).
    max_iterations:
        Hard cap on iterations, a backstop for slow growth near
        utilisation 1.
    rel_tol:
        Relative tolerance for convergence.
    what:
        Human-readable description used in error messages.
    accelerator:
        Optional :class:`LinearLowerBound` certificate enabling the
        certified-floor acceleration (see module docstring).  The
        result is exactly the least fixed point Picard would reach.
    anderson:
        Opt-in Anderson(1)/secant extrapolation above the floor (see
        module docstring).  Every jump is defended by the floor's
        overshoot safeguard — a non-increasing evaluation at a jump
        target restarts the iteration as plain Picard, and a jump can
        never prove divergence — making the result exact on
        single-crossing recurrences and always a true (possibly
        non-least, i.e. pessimistic-but-sound) fixed point otherwise.
        Off by default for that reason.

    Raises
    ------
    FixedPointDiverged
        If the iteration exceeds ``horizon`` or ``max_iterations``, or
        the certificate proves no fixed point exists.
    ValueError
        If ``f`` ever decreases the iterate, which indicates a programming
        error in the caller (the paper's recurrences are monotone).
    """
    x = float(seed)
    floor = 0.0
    if accelerator is not None:
        floor = accelerator.floor
        if math.isinf(floor):
            # rate >= 1 with positive intercept: f(t) > t everywhere.
            _note_diverged()
            raise FixedPointDiverged(
                f"{what}: certified divergent "
                f"(demand rate {accelerator.rate!r} >= 1)",
                last_value=x,
                iterations=0,
            )
        if floor > horizon:
            _note_diverged()
            raise FixedPointDiverged(
                f"{what}: certified floor {floor!r} exceeds horizon "
                f"{horizon!r}",
                last_value=floor,
                iterations=0,
            )
        if floor > x:
            # Start directly at the certified floor: no fixed point
            # lies below it, so this is still a lower bound on the
            # least fixed point and the monotone iteration converges to
            # the same value, skipping the staircase climb below it.
            x = floor
    jumped = x == floor and floor > 0.0
    prev_x = prev_f = 0.0
    have_prev = False  # a (prev_x, prev_f) graph point for the secant
    at_jump = False    # x is an unconfirmed Anderson jump target
    anderson_jumps = 0
    for iteration in range(max_iterations):
        nxt = float(f(x))
        if jumped and iteration == 0 and nxt < x:
            # Below the least fixed point a monotone f satisfies
            # f(t) > t strictly, so any decrease at the floor proves
            # the certificate's rounding overshot it.  Restart as plain
            # Picard from the original seed (sound, merely slower).
            _telemetry.add("engine.fixed_point.floor_restarts")
            return iterate_fixed_point(
                f,
                seed,
                horizon=horizon,
                max_iterations=max_iterations,
                rel_tol=rel_tol,
                what=what,
            )
        if at_jump and nxt <= x:
            # The same safeguard applied to an Anderson jump: any
            # non-increase at the target (a plateau hit counts — the
            # target could sit on a fixed point that is not the least)
            # is overshoot evidence.  Restart without extrapolation;
            # the certified floor, if any, remains in force.
            _telemetry.add("engine.fixed_point.anderson_restarts")
            return iterate_fixed_point(
                f,
                seed,
                horizon=horizon,
                max_iterations=max_iterations,
                rel_tol=rel_tol,
                what=what,
                accelerator=accelerator,
            )
        if nxt < x and (x - nxt) > rel_tol * max(1.0, abs(x)):
            raise ValueError(
                f"{what}: update decreased from {x!r} to {nxt!r}; "
                "recurrence is expected to be monotone non-decreasing"
            )
        if nxt > horizon:
            if at_jump:
                # A jump target must never *prove* divergence: the jump
                # could have overshot the least fixed point into a
                # region whose demand exceeds the horizon.  Restart and
                # let plain Picard decide.
                _telemetry.add("engine.fixed_point.anderson_restarts")
                return iterate_fixed_point(
                    f,
                    seed,
                    horizon=horizon,
                    max_iterations=max_iterations,
                    rel_tol=rel_tol,
                    what=what,
                    accelerator=accelerator,
                )
            _note_diverged()
            raise FixedPointDiverged(
                f"{what}: iterate {nxt!r} exceeded horizon {horizon!r}",
                last_value=nxt,
                iterations=iteration + 1,
            )
        if not at_jump and abs(nxt - x) <= rel_tol * max(1.0, abs(x), abs(nxt)):
            # The final application only confirmed the fixed point when
            # it reproduced its input exactly (seed-was-fixed contract).
            advanced = iteration + (0 if nxt == x else 1)
            reg = _telemetry.REGISTRY
            if reg is not None:
                reg.add("engine.fixed_point.solves")
                reg.observe("engine.fixed_point.iterations", advanced)
                if jumped:
                    reg.add("engine.fixed_point.floor_jumps")
                if anderson_jumps:
                    reg.add(
                        "engine.fixed_point.anderson_jumps", anderson_jumps
                    )
            tr = _tracing.TRACER
            if tr is not None:
                # Solver attribution: fold per-solve work onto whatever
                # request span is open (admission.request in the shard
                # worker), so a traced slow admit shows *why* — spiky
                # iteration counts, not just elapsed time.
                tr.annotate("fp.solves")
                tr.annotate("fp.iterations", float(advanced))
            return FixedPointResult(value=nxt, iterations=advanced)
        at_jump = False
        new_x = nxt
        if anderson and have_prev and x > prev_x:
            # Anderson(1): secant of g(t) = f(t) - t through the last
            # two graph points, damped to stop short of the
            # extrapolated crossing; jump only when it still lands
            # strictly beyond the plain Picard step and inside the
            # horizon.
            denom = (x - prev_x) - (nxt - prev_f)
            if denom > 0.0:
                secant = x + (nxt - x) * (x - prev_x) / denom
                target = nxt + ANDERSON_DAMPING * (secant - nxt)
                if (
                    target > nxt + ANDERSON_MIN_GAIN * abs(nxt)
                    and target <= horizon
                ):
                    new_x = target
                    at_jump = True
                    anderson_jumps += 1
        prev_x = x
        prev_f = nxt
        have_prev = True
        x = new_x
    _note_diverged()
    raise FixedPointDiverged(
        f"{what}: no convergence after {max_iterations} iterations "
        f"(last value {x!r})",
        last_value=x,
        iterations=max_iterations,
    )


def _note_diverged() -> None:
    """Count a divergence declaration (cold path)."""
    _telemetry.add("engine.fixed_point.diverged")
