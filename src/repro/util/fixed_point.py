"""Generic driver for the busy-period / response-time fixed points.

Every analysis in the paper (Eqs. 14-19, 21-26, 28-33 and the holistic
iteration of Sec. 3.5) is an iteration ``x_{v+1} = f(x_v)`` with a
monotone non-decreasing ``f`` started from a lower bound, stopped at the
first ``x_{v+1} == x_v``.  This module centralises convergence detection,
divergence cut-offs and iteration accounting so the analysis modules stay
equation-shaped.

Accelerated mode
----------------
Plain Picard iteration climbs the demand staircase one plateau at a
time, which near utilisation 1 means thousands of tiny steps.  The
recurrences here admit a *safeguarded* certified-floor acceleration
that keeps the result exact:

* The caller certifies an affine lower support ``f(t) >= rate*t +
  intercept`` for all ``t >= 0`` (a :class:`LinearLowerBound`).  For the
  paper's recurrences this is immediate: every ``MX``/``NX`` demand term
  is bounded below by its long-run rate (Eqs. 4-6), so ``rate`` is the
  summed utilisation of the interferer set and ``intercept`` collects
  the constant terms and jitter shifts.  No fixed point can lie below
  ``intercept / (1 - rate)`` — starting the iteration at that *floor*
  is sound and cannot overshoot the least fixed point, so the
  accelerated iteration converges to *the same* fixed point as plain
  Picard (the holistic engine relies on this for bit-identical
  results), skipping the entire staircase climb below the floor.
  Secant / Anderson(1) extrapolation *above* the floor was evaluated
  and rejected: the staircases cross the diagonal more than once
  (exactly why the analyses examine several instances ``q``), and
  above the certified floor there is no sound clamp that stops an
  extrapolated step from jumping past the least fixed point.
* The floor is defended twice against certificate rounding: its shave
  scales with the ``1/(1-rate)`` error amplification (collapsing to a
  vacuous floor as ``rate`` approaches 1), and the first evaluation
  after a floor jump must not decrease — below the least fixed point a
  monotone ``f`` satisfies ``f(t) > t`` strictly, so any decrease
  proves an overshoot and the iteration restarts as plain Picard.
* ``rate >= 1`` with a positive intercept certifies ``f(t) > t``
  everywhere: the iteration cannot converge and is declared divergent
  immediately instead of crawling to the horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


class FixedPointDiverged(RuntimeError):
    """Raised when a busy-period iteration exceeds its divergence bound.

    The paper's Eqs. 20/34/35 give utilisation conditions under which the
    iterations converge; outside them the iteration grows without bound and
    the flow set is deemed unschedulable.  Callers normally pre-check the
    utilisation condition, but the horizon/iteration caps here are the
    backstop for pathological inputs (e.g. utilisation exactly 1).
    """

    def __init__(self, message: str, last_value: float, iterations: int):
        super().__init__(message)
        self.last_value = last_value
        self.iterations = iterations


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a convergent fixed-point iteration.

    Attributes
    ----------
    value:
        The fixed point ``x`` with ``f(x) == x``.
    iterations:
        Number of applications of ``f`` that advanced the iterate (0
        when the seed was already a fixed point; the final confirming
        application that reproduces its input exactly is not counted).
    """

    value: float
    iterations: int


@dataclass(frozen=True)
class LinearLowerBound:
    """Certificate ``f(t) >= rate*t + intercept`` for all ``t >= 0``.

    Produced by the stage analyses from the interferer set's long-run
    demand rates; consumed by :func:`iterate_fixed_point` to bound the
    region that provably contains no fixed point (see module docstring).
    """

    rate: float
    intercept: float

    @property
    def floor(self) -> float:
        """Largest value certified to be <= the least fixed point.

        ``rate*t + intercept > t`` for every ``t`` below
        ``intercept / (1 - rate)``, so no fixed point exists there.
        Returns ``inf`` when ``rate >= 1`` and the intercept is positive
        (no fixed point exists at all) and ``0.0`` when the certificate
        is vacuous.
        """
        if self.intercept <= 0.0:
            return 0.0
        if self.rate >= 1.0:
            return math.inf
        # Shaved so that float rounding in the certificate (a summed
        # rate a few ulps above the staircase's true long-run slope)
        # cannot push the floor past the true least fixed point.  The
        # rounding error is amplified by 1/(1-rate), so the margin must
        # scale the same way; near rate 1 it reaches 1 and the floor
        # collapses to 0 (plain Picard — sound, just unaccelerated).
        slack = 1.0 - self.rate
        margin = min(1.0, 1e-10 / slack)
        return (self.intercept / slack) * (1.0 - margin)


def solve_cached(
    cache: dict,
    key: float,
    f: Callable[[float], float],
    *,
    seed: float,
    horizon: float = float("inf"),
    max_iterations: int = 0,
    what: str = "fixed point",
    accelerator: LinearLowerBound | None = None,
) -> float | None:
    """Memoized least-fixed-point solve; ``None`` records divergence.

    The stage analyses solve the same recurrence for many frames or
    instances that differ only in a seed/backlog value; this helper
    centralises the cache-or-solve pattern (and its divergence-as-None
    convention) they all share.  ``max_iterations <= 0`` means the
    module default.
    """
    if key not in cache:
        try:
            cache[key] = iterate_fixed_point(
                f,
                seed=seed,
                horizon=horizon,
                max_iterations=(
                    max_iterations
                    if max_iterations > 0
                    else DEFAULT_MAX_ITERATIONS
                ),
                what=what,
                accelerator=accelerator,
            ).value
        except FixedPointDiverged:
            cache[key] = None
    return cache[key]


#: Default cap on the number of iterations before declaring divergence.
DEFAULT_MAX_ITERATIONS = 100_000

#: Default relative tolerance used to declare convergence.  The recurrences
#: in this library are sums/products of floats, so exact equality is usually
#: reached, but a tolerance guards against last-bit oscillation.
DEFAULT_REL_TOL = 1e-12


def iterate_fixed_point(
    f: Callable[[float], float],
    seed: float,
    *,
    horizon: float = float("inf"),
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    rel_tol: float = DEFAULT_REL_TOL,
    what: str = "fixed point",
    accelerator: LinearLowerBound | None = None,
) -> FixedPointResult:
    """Iterate ``x <- f(x)`` from ``seed`` until convergence.

    Parameters
    ----------
    f:
        Monotone non-decreasing update function.
    seed:
        Starting value; must be a lower bound on the fixed point for the
        result to be the *least* fixed point (all callers guarantee this).
    horizon:
        Upper bound on ``x`` beyond which the iteration is declared
        divergent (e.g. the deadline or a busy-period cap).
    max_iterations:
        Hard cap on iterations, a backstop for slow growth near
        utilisation 1.
    rel_tol:
        Relative tolerance for convergence.
    what:
        Human-readable description used in error messages.
    accelerator:
        Optional :class:`LinearLowerBound` certificate enabling the
        certified-floor acceleration (see module docstring).  The
        result is exactly the least fixed point Picard would reach.

    Raises
    ------
    FixedPointDiverged
        If the iteration exceeds ``horizon`` or ``max_iterations``, or
        the certificate proves no fixed point exists.
    ValueError
        If ``f`` ever decreases the iterate, which indicates a programming
        error in the caller (the paper's recurrences are monotone).
    """
    x = float(seed)
    floor = 0.0
    if accelerator is not None:
        floor = accelerator.floor
        if math.isinf(floor):
            # rate >= 1 with positive intercept: f(t) > t everywhere.
            raise FixedPointDiverged(
                f"{what}: certified divergent "
                f"(demand rate {accelerator.rate!r} >= 1)",
                last_value=x,
                iterations=0,
            )
        if floor > horizon:
            raise FixedPointDiverged(
                f"{what}: certified floor {floor!r} exceeds horizon "
                f"{horizon!r}",
                last_value=floor,
                iterations=0,
            )
        if floor > x:
            # Start directly at the certified floor: no fixed point
            # lies below it, so this is still a lower bound on the
            # least fixed point and the monotone iteration converges to
            # the same value, skipping the staircase climb below it.
            x = floor
    jumped = x == floor and floor > 0.0
    for iteration in range(max_iterations):
        nxt = float(f(x))
        if jumped and iteration == 0 and nxt < x:
            # Below the least fixed point a monotone f satisfies
            # f(t) > t strictly, so any decrease at the floor proves
            # the certificate's rounding overshot it.  Restart as plain
            # Picard from the original seed (sound, merely slower).
            return iterate_fixed_point(
                f,
                seed,
                horizon=horizon,
                max_iterations=max_iterations,
                rel_tol=rel_tol,
                what=what,
            )
        if nxt < x and (x - nxt) > rel_tol * max(1.0, abs(x)):
            raise ValueError(
                f"{what}: update decreased from {x!r} to {nxt!r}; "
                "recurrence is expected to be monotone non-decreasing"
            )
        if nxt > horizon:
            raise FixedPointDiverged(
                f"{what}: iterate {nxt!r} exceeded horizon {horizon!r}",
                last_value=nxt,
                iterations=iteration + 1,
            )
        if abs(nxt - x) <= rel_tol * max(1.0, abs(x), abs(nxt)):
            # The final application only confirmed the fixed point when
            # it reproduced its input exactly (seed-was-fixed contract).
            advanced = iteration + (0 if nxt == x else 1)
            return FixedPointResult(value=nxt, iterations=advanced)
        x = nxt
    raise FixedPointDiverged(
        f"{what}: no convergence after {max_iterations} iterations "
        f"(last value {x!r})",
        last_value=x,
        iterations=max_iterations,
    )
