"""Shared utilities: units, fixed-point iteration, table formatting.

These helpers are deliberately free of any domain knowledge so that the
analysis modules in :mod:`repro.core` read as close to the paper's equations
as possible.
"""

from repro.util.units import (
    BITS_PER_BYTE,
    GIGA,
    KILO,
    MEGA,
    MICROSECOND,
    MILLISECOND,
    bits_from_bytes,
    bytes_from_bits,
    fmt_duration,
    fmt_rate,
    mbps,
    gbps,
    us,
    ms,
)
from repro.util.fixed_point import (
    FixedPointDiverged,
    FixedPointResult,
    iterate_fixed_point,
)
from repro.util.tables import Table

__all__ = [
    "BITS_PER_BYTE",
    "GIGA",
    "KILO",
    "MEGA",
    "MICROSECOND",
    "MILLISECOND",
    "FixedPointDiverged",
    "FixedPointResult",
    "Table",
    "bits_from_bytes",
    "bytes_from_bits",
    "fmt_duration",
    "fmt_rate",
    "gbps",
    "iterate_fixed_point",
    "mbps",
    "ms",
    "us",
]
