"""Minimal ASCII table formatter for experiment output.

The benchmark harness prints the same rows the paper's worked examples
report; this keeps the output dependency-free and diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """Accumulates rows and renders a fixed-width ASCII table.

    >>> t = Table(["flow", "R (ms)"], title="demo")
    >>> t.add_row(["tau_1", 12.5])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; values are stringified (floats with 6 sig. digits)."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
