"""Shared multiprocessing start-method policy.

Fork keeps dynamically-registered families/actions and the already-
imported analysis stack visible to workers at zero start-up cost — but
only Linux forks safely once numpy/BLAS threads exist (macOS defaults
to spawn for exactly that reason, so its platform default is
respected).  Both the campaign runner's pool and the service's shard
workers route through here so the policy can only change in one place.
"""

from __future__ import annotations

import multiprocessing
import sys


def mp_context():
    """The multiprocessing context every worker-spawning layer uses."""
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
