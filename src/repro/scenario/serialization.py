"""Versioned JSON round-trip for :class:`~repro.scenario.model.Scenario`.

Schema v1 is a strict superset of the legacy :mod:`repro.io` format::

    {
      "schema_version": 1,
      "name": "my-scenario",
      "network": {...},          # repro.io network document
      "flows": [...],            # repro.io flow documents
      "analysis": {...},         # AnalysisOptions fields (optional)
      "sim": {...},              # SimConfig fields (optional)
      "generator": {"family": "...", "params": {...}},   # optional
      "churn": [{"action": "admit", "flow": {...}}, ...] # optional
    }

Because ``network``/``flows`` keep the legacy layout at the top level,
files written here remain loadable by :func:`repro.io.load_scenario`,
and every pre-existing legacy file (no ``schema_version``) loads as a
v1 scenario with default analysis/sim options.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.context import AnalysisOptions
from repro.core.packetization import PacketizationConfig
from repro.io import (
    MAX_SCHEMA_VERSION,
    ScenarioError,
    flow_from_dict,
    flow_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.scenario.model import ChurnEvent, Scenario, ScenarioSpec
from repro.sim.simulator import SimConfig

#: Current scenario-document schema version.  Legacy ``repro.io``
#: documents (no ``schema_version`` key) are treated as version 0.
#: Kept in lock-step with :data:`repro.io.MAX_SCHEMA_VERSION` so the
#: legacy loader can gate on the same number.
SCHEMA_VERSION = MAX_SCHEMA_VERSION


# ----------------------------------------------------------------------
# Option blocks (generic dataclass field round-trip)
# ----------------------------------------------------------------------
def _fields_to_dict(obj: Any) -> dict[str, Any]:
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def _dict_to_fields(cls, doc: Mapping[str, Any], label: str) -> Any:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(doc) - known
    if unknown:
        raise ScenarioError(
            f"{label}: unknown key(s) {sorted(unknown)!r}; "
            f"expected a subset of {sorted(known)!r}"
        )
    return cls(**doc)


def analysis_options_to_dict(options: AnalysisOptions) -> dict[str, Any]:
    return _fields_to_dict(options)


def analysis_options_from_dict(doc: Mapping[str, Any]) -> AnalysisOptions:
    return _dict_to_fields(AnalysisOptions, doc, "analysis options")


def sim_config_to_dict(sim: SimConfig) -> dict[str, Any]:
    out = _fields_to_dict(sim)
    out["packetization"] = _fields_to_dict(sim.packetization)
    return out


def sim_config_from_dict(doc: Mapping[str, Any]) -> SimConfig:
    doc = dict(doc)
    pkt = doc.pop("packetization", None)
    sim = _dict_to_fields(SimConfig, doc, "sim config")
    if pkt is not None:
        pkt_cfg = _dict_to_fields(
            PacketizationConfig, pkt, "sim config packetization"
        )
        sim = dataclasses.replace(sim, packetization=pkt_cfg)
    return sim


def churn_event_to_dict(event: ChurnEvent) -> dict[str, Any]:
    if event.action == "admit":
        return {"action": "admit", "flow": flow_to_dict(event.flow)}
    return {"action": "release", "flow_name": event.flow_name}


def churn_event_from_dict(doc: Mapping[str, Any]) -> ChurnEvent:
    action = doc.get("action")
    if action == "admit":
        if "flow" not in doc:
            raise ScenarioError("admit churn event: missing 'flow'")
        return ChurnEvent(action="admit", flow=flow_from_dict(doc["flow"]))
    if action == "release":
        if "flow_name" not in doc:
            raise ScenarioError("release churn event: missing 'flow_name'")
        return ChurnEvent(action="release", flow_name=str(doc["flow_name"]))
    raise ScenarioError(f"churn event: unknown action {action!r}")


# ----------------------------------------------------------------------
# Whole-scenario documents
# ----------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "name": scenario.name,
        "network": network_to_dict(scenario.network),
        "flows": [flow_to_dict(f) for f in scenario.flows],
        "analysis": analysis_options_to_dict(scenario.options),
        "sim": sim_config_to_dict(scenario.sim),
    }
    if scenario.generator is not None:
        doc["generator"] = {
            "family": scenario.generator.family,
            "params": scenario.generator.kwargs,
        }
    if scenario.churn:
        doc["churn"] = [churn_event_to_dict(ev) for ev in scenario.churn]
    return doc


def scenario_from_dict(
    doc: Mapping[str, Any], *, default_name: str = "scenario"
) -> Scenario:
    """Build a :class:`Scenario` from a v1 *or* legacy document.

    Legacy documents (no ``schema_version``) are the pre-scenario
    ``repro.io`` format: ``network`` + ``flows`` only.  They load with
    default analysis/sim options and ``default_name``.
    """
    version = doc.get("schema_version", 0)
    if not isinstance(version, int) or version < 0:
        raise ScenarioError(f"invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ScenarioError(
            f"scenario schema_version {version} is newer than the "
            f"supported version {SCHEMA_VERSION}"
        )
    if "network" not in doc:
        raise ScenarioError("scenario document: missing 'network' section")
    network = network_from_dict(doc["network"])
    flows = tuple(flow_from_dict(f) for f in doc.get("flows", []))

    options = AnalysisOptions()
    sim = SimConfig()
    generator = None
    churn: tuple[ChurnEvent, ...] = ()
    name = str(doc.get("name", default_name)) or default_name
    if version >= 1:
        if "analysis" in doc:
            options = analysis_options_from_dict(doc["analysis"])
        if "sim" in doc:
            sim = sim_config_from_dict(doc["sim"])
        if "generator" in doc:
            gen = doc["generator"]
            if "family" not in gen:
                raise ScenarioError("generator block: missing 'family'")
            generator = ScenarioSpec.of(
                str(gen["family"]), **dict(gen.get("params", {}))
            )
        churn = tuple(
            churn_event_from_dict(ev) for ev in doc.get("churn", [])
        )
    return Scenario(
        name=name,
        network=network,
        flows=flows,
        options=options,
        sim=sim,
        generator=generator,
        churn=churn,
    )


def save_scenario_file(path: str | Path, scenario: Scenario) -> None:
    """Write a v1 scenario JSON file (pretty-printed, stable ordering)."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True)
        + "\n"
    )


def load_scenario_file(path: str | Path) -> Scenario:
    """Read a scenario file — v1 or legacy — and validate it."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path}: expected a JSON object")
    return scenario_from_dict(doc, default_name=path.stem)
