"""Built-in scenario generator families.

Each family is a deterministic function of its parameters (fixed seeds
drive every random draw), registered on the global
:data:`~repro.scenario.registry.REGISTRY`:

========================  ==============================================
``paper-example``         Fig. 1 network + Fig. 2 MPEG flow with cross
                          traffic (the E3 scenario).
``random-line``           Seeded UUniFast GMF flows on a line topology —
                          the raw material of the E4/E5 sweeps.
``mpeg-line``             One MPEG GoP stream across an ``n``-switch
                          line (the E6/E7 scenario), with switch-cost
                          and multiprocessor knobs.
``voip-star``             VoIP calls between random host pairs of a
                          star (the paper's motivating application).
``fat-tree``              Random GMF traffic over a two-tier leaf/spine
                          fabric (multi-path topologies).
``mixed-criticality``     VoIP (prio 7) + MPEG (prio 5) + bulk (prio 1)
                          blend over a line — criticality layering.
``failure-injection``     Random traffic simulated with finite NIC
                          FIFOs and truncated 802.1p levels.
``voip-churn``            An admission-control storyline: calls arrive
                          and hang up (churn sequence for ``admit``).
========================  ==============================================
"""

from __future__ import annotations

import numpy as np

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, NodeKind, SwitchConfig
from repro.scenario.model import ChurnEvent, Scenario
from repro.scenario.registry import register_scenario
from repro.sim.simulator import SimConfig
from repro.util.units import mbps, ms, us
from repro.workloads.generator import RandomFlowConfig, random_flow_set
from repro.workloads.mpeg import paper_fig3_flow
from repro.workloads.topologies import (
    fat_tree_network,
    line_network,
    paper_fig1_network,
    star_network,
)
from repro.workloads.voip import voip_flow


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def mpeg_over_line(
    n_switches: int,
    switch_config: SwitchConfig,
    *,
    speed_bps: float,
    deadline: float,
) -> tuple[Network, Flow]:
    """The E6/E7 unit: one MPEG flow end to end over an ``n``-switch
    line (two hosts per switch so a 1-switch line has distinct ends)."""
    net = line_network(
        n_switches,
        hosts_per_switch=2,
        speed_bps=speed_bps,
        switch_config=switch_config,
    )
    route = (
        "h0_0",
        *[f"sw{s}" for s in range(n_switches)],
        f"h{n_switches - 1}_1",
    )
    flow = paper_fig3_flow(route, deadline=deadline, priority=5)
    return net, flow


def pad_interfaces(
    net: Network, factor: int, speed_bps: float, *, multiple_of: int = 1
) -> None:
    """Attach idle hosts so every switch has >= ``factor`` interfaces
    (and a count divisible by the processor count)."""
    switches = [n.name for n in net.nodes() if n.is_switch]
    for sw in switches:
        current = net.n_interfaces(sw)
        target = max(factor, current)
        if target % multiple_of:
            target += multiple_of - (target % multiple_of)
        for i in range(target - current):
            pad = f"pad_{sw}_{i}"
            net.add_endhost(pad)
            net.add_duplex_link(pad, sw, speed_bps=speed_bps)


def _route_endpoints(net: Network) -> list[str]:
    return [
        n.name
        for n in net.nodes()
        if n.kind in (NodeKind.ENDHOST, NodeKind.ROUTER)
    ]


# ----------------------------------------------------------------------
# Paper scenarios
# ----------------------------------------------------------------------
@register_scenario("paper-example")
def paper_example(
    *,
    speed_bps: float = mbps(100),
    mpeg_jitter: float = ms(1),
    duration: float = 2.0,
) -> Scenario:
    """The Fig. 1 network with the Fig. 2 MPEG flow plus cross traffic.

    10 Mbit/s (the worked example's speed) is too slow to carry the
    MPEG stream alongside cross traffic through a single uplink, so the
    default is 100 Mbit/s — the commodity-switch speed the paper
    targets.  Parameters are raw SI units (bit/s, seconds) so callers
    delegating here reproduce their flows bit for bit, with no unit
    round-trips.
    """
    net = paper_fig1_network(speed_bps=speed_bps)
    mpeg = paper_fig3_flow(
        route=("n0", "n4", "n6", "n3"),
        deadline=ms(100),
        priority=5,
        jitter=mpeg_jitter,
    )
    voice = voip_flow(
        ("n1", "n4", "n6", "n5", "n2"), name="voip", priority=7, deadline=ms(50)
    )
    bulk = Flow(
        name="bulk",
        spec=GmfSpec(
            min_separations=(ms(10),),
            deadlines=(ms(500),),
            jitters=(0.0,),
            payload_bits=(80_000,),
        ),
        route=("n1", "n4", "n6", "n3"),
        priority=1,
    )
    return Scenario(
        name=f"paper-example[{speed_bps / 1e6:g}Mbps]",
        network=net,
        flows=(mpeg, voice, bulk),
        sim=SimConfig(duration=duration),
    )


@register_scenario("random-line")
def random_line(
    *,
    seed: int = 0,
    n_switches: int = 2,
    hosts_per_switch: int = 2,
    n_flows: int = 4,
    utilization: float = 0.45,
    speed_bps: float = mbps(100),
    n_frames_min: int = 1,
    n_frames_max: int = 8,
    burstiness: float = 8.0,
    duration: float = 2.0,
) -> Scenario:
    """Seeded UUniFast GMF flows on a line — the E4/E5 raw material."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    cfg = RandomFlowConfig(
        n_frames_range=(n_frames_min, n_frames_max), burstiness=burstiness
    )
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=cfg,
    )
    return Scenario(
        name=f"random-line[seed={seed},u={utilization:g},n={n_flows}]",
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("mpeg-line")
def mpeg_line(
    *,
    n_switches: int = 3,
    speed_bps: float = mbps(100),
    deadline: float = ms(500),
    c_route_us: float = 2.7,
    c_send_us: float = 1.0,
    n_processors: int = 1,
    pad_to_interfaces: int = 0,
    duration: float = 2.0,
) -> Scenario:
    """One MPEG stream across an ``n``-switch line (E6/E7 scenario)."""
    cfg = SwitchConfig(
        c_route=us(c_route_us),
        c_send=us(c_send_us),
        n_processors=n_processors,
    )
    net, flow = mpeg_over_line(
        n_switches, cfg, speed_bps=speed_bps, deadline=deadline
    )
    if pad_to_interfaces:
        pad_interfaces(
            net, pad_to_interfaces, speed_bps, multiple_of=n_processors
        )
    return Scenario(
        name=f"mpeg-line[n={n_switches},d={deadline * 1e3:g}ms]",
        network=net,
        flows=(flow,),
        sim=SimConfig(duration=duration),
    )


@register_scenario("voip-star")
def voip_star(
    *,
    n_hosts: int = 8,
    n_calls: int = 4,
    codec: str = "g711",
    deadline: float = ms(50),
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 2.0,
) -> Scenario:
    """VoIP calls between seeded random host pairs of a star."""
    net = star_network(n_hosts, speed_bps=speed_bps)
    rng = np.random.default_rng(seed)
    hosts = [f"h{i}" for i in range(n_hosts)]
    flows = []
    for i in range(n_calls):
        src, dst = rng.choice(hosts, size=2, replace=False)
        flows.append(
            voip_flow(
                (str(src), "sw", str(dst)),
                name=f"call{i}",
                codec=codec,
                deadline=deadline,
            )
        )
    return Scenario(
        name=f"voip-star[{n_calls}x{codec},seed={seed}]",
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


# ----------------------------------------------------------------------
# New families: multi-path, mixed criticality, failure injection, churn
# ----------------------------------------------------------------------
@register_scenario("fat-tree")
def fat_tree(
    *,
    spines: int = 2,
    leaves: int = 4,
    hosts_per_leaf: int = 2,
    n_flows: int = 8,
    utilization: float = 0.3,
    seed: int = 0,
    speed_bps: float = mbps(100),
    uplink_speed_bps: float | None = None,
    n_frames_min: int = 1,
    n_frames_max: int = 8,
    burstiness: float = 8.0,
    duration: float = 2.0,
) -> Scenario:
    """Random GMF traffic over a leaf/spine fabric (multi-path)."""
    net = fat_tree_network(
        spines=spines,
        leaves=leaves,
        hosts_per_leaf=hosts_per_leaf,
        speed_bps=speed_bps,
        uplink_speed_bps=uplink_speed_bps,
    )
    cfg = RandomFlowConfig(
        n_frames_range=(n_frames_min, n_frames_max), burstiness=burstiness
    )
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=cfg,
    )
    return Scenario(
        name=(
            f"fat-tree[{spines}x{leaves},seed={seed},u={utilization:g}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("mixed-criticality")
def mixed_criticality(
    *,
    n_switches: int = 3,
    hosts_per_switch: int = 2,
    n_voip: int = 4,
    n_mpeg: int = 2,
    n_bulk: int = 1,
    seed: int = 0,
    speed_bps: float = mbps(100),
    voip_deadline: float = ms(50),
    mpeg_deadline: float = ms(200),
    duration: float = 2.0,
) -> Scenario:
    """A criticality blend: VoIP (prio 7) over MPEG (prio 5) over bulk
    (prio 1), placed between seeded random host pairs of a line."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    rng = np.random.default_rng(seed)
    hosts = [
        f"h{s}_{h}"
        for s in range(n_switches)
        for h in range(hosts_per_switch)
    ]

    def random_route() -> tuple[str, ...]:
        src, dst = rng.choice(hosts, size=2, replace=False)
        s0 = int(str(src).split("_")[0][1:])
        s1 = int(str(dst).split("_")[0][1:])
        step = 1 if s1 >= s0 else -1
        middle = tuple(f"sw{s}" for s in range(s0, s1 + step, step))
        return (str(src), *middle, str(dst))

    flows: list[Flow] = []
    for i in range(n_voip):
        flows.append(
            voip_flow(
                random_route(),
                name=f"voip{i}",
                priority=7,
                deadline=voip_deadline,
            )
        )
    for i in range(n_mpeg):
        flows.append(
            paper_fig3_flow(
                random_route(),
                name=f"mpeg{i}",
                priority=5,
                deadline=mpeg_deadline,
            )
        )
    for i in range(n_bulk):
        flows.append(
            Flow(
                name=f"bulk{i}",
                spec=GmfSpec(
                    min_separations=(ms(10),),
                    deadlines=(ms(500),),
                    jitters=(0.0,),
                    payload_bits=(80_000,),
                ),
                route=random_route(),
                priority=1,
            )
        )
    return Scenario(
        name=(
            f"mixed-criticality[{n_voip}v+{n_mpeg}m+{n_bulk}b,seed={seed}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("failure-injection")
def failure_injection(
    *,
    nic_fifo_capacity: int = 8,
    priority_levels: int = 4,
    n_switches: int = 2,
    hosts_per_switch: int = 2,
    n_flows: int = 6,
    utilization: float = 0.6,
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 1.0,
) -> Scenario:
    """Random traffic simulated under failure conditions: finite switch
    NIC FIFOs (overflow drops) and truncated 802.1p priority levels —
    the regime where the analysis' no-loss assumption breaks down."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    # Generated priorities must fit the truncated 802.1p range the
    # switches enforce in this scenario.
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=RandomFlowConfig(priority_levels=priority_levels),
    )
    return Scenario(
        name=(
            f"failure-injection[fifo={nic_fifo_capacity},"
            f"prio={priority_levels},seed={seed}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(
            duration=duration,
            nic_fifo_capacity=nic_fifo_capacity,
            priority_levels=priority_levels,
        ),
    )


@register_scenario("voip-churn")
def voip_churn(
    *,
    n_hosts: int = 6,
    n_calls: int = 8,
    release_every: int = 3,
    codec: str = "g711",
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 1.0,
) -> Scenario:
    """An admission-control storyline: calls arrive one by one and
    every ``release_every``-th arrival is followed by the oldest live
    call hanging up.  The scenario carries no base flows — the whole
    workload is the churn sequence (campaign ``admit`` action)."""
    if release_every < 1:
        raise ValueError("release_every must be >= 1")
    net = star_network(n_hosts, speed_bps=speed_bps)
    rng = np.random.default_rng(seed)
    hosts = [f"h{i}" for i in range(n_hosts)]
    events: list[ChurnEvent] = []
    live: list[str] = []
    for i in range(n_calls):
        src, dst = rng.choice(hosts, size=2, replace=False)
        flow = voip_flow(
            (str(src), "sw", str(dst)), name=f"call{i}", codec=codec
        )
        events.append(ChurnEvent(action="admit", flow=flow))
        live.append(flow.name)
        if (i + 1) % release_every == 0 and live:
            events.append(
                ChurnEvent(action="release", flow_name=live.pop(0))
            )
    return Scenario(
        name=f"voip-churn[{n_calls}calls,seed={seed}]",
        network=net,
        flows=(),
        sim=SimConfig(duration=duration),
        churn=tuple(events),
    )
