"""Built-in scenario generator families.

Each family is a deterministic function of its parameters (fixed seeds
drive every random draw), registered on the global
:data:`~repro.scenario.registry.REGISTRY`:

========================  ==============================================
``paper-example``         Fig. 1 network + Fig. 2 MPEG flow with cross
                          traffic (the E3 scenario).
``random-line``           Seeded UUniFast GMF flows on a line topology —
                          the raw material of the E4/E5 sweeps.
``mpeg-line``             One MPEG GoP stream across an ``n``-switch
                          line (the E6/E7 scenario), with switch-cost
                          and multiprocessor knobs.
``voip-star``             VoIP calls between random host pairs of a
                          star (the paper's motivating application).
``fat-tree``              Random GMF traffic over a two-tier leaf/spine
                          fabric (multi-path topologies).
``mixed-criticality``     VoIP (prio 7) + MPEG (prio 5) + bulk (prio 1)
                          blend over a line — criticality layering.
``failure-injection``     Random traffic simulated with finite NIC
                          FIFOs and truncated 802.1p levels.
``voip-churn``            An admission-control storyline: calls arrive
                          and hang up (churn sequence for ``admit``).
``datacenter``            Multi-pod fat tree with tenant mice, cross-pod
                          elephants and incast fan-in (the hierarchical
                          admission workload of ``core/hierarchy.py``).
``datacenter-churn``      The datacenter mix as an arrival/release
                          storyline (multi-pod ``admit`` sequences).
========================  ==============================================
"""

from __future__ import annotations

import numpy as np

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network, NodeKind, SwitchConfig
from repro.scenario.model import ChurnEvent, Scenario
from repro.scenario.registry import register_scenario
from repro.sim.simulator import SimConfig
from repro.util.units import mbps, ms, us
from repro.workloads.generator import RandomFlowConfig, random_flow_set
from repro.workloads.mpeg import paper_fig3_flow
from repro.workloads.topologies import (
    fat_tree_network,
    line_network,
    multi_pod_fat_tree_network,
    multi_pod_route,
    paper_fig1_network,
    star_network,
)
from repro.workloads.voip import voip_flow


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def mpeg_over_line(
    n_switches: int,
    switch_config: SwitchConfig,
    *,
    speed_bps: float,
    deadline: float,
) -> tuple[Network, Flow]:
    """The E6/E7 unit: one MPEG flow end to end over an ``n``-switch
    line (two hosts per switch so a 1-switch line has distinct ends)."""
    net = line_network(
        n_switches,
        hosts_per_switch=2,
        speed_bps=speed_bps,
        switch_config=switch_config,
    )
    route = (
        "h0_0",
        *[f"sw{s}" for s in range(n_switches)],
        f"h{n_switches - 1}_1",
    )
    flow = paper_fig3_flow(route, deadline=deadline, priority=5)
    return net, flow


def pad_interfaces(
    net: Network, factor: int, speed_bps: float, *, multiple_of: int = 1
) -> None:
    """Attach idle hosts so every switch has >= ``factor`` interfaces
    (and a count divisible by the processor count)."""
    switches = [n.name for n in net.nodes() if n.is_switch]
    for sw in switches:
        current = net.n_interfaces(sw)
        target = max(factor, current)
        if target % multiple_of:
            target += multiple_of - (target % multiple_of)
        for i in range(target - current):
            pad = f"pad_{sw}_{i}"
            net.add_endhost(pad)
            net.add_duplex_link(pad, sw, speed_bps=speed_bps)


def _route_endpoints(net: Network) -> list[str]:
    return [
        n.name
        for n in net.nodes()
        if n.kind in (NodeKind.ENDHOST, NodeKind.ROUTER)
    ]


# ----------------------------------------------------------------------
# Paper scenarios
# ----------------------------------------------------------------------
@register_scenario("paper-example")
def paper_example(
    *,
    speed_bps: float = mbps(100),
    mpeg_jitter: float = ms(1),
    duration: float = 2.0,
) -> Scenario:
    """The Fig. 1 network with the Fig. 2 MPEG flow plus cross traffic.

    10 Mbit/s (the worked example's speed) is too slow to carry the
    MPEG stream alongside cross traffic through a single uplink, so the
    default is 100 Mbit/s — the commodity-switch speed the paper
    targets.  Parameters are raw SI units (bit/s, seconds) so callers
    delegating here reproduce their flows bit for bit, with no unit
    round-trips.
    """
    net = paper_fig1_network(speed_bps=speed_bps)
    mpeg = paper_fig3_flow(
        route=("n0", "n4", "n6", "n3"),
        deadline=ms(100),
        priority=5,
        jitter=mpeg_jitter,
    )
    voice = voip_flow(
        ("n1", "n4", "n6", "n5", "n2"), name="voip", priority=7, deadline=ms(50)
    )
    bulk = Flow(
        name="bulk",
        spec=GmfSpec(
            min_separations=(ms(10),),
            deadlines=(ms(500),),
            jitters=(0.0,),
            payload_bits=(80_000,),
        ),
        route=("n1", "n4", "n6", "n3"),
        priority=1,
    )
    return Scenario(
        name=f"paper-example[{speed_bps / 1e6:g}Mbps]",
        network=net,
        flows=(mpeg, voice, bulk),
        sim=SimConfig(duration=duration),
    )


@register_scenario("random-line")
def random_line(
    *,
    seed: int = 0,
    n_switches: int = 2,
    hosts_per_switch: int = 2,
    n_flows: int = 4,
    utilization: float = 0.45,
    speed_bps: float = mbps(100),
    n_frames_min: int = 1,
    n_frames_max: int = 8,
    burstiness: float = 8.0,
    duration: float = 2.0,
) -> Scenario:
    """Seeded UUniFast GMF flows on a line — the E4/E5 raw material."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    cfg = RandomFlowConfig(
        n_frames_range=(n_frames_min, n_frames_max), burstiness=burstiness
    )
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=cfg,
    )
    return Scenario(
        name=f"random-line[seed={seed},u={utilization:g},n={n_flows}]",
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("mpeg-line")
def mpeg_line(
    *,
    n_switches: int = 3,
    speed_bps: float = mbps(100),
    deadline: float = ms(500),
    c_route_us: float = 2.7,
    c_send_us: float = 1.0,
    n_processors: int = 1,
    pad_to_interfaces: int = 0,
    duration: float = 2.0,
) -> Scenario:
    """One MPEG stream across an ``n``-switch line (E6/E7 scenario)."""
    cfg = SwitchConfig(
        c_route=us(c_route_us),
        c_send=us(c_send_us),
        n_processors=n_processors,
    )
    net, flow = mpeg_over_line(
        n_switches, cfg, speed_bps=speed_bps, deadline=deadline
    )
    if pad_to_interfaces:
        pad_interfaces(
            net, pad_to_interfaces, speed_bps, multiple_of=n_processors
        )
    return Scenario(
        name=f"mpeg-line[n={n_switches},d={deadline * 1e3:g}ms]",
        network=net,
        flows=(flow,),
        sim=SimConfig(duration=duration),
    )


@register_scenario("voip-star")
def voip_star(
    *,
    n_hosts: int = 8,
    n_calls: int = 4,
    codec: str = "g711",
    deadline: float = ms(50),
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 2.0,
) -> Scenario:
    """VoIP calls between seeded random host pairs of a star."""
    net = star_network(n_hosts, speed_bps=speed_bps)
    rng = np.random.default_rng(seed)
    hosts = [f"h{i}" for i in range(n_hosts)]
    flows = []
    for i in range(n_calls):
        src, dst = rng.choice(hosts, size=2, replace=False)
        flows.append(
            voip_flow(
                (str(src), "sw", str(dst)),
                name=f"call{i}",
                codec=codec,
                deadline=deadline,
            )
        )
    return Scenario(
        name=f"voip-star[{n_calls}x{codec},seed={seed}]",
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


# ----------------------------------------------------------------------
# New families: multi-path, mixed criticality, failure injection, churn
# ----------------------------------------------------------------------
@register_scenario("fat-tree")
def fat_tree(
    *,
    spines: int = 2,
    leaves: int = 4,
    hosts_per_leaf: int = 2,
    n_flows: int = 8,
    utilization: float = 0.3,
    seed: int = 0,
    speed_bps: float = mbps(100),
    uplink_speed_bps: float | None = None,
    n_frames_min: int = 1,
    n_frames_max: int = 8,
    burstiness: float = 8.0,
    duration: float = 2.0,
) -> Scenario:
    """Random GMF traffic over a leaf/spine fabric (multi-path)."""
    net = fat_tree_network(
        spines=spines,
        leaves=leaves,
        hosts_per_leaf=hosts_per_leaf,
        speed_bps=speed_bps,
        uplink_speed_bps=uplink_speed_bps,
    )
    cfg = RandomFlowConfig(
        n_frames_range=(n_frames_min, n_frames_max), burstiness=burstiness
    )
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=cfg,
    )
    return Scenario(
        name=(
            f"fat-tree[{spines}x{leaves},seed={seed},u={utilization:g}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("mixed-criticality")
def mixed_criticality(
    *,
    n_switches: int = 3,
    hosts_per_switch: int = 2,
    n_voip: int = 4,
    n_mpeg: int = 2,
    n_bulk: int = 1,
    seed: int = 0,
    speed_bps: float = mbps(100),
    voip_deadline: float = ms(50),
    mpeg_deadline: float = ms(200),
    duration: float = 2.0,
) -> Scenario:
    """A criticality blend: VoIP (prio 7) over MPEG (prio 5) over bulk
    (prio 1), placed between seeded random host pairs of a line."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    rng = np.random.default_rng(seed)
    hosts = [
        f"h{s}_{h}"
        for s in range(n_switches)
        for h in range(hosts_per_switch)
    ]

    def random_route() -> tuple[str, ...]:
        src, dst = rng.choice(hosts, size=2, replace=False)
        s0 = int(str(src).split("_")[0][1:])
        s1 = int(str(dst).split("_")[0][1:])
        step = 1 if s1 >= s0 else -1
        middle = tuple(f"sw{s}" for s in range(s0, s1 + step, step))
        return (str(src), *middle, str(dst))

    flows: list[Flow] = []
    for i in range(n_voip):
        flows.append(
            voip_flow(
                random_route(),
                name=f"voip{i}",
                priority=7,
                deadline=voip_deadline,
            )
        )
    for i in range(n_mpeg):
        flows.append(
            paper_fig3_flow(
                random_route(),
                name=f"mpeg{i}",
                priority=5,
                deadline=mpeg_deadline,
            )
        )
    for i in range(n_bulk):
        flows.append(
            Flow(
                name=f"bulk{i}",
                spec=GmfSpec(
                    min_separations=(ms(10),),
                    deadlines=(ms(500),),
                    jitters=(0.0,),
                    payload_bits=(80_000,),
                ),
                route=random_route(),
                priority=1,
            )
        )
    return Scenario(
        name=(
            f"mixed-criticality[{n_voip}v+{n_mpeg}m+{n_bulk}b,seed={seed}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("failure-injection")
def failure_injection(
    *,
    nic_fifo_capacity: int = 8,
    priority_levels: int = 4,
    n_switches: int = 2,
    hosts_per_switch: int = 2,
    n_flows: int = 6,
    utilization: float = 0.6,
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 1.0,
) -> Scenario:
    """Random traffic simulated under failure conditions: finite switch
    NIC FIFOs (overflow drops) and truncated 802.1p priority levels —
    the regime where the analysis' no-loss assumption breaks down."""
    net = line_network(
        n_switches, hosts_per_switch=hosts_per_switch, speed_bps=speed_bps
    )
    # Generated priorities must fit the truncated 802.1p range the
    # switches enforce in this scenario.
    flows = random_flow_set(
        net,
        n_flows=n_flows,
        total_utilization=utilization,
        seed=seed,
        config=RandomFlowConfig(priority_levels=priority_levels),
    )
    return Scenario(
        name=(
            f"failure-injection[fifo={nic_fifo_capacity},"
            f"prio={priority_levels},seed={seed}]"
        ),
        network=net,
        flows=tuple(flows),
        sim=SimConfig(
            duration=duration,
            nic_fifo_capacity=nic_fifo_capacity,
            priority_levels=priority_levels,
        ),
    )


# ----------------------------------------------------------------------
# Datacenter families (multi-pod fabrics; core/hierarchy.py workloads)
# ----------------------------------------------------------------------
# Shared spec archetypes: the analysis' demand profiles are pure
# functions of (spec, link speed), so flows built from the same spec
# object share one window table per link class — the dedup that keeps
# the flat demand matrices (core/demand.py) memory-flat at 10^5 flows.
_MICE_SPEC = GmfSpec(
    min_separations=(ms(20),),
    deadlines=(ms(80),),
    jitters=(0.0,),
    payload_bits=(1_280,),
)
_ELEPHANT_SPEC = GmfSpec(
    min_separations=(ms(10),),
    deadlines=(ms(200),),
    jitters=(0.0,),
    payload_bits=(60_000,),
)
_INCAST_SPEC = GmfSpec(
    min_separations=(ms(10),),
    deadlines=(ms(100),),
    jitters=(0.0,),
    payload_bits=(12_000,),
)


def datacenter_flows(
    *,
    pods: int = 4,
    aggs_per_pod: int = 2,
    leaves_per_pod: int = 4,
    hosts_per_leaf: int = 4,
    cores: int = 2,
    n_mice: int = 48,
    n_elephants: int = 8,
    incast_groups: int = 2,
    incast_fanin: int = 8,
    tenants: int = 4,
    cross_pod_fraction: float = 0.15,
    locality: float = 0.7,
    seed: int = 0,
    speed_bps: float = mbps(1000),
) -> tuple[Network, list[Flow]]:
    """Deterministic datacenter traffic over a multi-pod fabric.

    Three archetypes (shared specs, see above):

    * **mice** (priority 6): small periodic flows between hosts of the
      same tenant; with probability ``locality`` a mouse stays
      rack-local (its destination shares the source's leaf — the
      rack-affine placement real schedulers aim for, and what keeps the
      interference closure of one admission small); otherwise tenants
      own a strided host subset spanning all pods, and
      ``cross_pod_fraction`` of the remaining mice cross pods;
    * **elephants** (priority 2): bulk flows, always cross-pod — they
      are what loads the pod-boundary demand envelopes;
    * **incast** (priority 4): ``incast_groups`` fan-in events,
      ``incast_fanin`` sources converging on one victim host each.

    Routes come from :func:`~repro.workloads.topologies.multi_pod_route`
    (pure name arithmetic), so generating 10^5 flows stays cheap; all
    draws are seeded, so equal parameters reproduce the flow set bit
    for bit.
    """
    net = multi_pod_fat_tree_network(
        pods=pods,
        aggs_per_pod=aggs_per_pod,
        leaves_per_pod=leaves_per_pod,
        hosts_per_leaf=hosts_per_leaf,
        cores=cores,
        speed_bps=speed_bps,
    )
    rng = np.random.default_rng(seed)
    hosts = [
        (p, f"p{p}_h{l}_{k}")
        for p in range(pods)
        for l in range(leaves_per_pod)
        for k in range(hosts_per_leaf)
    ]
    # Tenant t owns every tenants-th host — a subset spanning all pods.
    by_tenant_pod: list[dict[int, list[str]]] = [
        {} for _ in range(max(1, tenants))
    ]
    for i, (p, name) in enumerate(hosts):
        by_tenant_pod[i % max(1, tenants)].setdefault(p, []).append(name)
    # Host name -> its leaf's host list (rack-local destination pool).
    by_leaf: dict[str, list[str]] = {}
    for p, name in hosts:
        leaf = name.rsplit("_", 1)[0]
        by_leaf.setdefault(leaf, []).append(name)
    leaf_of = {name: name.rsplit("_", 1)[0] for _, name in hosts}

    def pick(pool: list[str], *, avoid: str | None = None) -> str:
        name = pool[int(rng.integers(len(pool)))]
        while name == avoid:
            name = pool[int(rng.integers(len(pool)))]
        return name

    flows: list[Flow] = []
    for i in range(n_mice):
        tenant = by_tenant_pod[i % max(1, tenants)]
        tenant_pods = sorted(tenant)
        src_pod = tenant_pods[int(rng.integers(len(tenant_pods)))]
        src = pick(tenant[src_pod])
        rack = by_leaf[leaf_of[src]]
        cross = (
            len(tenant_pods) > 1 and rng.random() < cross_pod_fraction
        )
        if len(rack) > 1 and rng.random() < locality:
            dst = pick(rack, avoid=src)
        elif cross:
            others = [p for p in tenant_pods if p != src_pod]
            dst = pick(tenant[others[int(rng.integers(len(others)))]])
        elif len(tenant[src_pod]) > 1:
            dst = pick(tenant[src_pod], avoid=src)
        else:
            dst = pick([h for _, h in hosts], avoid=src)
        flows.append(
            Flow(
                name=f"mice{i}",
                spec=_MICE_SPEC,
                route=multi_pod_route(
                    src,
                    dst,
                    # Decorrelated spreading: with agg and core both keyed
                    # on i, equal pod widths would pin every flow to the
                    # agg == core diagonal and quarter the usable entry
                    # combinations into the destination pod.
                    agg=i % aggs_per_pod,
                    core=(i // aggs_per_pod) % cores,
                ),
                priority=6,
            )
        )
    all_hosts_by_pod: dict[int, list[str]] = {}
    for p, name in hosts:
        all_hosts_by_pod.setdefault(p, []).append(name)
    for i in range(n_elephants):
        src_pod = int(rng.integers(pods))
        dst_pod = (
            (src_pod + 1 + int(rng.integers(pods - 1))) % pods
            if pods > 1
            else src_pod
        )
        src = pick(all_hosts_by_pod[src_pod])
        dst = pick(all_hosts_by_pod[dst_pod], avoid=src)
        flows.append(
            Flow(
                name=f"eleph{i}",
                spec=_ELEPHANT_SPEC,
                route=multi_pod_route(
                    src,
                    dst,
                    agg=i % aggs_per_pod,
                    core=(i // aggs_per_pod) % cores,
                ),
                priority=2,
            )
        )
    flat_hosts = [h for _, h in hosts]
    for g in range(incast_groups):
        victim = pick(flat_hosts)
        for s in range(incast_fanin):
            src = pick(flat_hosts, avoid=victim)
            flows.append(
                Flow(
                    name=f"ic{g}_{s}",
                    spec=_INCAST_SPEC,
                    route=multi_pod_route(
                        src,
                        victim,
                        agg=s % aggs_per_pod,
                        core=(s // aggs_per_pod) % cores,
                    ),
                    priority=4,
                )
            )
    return net, flows


@register_scenario("datacenter")
def datacenter(
    *,
    pods: int = 4,
    aggs_per_pod: int = 2,
    leaves_per_pod: int = 4,
    hosts_per_leaf: int = 4,
    cores: int = 2,
    n_mice: int = 48,
    n_elephants: int = 8,
    incast_groups: int = 2,
    incast_fanin: int = 8,
    tenants: int = 4,
    cross_pod_fraction: float = 0.15,
    locality: float = 0.7,
    seed: int = 0,
    speed_bps: float = mbps(1000),
    duration: float = 1.0,
) -> Scenario:
    """Multi-pod datacenter traffic: tenant mice + cross-pod elephants
    + incast fan-in (the ``core/hierarchy.py`` admission workload)."""
    net, flows = datacenter_flows(
        pods=pods,
        aggs_per_pod=aggs_per_pod,
        leaves_per_pod=leaves_per_pod,
        hosts_per_leaf=hosts_per_leaf,
        cores=cores,
        n_mice=n_mice,
        n_elephants=n_elephants,
        incast_groups=incast_groups,
        incast_fanin=incast_fanin,
        tenants=tenants,
        cross_pod_fraction=cross_pod_fraction,
        locality=locality,
        seed=seed,
        speed_bps=speed_bps,
    )
    total = len(flows)
    return Scenario(
        name=f"datacenter[{pods}p,n={total},seed={seed}]",
        network=net,
        flows=tuple(flows),
        sim=SimConfig(duration=duration),
    )


@register_scenario("datacenter-churn")
def datacenter_churn(
    *,
    pods: int = 4,
    aggs_per_pod: int = 2,
    leaves_per_pod: int = 4,
    hosts_per_leaf: int = 4,
    cores: int = 2,
    n_mice: int = 24,
    n_elephants: int = 4,
    incast_groups: int = 1,
    incast_fanin: int = 4,
    tenants: int = 4,
    cross_pod_fraction: float = 0.15,
    locality: float = 0.7,
    release_every: int = 4,
    seed: int = 0,
    speed_bps: float = mbps(1000),
    duration: float = 1.0,
) -> Scenario:
    """The datacenter flow mix as an admission storyline: flows arrive
    one by one; every ``release_every``-th arrival is followed by the
    oldest live flow leaving (campaign ``admit`` action, multi-pod)."""
    if release_every < 1:
        raise ValueError("release_every must be >= 1")
    net, flows = datacenter_flows(
        pods=pods,
        aggs_per_pod=aggs_per_pod,
        leaves_per_pod=leaves_per_pod,
        hosts_per_leaf=hosts_per_leaf,
        cores=cores,
        n_mice=n_mice,
        n_elephants=n_elephants,
        incast_groups=incast_groups,
        incast_fanin=incast_fanin,
        tenants=tenants,
        cross_pod_fraction=cross_pod_fraction,
        locality=locality,
        seed=seed,
        speed_bps=speed_bps,
    )
    events: list[ChurnEvent] = []
    live: list[str] = []
    for i, flow in enumerate(flows):
        events.append(ChurnEvent(action="admit", flow=flow))
        live.append(flow.name)
        if (i + 1) % release_every == 0 and live:
            events.append(
                ChurnEvent(action="release", flow_name=live.pop(0))
            )
    return Scenario(
        name=f"datacenter-churn[{pods}p,n={len(flows)},seed={seed}]",
        network=net,
        flows=(),
        sim=SimConfig(duration=duration),
        churn=tuple(events),
    )


@register_scenario("voip-churn")
def voip_churn(
    *,
    n_hosts: int = 6,
    n_calls: int = 8,
    release_every: int = 3,
    codec: str = "g711",
    seed: int = 0,
    speed_bps: float = mbps(100),
    duration: float = 1.0,
) -> Scenario:
    """An admission-control storyline: calls arrive one by one and
    every ``release_every``-th arrival is followed by the oldest live
    call hanging up.  The scenario carries no base flows — the whole
    workload is the churn sequence (campaign ``admit`` action)."""
    if release_every < 1:
        raise ValueError("release_every must be >= 1")
    net = star_network(n_hosts, speed_bps=speed_bps)
    rng = np.random.default_rng(seed)
    hosts = [f"h{i}" for i in range(n_hosts)]
    events: list[ChurnEvent] = []
    live: list[str] = []
    for i in range(n_calls):
        src, dst = rng.choice(hosts, size=2, replace=False)
        flow = voip_flow(
            (str(src), "sw", str(dst)), name=f"call{i}", codec=codec
        )
        events.append(ChurnEvent(action="admit", flow=flow))
        live.append(flow.name)
        if (i + 1) % release_every == 0 and live:
            events.append(
                ChurnEvent(action="release", flow_name=live.pop(0))
            )
    return Scenario(
        name=f"voip-churn[{n_calls}calls,seed={seed}]",
        network=net,
        flows=(),
        sim=SimConfig(duration=duration),
        churn=tuple(events),
    )
