"""Unified scenario subsystem: declarative scenarios + campaign runner.

Three layers (see the ROADMAP north-star "as many scenarios as you can
imagine"):

* :mod:`repro.scenario.model` — the frozen :class:`Scenario` bundle
  (network + flows + analysis options + sim config + generator
  provenance + churn sequence) and the tiny :class:`ScenarioSpec`
  recipe;
* :mod:`repro.scenario.registry` — named generator families
  (``@register_scenario``) with parametric-grid expansion; built-in
  families live in :mod:`repro.scenario.families`;
* :mod:`repro.scenario.campaign` — :class:`CampaignRunner`: fan a
  scenario list/grid across a multiprocessing pool with
  analyze/simulate/validate/admit actions, returning deterministic
  :class:`CampaignResult` rows.

JSON round-trip (versioned, legacy-compatible) lives in
:mod:`repro.scenario.serialization`.
"""

from repro.scenario.model import ChurnEvent, Scenario, ScenarioSpec
from repro.scenario.registry import (
    REGISTRY,
    ScenarioRegistry,
    build_scenario,
    expand_grid,
    register_scenario,
    scenario_grid,
)
from repro.scenario.campaign import (
    ACTIONS,
    CampaignResult,
    CampaignRunner,
    campaign_digest,
)
from repro.scenario.serialization import (
    SCHEMA_VERSION,
    load_scenario_file,
    save_scenario_file,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "ACTIONS",
    "REGISTRY",
    "SCHEMA_VERSION",
    "CampaignResult",
    "CampaignRunner",
    "ChurnEvent",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioSpec",
    "build_scenario",
    "campaign_digest",
    "expand_grid",
    "load_scenario_file",
    "register_scenario",
    "save_scenario_file",
    "scenario_from_dict",
    "scenario_grid",
    "scenario_to_dict",
]
