"""Named scenario generator families and parametric grids.

A *family* is a function ``(**params) -> Scenario`` registered under a
name::

    @register_scenario("my-family")
    def my_family(*, seed: int = 0, n_flows: int = 4) -> Scenario:
        ...

Families must be **deterministic in their parameters** — the same
``(family, params)`` pair always yields bit-identical scenarios.  That
contract is what lets a campaign ship tiny :class:`ScenarioSpec`
recipes to worker processes instead of pickled networks, and what makes
``--jobs N`` runs reproduce ``--jobs 1`` exactly.

:func:`scenario_grid` expands parameter axes into a spec list: every
axis given as a ``list``/``tuple``/``range`` is swept (cartesian
product, last axis fastest), scalars are held fixed.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Callable

from repro.scenario.model import Scenario, ScenarioSpec

ScenarioFactory = Callable[..., Scenario]


class ScenarioRegistry:
    """Mutable name → factory mapping with grid expansion."""

    def __init__(self) -> None:
        self._families: dict[str, ScenarioFactory] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def register(
        self, name: str, factory: ScenarioFactory | None = None
    ) -> Callable[[ScenarioFactory], ScenarioFactory] | ScenarioFactory:
        """Register a family; usable directly or as a decorator."""

        def add(fn: ScenarioFactory) -> ScenarioFactory:
            if name in self._families:
                raise ValueError(f"scenario family {name!r} already registered")
            self._families[name] = fn
            return fn

        return add(factory) if factory is not None else add

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._families))

    def get(self, name: str) -> ScenarioFactory:
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario family {name!r}; "
                f"registered: {list(self.names())}"
            ) from None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, name: str, **params: Any) -> Scenario:
        """Build one scenario, stamping its generator provenance."""
        scenario = self.get(name)(**params)
        return replace(
            scenario, generator=ScenarioSpec.of(name, **params)
        )

    def grid(self, name: str, **axes: Any) -> list[ScenarioSpec]:
        """Spec list over the cartesian product of the swept axes."""
        self.get(name)  # fail fast on unknown families
        return [
            ScenarioSpec.of(name, **point) for point in expand_grid(**axes)
        ]


def _is_swept(value: Any) -> bool:
    return isinstance(value, (list, tuple, range))


def expand_grid(**axes: Any) -> list[dict[str, Any]]:
    """Cartesian product of the swept axes (insertion order, last axis
    fastest); scalar axes are repeated into every point."""
    keys = list(axes)
    columns: list[list[Any]] = [
        list(v) if _is_swept(v) else [v] for v in axes.values()
    ]
    return [dict(zip(keys, combo)) for combo in itertools.product(*columns)]


#: The process-global registry the campaign engine and CLI consult.
#: Importing :mod:`repro.scenario` (or this module) registers the
#: built-in families below.
REGISTRY = ScenarioRegistry()


def register_scenario(name: str):
    """Decorator registering a family on the global :data:`REGISTRY`."""
    return REGISTRY.register(name)


def build_scenario(name: str, **params: Any) -> Scenario:
    """Build one scenario from the global registry."""
    return REGISTRY.build(name, **params)


def scenario_grid(name: str, **axes: Any) -> list[ScenarioSpec]:
    """Expand a parametric grid over a global-registry family."""
    return REGISTRY.grid(name, **axes)


# Built-in families self-register on import (they import
# ``register_scenario`` from this partially-initialised module, which
# is defined above, so the tail import is safe).
from repro.scenario import families as _families  # noqa: E402,F401
