"""First-class scenario objects: one self-contained experiment unit.

A :class:`Scenario` bundles everything one analyze/simulate/validate/
admit run needs — the topology, the flow set, the analysis knobs, the
simulation knobs, the provenance of how the workload was generated and
an optional admission *churn* sequence — so sweeps, campaign runs and
scenario files all speak the same object instead of each consumer
hand-rolling its own ``(network, flows, kwargs...)`` plumbing.

The pieces:

* :class:`Scenario` — the frozen bundle itself;
* :class:`ChurnEvent` — one admit/release step of an admission-control
  storyline (drives :func:`repro.scenario.campaign.action_admit`);
* :class:`ScenarioSpec` — a *recipe*: a registered generator-family
  name plus parameters.  Specs are tiny, picklable and JSON-able, so a
  campaign can ship them to worker processes and let each worker build
  its scenario locally (see :mod:`repro.scenario.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.context import AnalysisOptions
from repro.model.flow import Flow, check_unique_names
from repro.model.network import Network
from repro.model.routing import validate_route
from repro.sim.simulator import SimConfig


@dataclass(frozen=True)
class ChurnEvent:
    """One step of an admission-control storyline.

    ``action`` is ``"admit"`` (``flow`` required) or ``"release"``
    (``flow_name`` required).  A scenario's churn sequence is replayed
    by the campaign ``admit`` action after the scenario's base flows
    have been offered.
    """

    action: str
    flow: Flow | None = None
    flow_name: str | None = None

    def __post_init__(self) -> None:
        if self.action == "admit":
            if self.flow is None:
                raise ValueError("admit events need a flow")
        elif self.action == "release":
            if self.flow_name is None:
                raise ValueError("release events need a flow_name")
        else:
            raise ValueError(
                f"unknown churn action {self.action!r} (admit/release)"
            )

    @property
    def target(self) -> str:
        """Name of the flow the event concerns."""
        return self.flow.name if self.flow is not None else self.flow_name


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario *recipe*: registered family name + parameters.

    ``params`` is stored as a key-sorted tuple of ``(key, value)``
    pairs so specs are hashable, their labels deterministic, and the
    JSON round-trip canonical.  Values must be picklable; keep them
    JSON-able (numbers, strings, booleans) if the built scenario is
    ever saved with its provenance.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", tuple(sorted(self.params, key=lambda kv: kv[0]))
        )

    @classmethod
    def of(cls, family: str, **params: Any) -> "ScenarioSpec":
        return cls(family=family, params=tuple(params.items()))

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        """Canonical display name, e.g. ``random-line[seed=3,u=0.5]``."""
        if not self.params:
            return self.family
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}[{inner}]"

    def build(self) -> "Scenario":
        """Resolve this spec against the global registry."""
        from repro.scenario.registry import REGISTRY  # cycle-free import

        return REGISTRY.build(self.family, **self.kwargs)


@dataclass(frozen=True)
class Scenario:
    """A complete, self-describing experiment unit.

    Attributes
    ----------
    name:
        Unique label of the scenario within a campaign (table key).
    network, flows:
        The topology and the offered flow set (routes are validated and
        flow names checked unique on construction).
    options:
        :class:`~repro.core.context.AnalysisOptions` every analysis
        action uses.
    sim:
        :class:`~repro.sim.simulator.SimConfig` every simulation action
        uses (including failure-injection knobs ``nic_fifo_capacity``
        and ``priority_levels``).
    generator:
        Provenance: the :class:`ScenarioSpec` this scenario was built
        from, or ``None`` for hand-built scenarios.  Round-trips
        through the JSON schema so a saved scenario can be regenerated.
    churn:
        Optional admit/release sequence applied after the base flows
        during the campaign ``admit`` action.
    """

    name: str
    network: Network
    flows: tuple[Flow, ...]
    options: AnalysisOptions = AnalysisOptions()
    sim: SimConfig = SimConfig()
    generator: ScenarioSpec | None = None
    churn: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "flows", tuple(self.flows))
        object.__setattr__(self, "churn", tuple(self.churn))
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        check_unique_names(self.flows)
        for f in self.flows:
            validate_route(self.network, f.route)
        for ev in self.churn:
            if ev.action == "admit":
                validate_route(self.network, ev.flow.route)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def flow(self, name: str) -> Flow:
        for f in self.flows:
            if f.name == name:
                return f
        raise KeyError(f"scenario {self.name!r} has no flow {name!r}")

    def workload_events(self) -> tuple[ChurnEvent, ...]:
        """The full admission storyline: base flows offered in order,
        then the churn sequence.  The campaign ``admit`` action and the
        service replay driver both consume this, so a scenario means
        the same workload everywhere."""
        return (
            *(ChurnEvent(action="admit", flow=f) for f in self.flows),
            *self.churn,
        )

    def with_options(self, options: AnalysisOptions) -> "Scenario":
        return replace(self, options=options)

    def with_sim(self, sim: SimConfig) -> "Scenario":
        return replace(self, sim=sim)

    def describe(self) -> str:
        """One-line human summary (campaign table / ``generate`` echo)."""
        nodes = sum(1 for _ in self.network.nodes())
        links = sum(1 for _ in self.network.links())
        bits = [
            f"{self.name}: {nodes} nodes, {links} links, "
            f"{len(self.flows)} flows"
        ]
        if self.churn:
            bits.append(f"{len(self.churn)} churn events")
        if self.generator is not None:
            bits.append(f"from {self.generator.label()}")
        return ", ".join(bits)
