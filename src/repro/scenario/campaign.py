"""Parallel campaign execution: fan scenarios over a worker pool.

A *campaign* is a list of scenarios (or :class:`ScenarioSpec` recipes)
run through one or more *actions*:

* ``analyze``  — the holistic analysis: per-flow/per-frame bounds;
* ``simulate`` — the discrete-event simulator: per-flow response stats;
* ``simulate-batched`` — the same result document, computed through a
  per-process simulator cache: grid points sharing a topology (same
  network, same topology-baked ``SimConfig`` fields) reuse one built
  :class:`~repro.sim.simulator.Simulator` and only rebind flows and
  releases (:meth:`~repro.sim.simulator.Simulator.rebind` is
  bit-identical to a fresh build), so E4/E5-style sweeps stop paying
  construction cost per row;
* ``validate`` — analysis vs both simulator modes, per (flow, frame),
  with the simulations drawn through the same batched cache;
* ``admit``    — sequential admission of the flows, then the churn
  sequence, through :class:`~repro.core.admission.AdmissionController`;
* ``admit-hierarchical`` — the same storyline (same decisions, same
  payload) through the datacenter-scale
  :class:`~repro.core.hierarchy.HierarchicalAdmissionController`.

:class:`CampaignRunner` executes the cross product deterministically:
results come back as ordered :class:`CampaignResult` rows whose
payloads are **bit-identical regardless of the worker count** — every
action is a pure function of its scenario, scenarios built from specs
are deterministic in their parameters (the registry contract), and rows
are reassembled in submission order.  Only the ``elapsed_s`` timing
differs between runs; it is deliberately excluded from
:meth:`CampaignResult.signature`.

Workers are ``multiprocessing`` processes (fork server where available)
receiving picklable work units: specs are resolved *inside* the worker,
so scenario generation itself parallelises.  ``jobs=1`` bypasses the
pool entirely and is the reference serial semantics.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.core.admission import AdmissionController
from repro.core.demand import clear_demand_caches, record_demand_cache_telemetry
from repro.core.holistic import holistic_analysis
from repro.scenario.model import Scenario, ScenarioSpec
from repro.sim.simulator import (
    TOPOLOGY_CONFIG_FIELDS,
    SimConfig,
    Simulator,
    simulate,
)
from repro.sim.trace import SimulationTrace


# ----------------------------------------------------------------------
# Built-in actions (module-level: picklable by qualified name)
# ----------------------------------------------------------------------
def action_analyze(scenario: Scenario) -> dict[str, Any]:
    """Holistic analysis of the scenario's flow set."""
    result = holistic_analysis(
        scenario.network, scenario.flows, scenario.options
    )
    flows: dict[str, Any] = {}
    for name in sorted(result.flow_results):
        fr = result.result(name)
        flows[name] = {
            "worst_response": fr.worst_response,
            "schedulable": fr.schedulable,
            "frames": [
                {
                    "frame": f.frame,
                    "response": f.response,
                    "deadline": f.deadline,
                    "schedulable": f.schedulable,
                }
                for f in fr.frames
            ],
        }
    return {
        "converged": result.converged,
        "iterations": result.iterations,
        "schedulable": result.schedulable,
        "flows": flows,
    }


def _simulate_payload(scenario: Scenario, trace: SimulationTrace) -> dict[str, Any]:
    """The ``simulate`` action's result document for one trace."""
    deadlines = {f.name: f.spec.deadlines for f in scenario.flows}
    return {
        "events": trace.events_processed,
        "incomplete": trace.count_incomplete(),
        "deadline_misses": trace.deadline_misses(deadlines),
        "flows": {
            name: {
                "packets": trace.count_completed(name),
                "worst_response": trace.worst_response(name),
                "mean_response": trace.mean_response(name),
            }
            for name in trace.flows()
        },
    }


def action_simulate(scenario: Scenario) -> dict[str, Any]:
    """One simulator run under the scenario's :class:`SimConfig`."""
    trace = simulate(scenario.network, scenario.flows, config=scenario.sim)
    return _simulate_payload(scenario, trace)


# ----------------------------------------------------------------------
# Batched simulation: reuse one built topology across grid points
# ----------------------------------------------------------------------
#: Per-process cache of built simulators, keyed by topology signature.
#: Small by design: a validate action cycles two entries (one per
#: switch mode) and mixed campaigns a couple more.
_SIM_CACHE: "OrderedDict[str, Simulator]" = OrderedDict()
_SIM_CACHE_MAX = 4


def _sim_topology_key(network, config: SimConfig) -> str:
    """Digest of everything a built simulator topology is baked from:
    the network document plus the topology-baked config fields."""
    from repro.io import network_to_dict

    doc = {
        "network": network_to_dict(network),
        "config": {
            name: repr(getattr(config, name))
            for name in TOPOLOGY_CONFIG_FIELDS
        },
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


def batched_trace(network, flows, config: SimConfig) -> SimulationTrace:
    """Simulate via the per-process topology cache.

    Value-equal ``(network, topology config)`` pairs reuse one built
    :class:`Simulator`, rebinding only flows/releases.  Results are
    bit-identical to a fresh ``simulate`` call regardless of cache
    state (``rebind`` guarantees it), so campaign rows stay
    reproducible for any worker count — consecutive grid points landing
    in the same worker simply stop paying construction cost.
    """
    key = _sim_topology_key(network, config)
    sim = _SIM_CACHE.pop(key, None)
    if sim is None:
        sim = Simulator(network, flows, config)
    else:
        sim.rebind(flows, config)
    trace = sim.run()
    # Don't let the cached topology pin the returned trace's packet
    # records in memory until the next rebind/eviction.
    sim.trace = SimulationTrace(duration=config.duration)
    _SIM_CACHE[key] = sim
    while len(_SIM_CACHE) > _SIM_CACHE_MAX:
        _SIM_CACHE.popitem(last=False)
    return trace


def action_simulate_batched(scenario: Scenario) -> dict[str, Any]:
    """``simulate`` through the topology cache — same payload, built
    topology shared across same-network grid points."""
    trace = batched_trace(scenario.network, scenario.flows, scenario.sim)
    return _simulate_payload(scenario, trace)


def action_validate(
    scenario: Scenario, *, modes: Sequence[str] = ("event", "rotation")
) -> dict[str, Any]:
    """Analysis bounds vs simulated worst responses (both modes).

    Returns one row per (flow, frame, mode) that completed at least one
    packet; ``converged=False`` short-circuits with no rows (the E4
    "unschedulable set skipped" case).
    """
    import math

    analysis = holistic_analysis(
        scenario.network, scenario.flows, scenario.options
    )
    if not analysis.converged:
        return {"converged": False, "rows": []}
    rows: list[dict[str, Any]] = []
    for mode in modes:
        trace = batched_trace(
            scenario.network,
            scenario.flows,
            replace(scenario.sim, switch_mode=mode),
        )
        for f in scenario.flows:
            for k in range(f.spec.n_frames):
                sim_worst = trace.worst_response(f.name, k)
                if sim_worst == -math.inf:
                    continue
                rows.append(
                    {
                        "flow": f.name,
                        "frame": k,
                        "mode": mode,
                        "bound": analysis.result(f.name).frame(k).response,
                        "sim_worst": sim_worst,
                        "samples": len(trace.responses(f.name, k)),
                    }
                )
    return {"converged": True, "rows": rows}


def action_admit(scenario: Scenario) -> dict[str, Any]:
    """Sequential admission of the base flows, then the churn events."""
    ctrl = AdmissionController(scenario.network, scenario.options)
    return _admit_storyline(ctrl, scenario)


def action_admit_hierarchical(scenario: Scenario) -> dict[str, Any]:
    """The ``admit`` storyline through the hierarchical controller.

    Same decisions and payload as ``admit`` (the hierarchical path is
    bit-identical by construction — ``tests/test_hierarchy.py``), but
    each decision costs only the candidate's interference closure; this
    is the action datacenter-scale churn campaigns use, and what the CI
    telemetry gate watches the ``hierarchy.*`` counters through.
    """
    from repro.core.hierarchy import HierarchicalAdmissionController

    ctrl = HierarchicalAdmissionController(
        scenario.network, scenario.options
    )
    return _admit_storyline(ctrl, scenario)


def _admit_storyline(ctrl, scenario: Scenario) -> dict[str, Any]:
    admitted: set[str] = set()
    steps: list[dict[str, Any]] = []

    def offer(flow) -> None:
        decision = ctrl.request(flow)
        if decision.accepted:
            admitted.add(flow.name)
        steps.append(
            {
                "event": "admit",
                "flow": flow.name,
                "accepted": decision.accepted,
                "reason": decision.reason,
            }
        )

    for ev in scenario.workload_events():
        if ev.action == "admit":
            offer(ev.flow)
        else:
            # A release of a flow whose admission was rejected is a
            # no-op storyline step, not an error.
            if ev.flow_name in admitted:
                ctrl.release(ev.flow_name)
                admitted.discard(ev.flow_name)
                steps.append({"event": "release", "flow": ev.flow_name})
            else:
                steps.append(
                    {"event": "release-skipped", "flow": ev.flow_name}
                )
    return {
        "steps": steps,
        "accepted": sum(
            1 for s in steps if s["event"] == "admit" and s["accepted"]
        ),
        "offered": sum(1 for s in steps if s["event"] == "admit"),
        "admitted": sorted(admitted),
    }


#: Name → callable for the string form of the ``actions`` argument.
ACTIONS: dict[str, Callable[[Scenario], dict[str, Any]]] = {
    "analyze": action_analyze,
    "simulate": action_simulate,
    "simulate-batched": action_simulate_batched,
    "validate": action_validate,
    "admit": action_admit,
    "admit-hierarchical": action_admit_hierarchical,
}


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignResult:
    """One (scenario, action) outcome row.

    ``payload`` is the action's JSON-able result document;
    ``elapsed_s`` is the worker-side wall time of the action (the only
    field allowed to differ between serial and parallel runs).
    ``telemetry`` is the action's registry snapshot when collection was
    enabled (None otherwise); like the timing, it is observational and
    excluded from :meth:`signature`.
    """

    index: int
    scenario: str
    family: str | None
    action: str
    elapsed_s: float
    payload: Mapping[str, Any]
    telemetry: Mapping[str, Any] | None = None

    def signature(self) -> str:
        """Deterministic digest of everything except timing/telemetry."""
        doc = {
            "index": self.index,
            "scenario": self.scenario,
            "family": self.family,
            "action": self.action,
            "payload": self.payload,
        }
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()
        ).hexdigest()


def campaign_digest(results: Sequence[CampaignResult]) -> str:
    """Order-sensitive digest of a whole campaign (timing excluded)."""
    h = hashlib.sha256()
    for r in results:
        h.update(r.signature().encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _resolve_action(
    action: str | Callable[[Scenario], Mapping[str, Any]],
) -> tuple[str, Callable[[Scenario], Mapping[str, Any]]]:
    if callable(action):
        name = getattr(action, "__name__", None) or getattr(
            getattr(action, "func", None), "__name__", "custom"
        )
        return str(name), action
    try:
        return action, ACTIONS[action]
    except KeyError:
        raise KeyError(
            f"unknown campaign action {action!r}; "
            f"built-ins: {sorted(ACTIONS)}"
        ) from None


def _run_item(
    item: tuple[int, Scenario | ScenarioSpec, tuple],
) -> list[CampaignResult]:
    """Worker body: build the scenario if needed, run every action."""
    index, unit, actions = item
    # Row boundary: the module-level window-packing caches in
    # core/demand.py are process-shared and would otherwise accumulate
    # entries across every scenario a long-lived worker sees; each row
    # starts from a clean slate (profiles are pure functions of their
    # inputs, so this only costs rebuild time, never changes results).
    clear_demand_caches()
    scenario = unit.build() if isinstance(unit, ScenarioSpec) else unit
    family = scenario.generator.family if scenario.generator else None
    rows: list[CampaignResult] = []
    for name, fn in actions:
        if _telemetry.REGISTRY is None:
            start = time.perf_counter()
            payload = fn(scenario)
            elapsed = time.perf_counter() - start
            snapshot = None
        else:
            # Per-action capture: the row carries exactly this action's
            # counts (forked workers inherit the parent registry, so the
            # swap also keeps pre-fork totals out of the row).  The
            # runner merges row snapshots back into the campaign total.
            with _telemetry.capture() as reg:
                with reg.span(f"campaign.{name}"):
                    start = time.perf_counter()
                    payload = fn(scenario)
                    elapsed = time.perf_counter() - start
                # Publish the module-cache levels this action left
                # behind (gauges: merged by max across rows/workers).
                record_demand_cache_telemetry()
            snapshot = reg.snapshot()
        rows.append(
            CampaignResult(
                index=index,
                scenario=scenario.name,
                family=family,
                action=name,
                elapsed_s=elapsed,
                payload=dict(payload),
                telemetry=snapshot,
            )
        )
    return rows


def _pool_context():
    # Shared policy with the service's shard workers: see repro.util.mp.
    from repro.util.mp import mp_context

    return mp_context()


class CampaignRunner:
    """Run scenario campaigns across a multiprocessing pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process.  The
        results are bit-identical for any value (only timings differ).
    actions:
        Default action list: built-in names or callables
        ``(Scenario) -> mapping`` (module-level functions / partials so
        they pickle).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        actions: Sequence[str | Callable] = ("analyze",),
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.actions = tuple(actions)

    # ------------------------------------------------------------------
    def run(
        self,
        scenarios: Sequence[Scenario | ScenarioSpec],
        *,
        actions: Sequence[str | Callable] | None = None,
        jobs: int | None = None,
    ) -> list[CampaignResult]:
        """Execute ``scenarios x actions``; rows in submission order."""
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        resolved = tuple(
            _resolve_action(a) for a in (actions or self.actions)
        )
        if not resolved:
            raise ValueError("a campaign needs at least one action")
        work = [
            (i, unit, resolved) for i, unit in enumerate(scenarios)
        ]
        if jobs == 1 or len(work) <= 1:
            nested = [_run_item(item) for item in work]
        else:
            with _pool_context().Pool(processes=min(jobs, len(work))) as pool:
                nested = pool.map(_run_item, work)
        flat = [row for rows in nested for row in rows]
        # Fold the per-row captures into the caller's registry so a
        # campaign contributes one set of totals regardless of jobs.
        reg = _telemetry.REGISTRY
        if reg is not None:
            for row in flat:
                if row.telemetry:
                    reg.merge(row.telemetry)
        return flat

    def run_grid(
        self,
        family: str,
        *,
        actions: Sequence[str | Callable] | None = None,
        jobs: int | None = None,
        **axes: Any,
    ) -> list[CampaignResult]:
        """Expand a parametric grid over a registered family and run it."""
        from repro.scenario.registry import scenario_grid

        return self.run(
            scenario_grid(family, **axes), actions=actions, jobs=jobs
        )
