"""Campaign-runner benchmarks: parallel speedup over a scenario grid.

The :class:`~repro.scenario.campaign.CampaignRunner` is the engine
behind every sweep experiment and the ``repro.cli campaign``
subcommand, so its scaling is tracked in ``BENCH_scaling.json`` next to
the analysis/admission hot paths.  The parametrisation pins one
16-scenario ``random-line`` grid and runs it at 1 and 4 workers —
the pair of entries *is* the recorded parallel-speedup measurement
(``test_campaign_grid[1]`` / ``test_campaign_grid[4]``): their mean
ratio approaches the worker count on multi-core hosts and ~1x (plus
pool overhead) on single-core CI boxes.

Worker results are asserted bit-identical to the serial run on every
round: the speedup must never come at the cost of determinism.
"""

import pytest

from repro.scenario import CampaignRunner, campaign_digest, scenario_grid

#: One deterministic 16-scenario grid shared by every job count.
GRID_AXES = dict(seed=tuple(range(16)), n_flows=4, utilization=0.45)


def _specs():
    return scenario_grid("random-line", **GRID_AXES)


@pytest.fixture(scope="module")
def serial_digest():
    results = CampaignRunner(jobs=1, actions=("analyze",)).run(_specs())
    return campaign_digest(results)


@pytest.mark.parametrize("jobs", [1, 4])
def test_campaign_grid(benchmark, jobs, serial_digest):
    """Analyze a 16-scenario grid end to end at the given job count."""
    runner = CampaignRunner(jobs=jobs, actions=("analyze",))
    results = benchmark(lambda: runner.run(_specs()))
    assert len(results) == 16
    assert campaign_digest(results) == serial_digest


def test_campaign_admit_churn(benchmark):
    """Admission churn storyline throughput (single worker)."""
    runner = CampaignRunner(jobs=1, actions=("admit",))
    specs = scenario_grid("voip-churn", seed=tuple(range(4)), n_calls=8)
    results = benchmark(lambda: runner.run(specs))
    assert all(r.payload["offered"] == 8 for r in results)
