"""E7: end-to-end bound vs hop count (Fig. 6's additive composition)."""

from repro.experiments.sensitivity import run_hop_sweep


def test_e7_hop_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_hop_sweep(switch_counts=(1, 2, 3, 4, 6, 8)),
        iterations=1,
        rounds=1,
    )
    bounds = [r.bound for r in result.rows]
    assert bounds == sorted(bounds)  # more hops, larger bound
    assert result.roughly_linear()
    report("E7 bound vs hop count", result.render())
