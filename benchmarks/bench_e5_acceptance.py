"""E5: acceptance-ratio curves — GMF vs sporadic/cycle/util baselines."""

from repro.experiments.acceptance import run_acceptance_sweep


def test_e5_acceptance_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_acceptance_sweep(
            utilizations=(0.1, 0.3, 0.5, 0.7, 0.9), trials=8
        ),
        iterations=1,
        rounds=1,
    )
    # The paper's motivating shape: GMF admits at least what the
    # sporadic collapse admits, everywhere.
    assert result.dominance_holds()
    # And the necessary utilisation condition is an upper envelope.
    for p in result.points:
        assert p.accepted["gmf"] <= p.accepted["util"]
    report("E5 acceptance ratio vs utilisation", result.render())


def test_e5b_burstiness_sweep(benchmark, report):
    """The mechanism behind E5: the gap vs frame-size burstiness."""
    from repro.experiments.acceptance import run_burstiness_sweep

    result = benchmark.pedantic(
        lambda: run_burstiness_sweep(
            burstiness_levels=(1.0, 2.0, 4.0, 8.0, 16.0), trials=8
        ),
        iterations=1,
        rounds=1,
    )
    assert result.gap_widens()
    # At burstiness 1 the sporadic collapse is exact: identical verdicts.
    first = result.points[0]
    assert first.ratio("gmf") == first.ratio("sporadic")
    report("E5b acceptance vs burstiness", result.render())
