"""E9: convergence boundary of Eqs. 20/34/35."""

from repro.experiments.convergence import run_convergence_study


def test_e9_convergence_boundary(benchmark, report):
    result = benchmark.pedantic(
        run_convergence_study, iterations=1, rounds=1
    )
    assert result.divergence_detected_correctly()
    assert result.bounds_monotone_in_load()
    # The sweep actually crosses the boundary.
    assert any(p.utilization_ok for p in result.points)
    assert any(not p.utilization_ok for p in result.points)
    report("E9 convergence boundary", result.render())
