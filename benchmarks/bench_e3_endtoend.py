"""E3: end-to-end bounds on the Fig. 1/2 example network (Fig. 6)."""

from repro.experiments.endtoend import run_endtoend_example


def test_e3_endtoend_bounds(benchmark, report):
    result = benchmark(run_endtoend_example)
    assert result.analysis.schedulable
    frames = result.analysis.result("mpeg").frames
    # The I+P packet dominates the cycle.
    assert frames[0].response == max(f.response for f in frames)
    report("E3 end-to-end bounds (Figs. 1/2/6)", result.render())
