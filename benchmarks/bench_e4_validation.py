"""E4: analysis vs simulation — soundness and tightness."""

from repro.experiments.validation import run_validation


def test_e4_validation(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_validation(seeds=(0, 1, 2), duration=1.5),
        iterations=1,
        rounds=1,
    )
    assert result.all_sound, result.violations
    assert 0 < result.mean_tightness <= 1.0
    report("E4 analysis vs simulation", result.render())


def test_e4b_stage_tightness(benchmark, report):
    """Companion study: where along the route does pessimism accrue?"""
    from repro.experiments.validation import run_stage_tightness

    result = benchmark.pedantic(
        lambda: run_stage_tightness(duration=1.5), iterations=1, rounds=1
    )
    assert result.sound
    # Tightness should not improve downstream: each stage adds its own
    # worst-case alignment that a single simulated trace cannot realise
    # simultaneously with the upstream ones.
    ratios = [r.tightness for r in result.rows]
    assert ratios == sorted(ratios, reverse=True)
    report("E4b per-stage tightness", result.render())
