"""E8: ablations of the OCR-reconstruction choices (DESIGN.md table)."""

from repro.experiments.ablation import run_ablation


def test_e8_ablation(benchmark, report):
    result = benchmark(run_ablation)
    corrected = result.variant("corrected")
    for flow in corrected:
        # Strict (as-printed) bounds omit real work => never larger.
        assert result.variant("strict_paper")[flow] <= corrected[flow] + 1e-12
        # Ignoring jitter also only lowers the bound.
        assert result.variant("no_jitter")[flow] <= corrected[flow] + 1e-12
    report("E8 ablations", result.render())
