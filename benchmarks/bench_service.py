"""Admission-service throughput: requests/sec at 1 vs N shards.

The workload is deliberately *shard-local*: four disjoint VoIP stars in
one network, one shard per star (explicit ``shard_map``), with the
request stream round-robining across stars so every micro-batch spans
all shards.  At ``n_shards=1`` everything funnels through one
controller; at ``n_shards=4`` with worker processes each star's
requests are served by its own core — the speedup is the service
tentpole's headline number (≥ 2x at 4 shards on a multi-core host;
single-core CI records both numbers without the parallel gain, like
``bench_campaign.py``).

Decisions are asserted identical to a serial
:class:`~repro.core.admission.AdmissionController` drain of the same
trace, so every trajectory entry measures the same admitted work.
"""

import pytest

from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.model.network import Network
from repro.scenario import Scenario
from repro.service import (
    ShardedAdmissionService,
    replay_serial,
    replay_service,
    trace_from_scenario,
)
from repro.util.units import mbps, ms

N_STARS = 4
N_REQUESTS = 96


def _call(name, route):
    return Flow(
        name=name,
        spec=GmfSpec(
            min_separations=(ms(20),),
            deadlines=(ms(20),),
            jitters=(0.0,),
            payload_bits=(20_000,),
        ),
        route=route,
        priority=5,
    )


def _multi_star_scenario():
    """Four disjoint stars; the flow pool round-robins across them."""
    net = Network()
    for s in range(N_STARS):
        net.add_switch(f"sw{s}")
        for h in range(4):
            net.add_endhost(f"s{s}h{h}")
            net.add_duplex_link(f"s{s}h{h}", f"sw{s}", speed_bps=mbps(100))
    flows = []
    for i in range(8):
        s = i % N_STARS
        a, b = (0, 1) if i < N_STARS else (2, 3)
        flows.append(
            _call(f"s{s}call{i}", (f"s{s}h{a}", f"sw{s}", f"s{s}h{b}"))
        )
    return Scenario(name="multi-star", network=net, flows=tuple(flows))


SCENARIO = _multi_star_scenario()
SHARD_MAP = {f"sw{s}": s for s in range(N_STARS)}
TRACE = trace_from_scenario(
    SCENARIO,
    n_requests=N_REQUESTS,
    arrival="burst",
    burst_size=16,
    burst_gap=0.01,
    hold=12,
    seed=0,
)
# The parity reference: what a serial controller decides on this trace.
SERIAL = replay_serial(SCENARIO.network, TRACE, SCENARIO.options)


@pytest.mark.parametrize("n_shards", [1, N_STARS])
def test_service_throughput(benchmark, n_shards):
    """Drain the trace through the service (workers when sharded)."""

    def run():
        service = ShardedAdmissionService(
            SCENARIO.network,
            n_shards=n_shards,
            options=SCENARIO.options,
            shard_map={k: v % n_shards for k, v in SHARD_MAP.items()},
            workers=n_shards > 1,
        )
        try:
            return replay_service(service, TRACE, batch=16)
        finally:
            service.close()

    summary = benchmark(run)
    assert summary.admit_decisions == SERIAL.admit_decisions
    benchmark.extra_info["requests_per_s"] = round(summary.requests_per_s, 1)
    benchmark.extra_info["accepted"] = summary.accepted


def test_service_recovery(benchmark):
    """Drain the trace while killing two shard workers mid-run.

    The supervisor respawns each dead worker and restores its exact
    state (baseline snapshot + op journal), so the decisions still
    match the serial reference; the cost of that resilience — respawn,
    restore, journal replay — is what this case prices relative to
    ``test_service_throughput``.
    """
    from repro.service import FaultPlan

    plan = FaultPlan.parse("kill:shard=0,at=6;kill:shard=2,at=6")

    def run():
        service = ShardedAdmissionService(
            SCENARIO.network,
            n_shards=N_STARS,
            options=SCENARIO.options,
            shard_map=SHARD_MAP,
            workers=True,
            fault_plan=plan,
            journal_limit=32,
        )
        try:
            summary = replay_service(service, TRACE, batch=16)
            return summary, service.health()
        finally:
            service.close()

    summary, health = benchmark(run)
    assert summary.admit_decisions == SERIAL.admit_decisions
    assert health["restarts"] == 2
    benchmark.extra_info["requests_per_s"] = round(summary.requests_per_s, 1)
    benchmark.extra_info["restarts"] = health["restarts"]
    benchmark.extra_info["recovery_s"] = round(health["recovery_s_total"], 4)


def test_service_recovery_replicated(benchmark):
    """The same double-kill run with a warm standby per shard.

    Each dead primary is *promoted over* instead of cold-restarted: the
    standby already holds the committed state, so failover replays only
    the ship lag, never the whole journal.  ``failover_s`` vs the cold
    case's ``recovery_s`` is the headline replication number in
    ``BENCH_scaling.json``.
    """
    from repro.service import FaultPlan

    plan = FaultPlan.parse("kill:shard=0,at=6;kill:shard=2,at=6")

    def run():
        service = ShardedAdmissionService(
            SCENARIO.network,
            n_shards=N_STARS,
            options=SCENARIO.options,
            shard_map=SHARD_MAP,
            workers=True,
            replicas=1,
            fault_plan=plan,
            journal_limit=32,
        )
        try:
            summary = replay_service(service, TRACE, batch=16)
            return summary, service.health()
        finally:
            service.close()

    summary, health = benchmark(run)
    assert summary.admit_decisions == SERIAL.admit_decisions
    assert health["failovers"] == 2
    assert health["cold_restores"] == 0
    benchmark.extra_info["requests_per_s"] = round(summary.requests_per_s, 1)
    benchmark.extra_info["failovers"] = health["failovers"]
    benchmark.extra_info["failover_s"] = round(health["failover_s_total"], 4)
