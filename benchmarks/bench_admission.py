"""Online admission hot-path benchmark.

The holistic analysis *is* the admission controller (Sec. 3.5), so the
product metric is how fast a stream of requests drains — not how fast a
single offline analysis runs.  This benchmark feeds N pre-generated
flows one by one through a fresh :class:`AdmissionController` and
measures the whole sequence: per-request context construction, demand
profile reuse, warm-started holistic re-analysis, and the accept
bookkeeping all land in the measured region.

``test_admission_sequential[64]`` is the headline number tracked in
``BENCH_scaling.json`` (see ``run_bench.py``).
"""

import pytest

from repro.core.admission import AdmissionController
from repro.util.units import mbps
from repro.workloads.generator import random_flow_set
from repro.workloads.topologies import line_network


def _workload(n_flows):
    """A line topology and N flows sized so that all are admissible."""
    net = line_network(3, hosts_per_switch=4, speed_bps=mbps(1000))
    flows = random_flow_set(
        net, n_flows=n_flows, total_utilization=0.3, seed=42
    )
    return net, flows


@pytest.mark.parametrize("n_flows", [8, 32, 64])
def test_admission_sequential(benchmark, n_flows):
    """Sequential admission of N flows through a fresh controller."""
    net, flows = _workload(n_flows)

    def run():
        ctrl = AdmissionController(net)
        accepted = sum(ctrl.request(f).accepted for f in flows)
        return ctrl, accepted

    ctrl, accepted = benchmark(run)
    # The seeded workload admits most (not necessarily all) requests,
    # and the engine-equivalence tests prove the decisions are
    # identical across engines — so the measured work is comparable
    # between trajectory entries.
    assert n_flows // 2 < accepted <= n_flows
    assert len(ctrl.admitted_flows) == accepted


@pytest.mark.parametrize("n_flows", [32])
def test_admission_churn(benchmark, n_flows):
    """Admit N flows, then release/re-admit the last one repeatedly.

    Models the steady-state of an online controller: a mostly-stable
    admitted set with churn at the margin.  Exercises the release
    (cold-start) path and the demand-cache eviction/rebuild cycle.
    """
    net, flows = _workload(n_flows)
    ctrl = AdmissionController(net)
    for f in flows:
        ctrl.request(f)
    # Churn an admitted flow: releasing it frees exactly the capacity
    # needed to re-admit it, so the cycle is repeatable indefinitely.
    churner = ctrl.admitted_flows[-1]

    def run():
        ctrl.release(churner.name)
        return ctrl.request(churner)

    decision = benchmark(run)
    assert decision.accepted
