#!/usr/bin/env python
"""Run the perf suite and record the trajectory in BENCH_scaling.json.

The analysis engine is an *online* admission controller, so performance
is a product feature and regressions must be visible in review.  This
runner executes the two perf-tracking benchmark files —
``bench_scaling.py`` (offline analysis / simulator scaling) and
``bench_admission.py`` (the online admission hot path) — via
pytest-benchmark and appends a labelled entry to ``BENCH_scaling.json``
at the repo root.  Each PR that touches the hot paths should add an
entry::

    PYTHONPATH=src python benchmarks/run_bench.py --label pr3-my-change

Labels are unique: re-running with an existing label is refused so a
stray re-run cannot silently rewrite history — pass ``--force`` to
deliberately replace the entry.  When an entry labelled ``seed`` (or anything passed via
``--baseline``) exists, the runner prints the speedup of every shared
benchmark against it, so "did this PR actually help" is one command.

The headline numbers tracked across PRs:

* ``test_analysis_scaling_flows[16]`` — one offline holistic analysis;
* ``test_admission_sequential[64]``  — draining 64 admission requests.

Each entry also records per-benchmark telemetry KPIs (fixed-point
iterations, cache hit rates, events dispatched — see
:mod:`repro.telemetry`), collected in a second *un-timed*
``--benchmark-disable`` pass so the timed numbers keep telemetry's
zero-overhead disabled path.  ``--compare <label>`` prints KPI deltas
against another entry — "same speed but doing more work" regressions
show up here before they show up in wall time.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_scaling.json"
BENCH_FILES = (
    "benchmarks/bench_scaling.py",
    "benchmarks/bench_admission.py",
    "benchmarks/bench_campaign.py",
    "benchmarks/bench_service.py",
)


def run_benchmarks(extra_pytest_args: list[str]) -> dict[str, dict]:
    """Run the perf files; return ``{test id: stats}`` keyed like
    ``bench_scaling.py::test_analysis_scaling_flows[16]``."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = Path(tmp.name)
    try:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_FILES,
            "--benchmark-only",
            "--benchmark-json",
            str(json_path),
            # Keep wall time bounded: the point is a comparable number,
            # not a publication-grade distribution.
            "--benchmark-min-rounds=3",
            "--benchmark-max-time=1.0",
            "-q",
            *extra_pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            raise SystemExit(f"pytest failed with exit code {proc.returncode}")
        data = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)

    results: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        # fullname is "benchmarks/bench_x.py::test[param]"; strip the dir
        # so entries stay stable if the directory is ever renamed.
        name = bench["fullname"].split("/")[-1]
        stats = bench["stats"]
        results[name] = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        extra = bench.get("extra_info") or {}
        if "scale" in extra:
            # Scale label (single-pod / datacenter-1e5 / ...) so
            # comparisons across the scaling axis group cleanly.
            results[name]["scale"] = extra["scale"]
        # recovery_s / failover_s are the fault-tolerance headline pair:
        # cold restore cost vs warm standby promotion cost.
        for key in ("admitted_flows", "preload_s", "recovery_s", "failover_s"):
            if key in extra:
                results[name][key] = extra[key]
    return results


def _derived_metrics(snapshot: dict) -> dict:
    try:
        from repro.telemetry.report import derived_metrics
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.telemetry.report import derived_metrics
    return derived_metrics(snapshot)


def collect_telemetry(extra_pytest_args: list[str]) -> dict[str, dict]:
    """Second, un-timed pass: run every benchmark once with telemetry on.

    Returns ``{test id: flat KPI dict}``.  Timings stay trustworthy
    because the timed pass above runs with telemetry disabled (the
    zero-overhead path); work counters — iterations, cache hits,
    events — are deterministic, so measuring them un-timed is exact.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    env = dict(os.environ, REPRO_BENCH_TELEMETRY_OUT=str(out_path))
    try:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_FILES,
            "--benchmark-disable",
            "-q",
            *extra_pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(
                f"telemetry pass failed with exit code {proc.returncode}"
            )
        raw = (
            json.loads(out_path.read_text())
            if out_path.stat().st_size
            else {}
        )
    finally:
        out_path.unlink(missing_ok=True)
    return {name: _derived_metrics(snap) for name, snap in raw.items()}


def load_trajectory(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {
        "description": (
            "Perf trajectory of the analysis/admission engine. "
            "One entry per labelled run of benchmarks/run_bench.py; "
            "'mean_s' is pytest-benchmark's mean seconds per round."
        ),
        "command": "PYTHONPATH=src python benchmarks/run_bench.py --label <label>",
        "entries": [],
    }


def git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def print_comparison(entries: list[dict], label: str, baseline: str) -> None:
    by_label = {e["label"]: e for e in entries}
    if baseline not in by_label or label == baseline:
        return
    base = by_label[baseline]["benchmarks"]
    cur = by_label[label]["benchmarks"]
    shared = sorted(set(base) & set(cur))
    if not shared:
        return
    print(f"\nSpeedup vs {baseline!r} (mean seconds per round):")
    width = max(len(n) for n in shared)
    # Group by scale label so the datacenter axis reads separately from
    # the historical single-pod cases (unlabelled entries sort first).
    by_scale: dict[str, list[str]] = {}
    for name in shared:
        scale = cur[name].get("scale") or base[name].get("scale") or ""
        by_scale.setdefault(scale, []).append(name)
    for scale in sorted(by_scale):
        if scale:
            print(f"  [{scale}]")
        for name in by_scale[scale]:
            b, c = base[name]["mean_s"], cur[name]["mean_s"]
            ratio = b / c if c > 0 else float("inf")
            print(f"  {name:<{width}}  {b:.6f} -> {c:.6f}  ({ratio:.2f}x)")


def print_telemetry_compare(entries: list[dict], label: str, compare: str) -> None:
    """KPI deltas of ``label`` vs ``compare``, regression-flagged."""
    try:
        from repro.telemetry.report import DEFAULT_THRESHOLD, classify
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.telemetry.report import DEFAULT_THRESHOLD, classify

    by_label = {e["label"]: e for e in entries}
    if compare not in by_label:
        raise SystemExit(
            f"--compare: no entry labelled {compare!r} "
            f"(known: {sorted(by_label)})"
        )
    base = by_label[compare].get("telemetry") or {}
    cur = by_label[label].get("telemetry") or {}
    all_tests = sorted(set(base) | set(cur))
    if not all_tests:
        print(
            f"\nNo shared telemetry between {label!r} and {compare!r} "
            "(older entries predate telemetry recording)"
        )
        return
    print(f"\nTelemetry deltas vs {compare!r} (changed KPIs only):")
    regressions = 0
    for test in all_tests:
        base_kpis = base.get(test) or {}
        cur_kpis = cur.get(test) or {}
        rows = []
        # The union, not the intersection: a KPI (or a whole test)
        # appearing only on one side is exactly the kind of change a
        # reviewer needs to see (new pod-level counters, dropped
        # benchmarks), not something to silently skip.
        for name in sorted(set(base_kpis) | set(cur_kpis)):
            if name not in base_kpis:
                rows.append(f"    {name}: (absent) -> {cur_kpis[name]:g} [new]")
                continue
            if name not in cur_kpis:
                rows.append(
                    f"    {name}: {base_kpis[name]:g} -> (absent) [removed]"
                )
                continue
            b, c = base_kpis[name], cur_kpis[name]
            if b == c:
                continue
            rel = (c - b) / abs(b) if b else float("inf")
            direction, gating = classify(name)
            worse = (rel < -DEFAULT_THRESHOLD) if direction == "higher" else (
                rel > DEFAULT_THRESHOLD
            )
            flag = "REGRESSION" if gating and worse else (
                "ok" if gating else "info"
            )
            if flag == "REGRESSION":
                regressions += 1
            rows.append(f"    {name}: {b:g} -> {c:g} ({rel:+.1%}) [{flag}]")
        if rows:
            print(f"  {test}")
            print("\n".join(rows))
    if regressions:
        print(f"{regressions} telemetry regression(s) flagged")
    else:
        print("no telemetry regressions flagged")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        help="name of this run in the trajectory (e.g. 'seed', 'pr2'); "
        "required unless --dry-run",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="replace an existing entry with the same label instead of "
        "refusing (labels are unique in the trajectory)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="validate the bench harness (one fast round per benchmark) "
        "without writing the trajectory file — CI smoke mode",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"trajectory file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline",
        default="seed",
        help="entry label to print speedups against (default 'seed')",
    )
    parser.add_argument(
        "--compare",
        metavar="LABEL",
        help="also print telemetry KPI deltas against this entry's "
        "recorded snapshot metrics",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the un-timed telemetry pass (entry gets no "
        "'telemetry' block)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra args forwarded to pytest (e.g. -k admission)",
    )
    args = parser.parse_args(argv)

    if args.dry_run:
        results = run_benchmarks(
            [
                "--benchmark-min-rounds=1",
                "--benchmark-max-time=0.01",
                "--benchmark-warmup=off",
                *args.pytest_args,
            ]
        )
        print(
            f"\nDry run OK: {len(results)} benchmarks executed; "
            f"{args.output} not modified"
        )
        return
    if not args.label:
        parser.error("--label is required unless --dry-run is given")
    trajectory = load_trajectory(args.output)
    if not args.force and any(
        e["label"] == args.label for e in trajectory["entries"]
    ):
        raise SystemExit(
            f"label {args.label!r} is already recorded in {args.output}; "
            "pick a fresh label or pass --force to replace the entry"
        )
    results = run_benchmarks(args.pytest_args)
    entry = {
        "label": args.label,
        "git": git_revision(),
        "benchmarks": results,
    }
    if not args.no_telemetry:
        entry["telemetry"] = collect_telemetry(args.pytest_args)
    entries = [e for e in trajectory["entries"] if e["label"] != args.label]
    entries.append(entry)
    trajectory["entries"] = entries
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"\nRecorded {len(results)} benchmarks as {args.label!r} in {args.output}")
    print_comparison(entries, args.label, args.baseline)
    if args.compare:
        print_telemetry_compare(entries, args.label, args.compare)


if __name__ == "__main__":
    main()
