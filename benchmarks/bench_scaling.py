"""Performance benchmarks: how the analysis and simulator scale.

Not a paper table — engineering due diligence for an admission
controller that must run online: analysis cost vs flow count, GMF cycle
length and route length, plus simulator event throughput.
"""

import pytest

from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms
from repro.workloads.generator import random_flow_set
from repro.workloads.topologies import fat_tree_network, line_network


def _network():
    return line_network(3, hosts_per_switch=4, speed_bps=mbps(1000))


@pytest.mark.parametrize("n_flows", [4, 16])
def test_analysis_scaling_flows(benchmark, n_flows):
    net = _network()
    flows = random_flow_set(
        net, n_flows=n_flows, total_utilization=0.3, seed=42
    )
    result = benchmark(lambda: holistic_analysis(net, flows))
    assert result.converged


@pytest.mark.parametrize("n_frames", [3, 30])
def test_analysis_scaling_cycle_length(benchmark, n_frames):
    """Cost of long GMF cycles (the O(n^2) window precomputation)."""
    net = _network()
    flow = Flow(
        name="long",
        spec=GmfSpec(
            min_separations=(ms(10),) * n_frames,
            deadlines=(ms(500),) * n_frames,
            jitters=(0.0,) * n_frames,
            payload_bits=tuple(
                10_000 + 1_000 * (k % 7) for k in range(n_frames)
            ),
        ),
        route=("h0_0", "sw0", "sw1", "sw2", "h2_0"),
        priority=5,
    )
    result = benchmark(lambda: holistic_analysis(net, [flow]))
    assert result.schedulable


def test_simulator_event_throughput(benchmark):
    """Events per second of wall clock for a loaded two-switch network."""
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    flows = random_flow_set(
        net, n_flows=6, total_utilization=0.5, seed=7
    )

    def run():
        return simulate(net, flows, config=SimConfig(duration=0.5))

    trace = benchmark(run)
    assert trace.count_completed() > 0


def test_simulator_event_throughput_fat_tree(benchmark):
    """The larger case: a leaf/spine fabric with many switches, where
    per-switch rotation overhead and topology construction both weigh
    in (the fast backend's bulk releases + O(1) idle sleep carry it)."""
    net = fat_tree_network(
        spines=2, leaves=4, hosts_per_leaf=2, speed_bps=mbps(100)
    )
    flows = random_flow_set(
        net, n_flows=12, total_utilization=0.4, seed=11
    )

    def run():
        return simulate(net, flows, config=SimConfig(duration=0.5))

    trace = benchmark(run)
    assert trace.count_completed() > 0
