"""Performance benchmarks: how the analysis and simulator scale.

Not a paper table — engineering due diligence for an admission
controller that must run online: analysis cost vs flow count, GMF cycle
length and route length, plus simulator event throughput, and the
datacenter axis — a single admission decision against 10^4/10^5
already-admitted flows through the hierarchical controller
(``core/hierarchy.py``).

Every benchmark tags ``benchmark.extra_info["scale"]`` with its scale
label (``single-pod`` for the historical cases, ``datacenter-1e4`` /
``datacenter-1e5`` for the new axis) so ``run_bench.py --compare``
groups entries across the axis cleanly.

The 10^5 case preloads for a few minutes, so it only runs when
``REPRO_BENCH_FULL=1`` is set (the labelled trajectory runs; CI smoke
uses the 10^4 case).
"""

import os

import pytest

from repro.core.context import AnalysisOptions
from repro.core.hierarchy import HierarchicalAdmissionController
from repro.core.holistic import holistic_analysis
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.scenario.families import _MICE_SPEC, datacenter_flows
from repro.sim.simulator import SimConfig, simulate
from repro.util.units import mbps, ms
from repro.workloads.generator import random_flow_set
from repro.workloads.topologies import (
    fat_tree_network,
    line_network,
    multi_pod_route,
)


def _network():
    return line_network(3, hosts_per_switch=4, speed_bps=mbps(1000))


@pytest.mark.parametrize("n_flows", [4, 16])
def test_analysis_scaling_flows(benchmark, n_flows):
    benchmark.extra_info["scale"] = "single-pod"
    net = _network()
    flows = random_flow_set(
        net, n_flows=n_flows, total_utilization=0.3, seed=42
    )
    result = benchmark(lambda: holistic_analysis(net, flows))
    assert result.converged


@pytest.mark.parametrize("n_frames", [3, 30])
def test_analysis_scaling_cycle_length(benchmark, n_frames):
    """Cost of long GMF cycles (the O(n^2) window precomputation)."""
    benchmark.extra_info["scale"] = "single-pod"
    net = _network()
    flow = Flow(
        name="long",
        spec=GmfSpec(
            min_separations=(ms(10),) * n_frames,
            deadlines=(ms(500),) * n_frames,
            jitters=(0.0,) * n_frames,
            payload_bits=tuple(
                10_000 + 1_000 * (k % 7) for k in range(n_frames)
            ),
        ),
        route=("h0_0", "sw0", "sw1", "sw2", "h2_0"),
        priority=5,
    )
    result = benchmark(lambda: holistic_analysis(net, [flow]))
    assert result.schedulable


def test_simulator_event_throughput(benchmark):
    """Events per second of wall clock for a loaded two-switch network."""
    benchmark.extra_info["scale"] = "single-pod"
    net = line_network(2, hosts_per_switch=2, speed_bps=mbps(100))
    flows = random_flow_set(
        net, n_flows=6, total_utilization=0.5, seed=7
    )

    def run():
        return simulate(net, flows, config=SimConfig(duration=0.5))

    trace = benchmark(run)
    assert trace.count_completed() > 0


def test_simulator_event_throughput_fat_tree(benchmark):
    """The larger case: a leaf/spine fabric with many switches, where
    per-switch rotation overhead and topology construction both weigh
    in (the fast backend's bulk releases + O(1) idle sleep carry it)."""
    benchmark.extra_info["scale"] = "single-pod"
    net = fat_tree_network(
        spines=2, leaves=4, hosts_per_leaf=2, speed_bps=mbps(100)
    )
    flows = random_flow_set(
        net, n_flows=12, total_utilization=0.4, seed=11
    )

    def run():
        return simulate(net, flows, config=SimConfig(duration=0.5))

    trace = benchmark(run)
    assert trace.count_completed() > 0


# ----------------------------------------------------------------------
# Datacenter axis: one admission decision at 10^4 / 10^5 admitted flows
# ----------------------------------------------------------------------
#: Scenario parameters per scale.  Host counts keep the per-uplink flow
#: density low (~10 mice per host link), which is what real rack-affine
#: placement gives and what keeps one admission's interference closure
#: small; see the "Scaling" section of the README.
_SCALE_CASES = {
    "1e4": dict(
        pods=4,
        aggs_per_pod=2,
        leaves_per_pod=16,
        hosts_per_leaf=16,
        cores=2,
        n_mice=9_936,
        n_elephants=32,
        incast_groups=4,
        incast_fanin=8,
        tenants=16,
        cross_pod_fraction=0.1,
        locality=0.9,
        seed=42,
    ),
    "1e5": dict(
        pods=8,
        aggs_per_pod=4,
        leaves_per_pod=64,
        hosts_per_leaf=16,
        cores=4,
        n_mice=99_840,
        n_elephants=64,
        incast_groups=8,
        incast_fanin=12,
        tenants=16,
        cross_pod_fraction=0.05,
        locality=0.9,
        seed=42,
    ),
}

#: Preloaded controllers, one per scale, shared across rounds and
#: tests in this process (preloading 10^5 flows takes minutes; the
#: benchmark measures the *admission decision*, not the preload).
_scale_controllers: dict[str, tuple[HierarchicalAdmissionController, float]] = {}


def _controller_at_scale(scale: str) -> tuple[HierarchicalAdmissionController, float]:
    if scale not in _scale_controllers:
        import gc
        import time

        net, flows = datacenter_flows(**_SCALE_CASES[scale])
        ctrl = HierarchicalAdmissionController(net, AnalysisOptions())
        start = time.perf_counter()
        ctrl.preload(flows)
        _scale_controllers[scale] = (ctrl, time.perf_counter() - start)
        # Move the preloaded graph out of the collector's reach: without
        # this, allocation during the timed admits triggers full gen-2
        # sweeps over ~10^5 flows' worth of objects (tens of ms — larger
        # than the admission being measured).
        gc.collect()
        gc.freeze()
    return _scale_controllers[scale]


_FULL = pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_FULL"),
    reason="10^5-flow preload takes minutes; set REPRO_BENCH_FULL=1",
)


def _quiet_rack_pair(case: dict, flows) -> tuple[str, str]:
    """The two least-loaded hosts of pod 0's least-loaded rack.

    Most racks host only rack-local tenant mice; the few that hold an
    elephant or incast endpoint drag cross-pod routes (and their much
    larger interference closures) into an admission's changed set.  The
    representative probe target is a quiet rack — the common case —
    picked deterministically from the flow set.
    """
    endpoint_count: dict[str, int] = {}
    for f in flows:
        for node in (f.route[0], f.route[-1]):
            endpoint_count[node] = endpoint_count.get(node, 0) + 1
    racks = [
        [
            f"p0_h{leaf}_{k}"
            for k in range(case["hosts_per_leaf"])
        ]
        for leaf in range(case["leaves_per_pod"])
    ]
    rack = min(
        racks,
        key=lambda hosts: sum(endpoint_count.get(h, 0) for h in hosts),
    )
    a, b = sorted(rack, key=lambda h: endpoint_count.get(h, 0))[:2]
    return a, b


@pytest.mark.parametrize(
    "scale", ["1e4", pytest.param("1e5", marks=_FULL)]
)
def test_admission_at_scale(benchmark, scale):
    """One rack-local admission decision against a preloaded fabric.

    The probe is the dominant admission type of the scenario (a
    rack-local mouse); its cost is the interference closure of the two
    host links it touches — independent of the admitted-set size, which
    is the hierarchical controller's O(changed-set) claim.  Each round
    admits a fresh probe (releases cold-restart the transitive reader
    closure, which at this scale costs minutes — see the ROADMAP item);
    the handful of extra rack-local mice left behind is noise against
    the preloaded set.
    """
    ctrl, preload_s = _controller_at_scale(scale)
    src, dst = _quiet_rack_pair(_SCALE_CASES[scale], ctrl.admitted_flows)
    benchmark.extra_info["scale"] = f"datacenter-{scale}"
    benchmark.extra_info["admitted_flows"] = len(ctrl.admitted_flows)
    benchmark.extra_info["preload_s"] = round(preload_s, 3)
    benchmark.extra_info["probe_route"] = f"{src}->{dst}"
    probes = iter(
        Flow(
            name=f"bench_probe_{i}",
            spec=_MICE_SPEC,
            route=multi_pod_route(src, dst),
            priority=6,
        )
        for i in range(100)
    )

    def setup():
        return (next(probes),), {}

    def admit(probe):
        decision = ctrl.request(probe)
        assert decision.accepted, decision.reason
        return decision

    benchmark.pedantic(
        admit, setup=setup, rounds=10, warmup_rounds=1, iterations=1
    )
