"""Benchmark configuration.

Each ``bench_e*.py`` regenerates one experiment of EXPERIMENTS.md: the
benchmark measures the computation and the captured table is printed at
the end of the run so ``pytest benchmarks/ --benchmark-only -s`` shows
exactly the rows the paper's worked examples / claims correspond to.

When ``REPRO_BENCH_TELEMETRY_OUT`` names a file, every test runs under
a fresh :mod:`repro.telemetry` capture and the per-test snapshots are
dumped there at session end (keyed ``bench_file.py::test[param]``).
``run_bench.py`` uses this in a second, un-timed ``--benchmark-disable``
pass so the timed pass keeps telemetry's zero-overhead disabled path.
"""

import json
import os

import pytest

_reports: list[tuple[str, str]] = []
_TELEMETRY_OUT = os.environ.get("REPRO_BENCH_TELEMETRY_OUT")
_telemetry_by_test: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _bench_telemetry(request):
    if not _TELEMETRY_OUT:
        yield
        return
    from repro import telemetry as _telemetry

    with _telemetry.capture() as reg:
        yield
    snapshot = reg.snapshot()
    if snapshot["counters"] or snapshot["histograms"]:
        # Key like the trajectory entries: strip the directory.
        _telemetry_by_test[request.node.nodeid.split("/")[-1]] = snapshot


def pytest_sessionfinish(session, exitstatus):
    if _TELEMETRY_OUT and _telemetry_by_test:
        with open(_TELEMETRY_OUT, "w", encoding="utf-8") as fh:
            json.dump(_telemetry_by_test, fh, sort_keys=True)


def record_report(name: str, text: str) -> None:
    """Stash an experiment's rendered table for the session summary."""
    _reports.append((name, text))


@pytest.fixture
def report():
    return record_report


def pytest_terminal_summary(terminalreporter):
    if not _reports:
        return
    terminalreporter.section("experiment tables (EXPERIMENTS.md)")
    for name, text in _reports:
        terminalreporter.write_line(f"\n--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
