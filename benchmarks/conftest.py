"""Benchmark configuration.

Each ``bench_e*.py`` regenerates one experiment of EXPERIMENTS.md: the
benchmark measures the computation and the captured table is printed at
the end of the run so ``pytest benchmarks/ --benchmark-only -s`` shows
exactly the rows the paper's worked examples / claims correspond to.
"""

import pytest

_reports: list[tuple[str, str]] = []


def record_report(name: str, text: str) -> None:
    """Stash an experiment's rendered table for the session summary."""
    _reports.append((name, text))


@pytest.fixture
def report():
    return record_report


def pytest_terminal_summary(terminalreporter):
    if not _reports:
        return
    terminalreporter.section("experiment tables (EXPERIMENTS.md)")
    for name, text in _reports:
        terminalreporter.write_line(f"\n--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
