"""E1: the Fig. 3/4 worked example (per-frame C, CSUM/NSUM/TSUM).

Regenerates the per-link parameters of the MPEG IBBPBBPBB stream on the
10 Mbit/s link(0,4) of the paper's Sec. 3.1 example and asserts the
recoverable value TSUM = 270 ms.
"""

import pytest

from repro.experiments.worked_example import run_worked_example


def test_e1_worked_example(benchmark, report):
    result = benchmark(run_worked_example)
    assert result.tsum == pytest.approx(0.270)  # paper's Eq. 6 value
    assert result.demand.n_frames == 9
    assert result.nsum > result.demand.n_frames  # I frames fragment
    report("E1 worked example (Fig. 3/4)", result.render())
