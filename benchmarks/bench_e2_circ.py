"""E2: CIRC arithmetic (Sec. 3.3 example and conclusions table)."""

import pytest

from repro.experiments.worked_example import run_circ_examples


def test_e2_circ_examples(benchmark, report):
    result = benchmark(run_circ_examples)
    assert result.example_switch.circ == pytest.approx(14.8e-6)
    assert result.network_processor.circ == pytest.approx(11.1e-6)
    assert result.gigabit_feasible_speed > 1e9  # "comfortably 1 Gbit/s"
    report("E2 CIRC arithmetic", result.render())
