"""E6: delay-vs-CIRC sweep and multiprocessor switches (conclusions)."""

from repro.experiments.sensitivity import run_circ_sensitivity


def test_e6_circ_sensitivity(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_circ_sensitivity(
            cost_scales=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
            processor_counts=(1, 2, 4),
        ),
        iterations=1,
        rounds=1,
    )
    # "CIRC(N) ... heavily influences the delay": monotone growth.
    assert result.monotone_in_circ()
    report("E6 bound vs CIRC", result.render())
