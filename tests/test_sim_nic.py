"""Link transmitter: serialization, propagation, pull/idle hooks."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.nic import LinkTransmitter
from repro.switch.queues import QueuedFrame


def frame(bits=10_000, packet=0):
    return QueuedFrame(
        flow="f", wire_bits=bits, priority=0, packet_id=packet,
        fragment=0, n_fragments=1,
    )


class Harness:
    def __init__(self, speed=1e6, prop=0.0):
        self.engine = EventEngine()
        self.queue = []
        self.delivered = []
        self.idle_calls = 0
        self.tx = LinkTransmitter(
            self.engine,
            speed_bps=speed,
            prop_delay=prop,
            pull=self._pull,
            deliver=lambda f: self.delivered.append((self.engine.now, f)),
            on_idle=self._on_idle,
        )

    def _pull(self):
        return self.queue.pop(0) if self.queue else None

    def _on_idle(self):
        self.idle_calls += 1

    def send(self, f):
        self.queue.append(f)
        self.tx.kick()


class TestSerialization:
    def test_wire_time(self):
        h = Harness(speed=1e6)
        h.send(frame(bits=10_000))
        h.engine.run()
        t, _ = h.delivered[0]
        assert t == pytest.approx(0.01)

    def test_back_to_back_frames(self):
        h = Harness(speed=1e6)
        h.send(frame(bits=10_000, packet=1))
        h.send(frame(bits=20_000, packet=2))
        h.engine.run()
        assert [f.packet_id for _, f in h.delivered] == [1, 2]
        assert h.delivered[0][0] == pytest.approx(0.01)
        assert h.delivered[1][0] == pytest.approx(0.03)

    def test_non_preemptive(self):
        """A frame arriving mid-transmission waits (MFT blocking basis)."""
        h = Harness(speed=1e6)
        h.send(frame(bits=50_000, packet=1))  # 50 ms
        h.engine.schedule(0.001, lambda: h.send(frame(bits=1_000, packet=2)))
        h.engine.run()
        assert h.delivered[1][0] == pytest.approx(0.051)

    def test_propagation_added(self):
        h = Harness(speed=1e6, prop=0.002)
        h.send(frame(bits=10_000))
        h.engine.run()
        assert h.delivered[0][0] == pytest.approx(0.012)

    def test_kick_idempotent_while_busy(self):
        h = Harness(speed=1e6)
        h.send(frame(bits=10_000, packet=1))
        h.tx.kick()
        h.tx.kick()
        h.engine.run()
        assert len(h.delivered) == 1

    def test_counters(self):
        h = Harness()
        h.send(frame(bits=100, packet=1))
        h.send(frame(bits=200, packet=2))
        h.engine.run()
        assert h.tx.frames_sent == 2
        assert h.tx.bits_sent == 300


class TestIdleHook:
    def test_on_idle_fired_when_queue_drains(self):
        h = Harness()
        h.send(frame())
        h.engine.run()
        assert h.idle_calls == 1

    def test_on_idle_not_fired_between_back_to_back(self):
        h = Harness()
        h.send(frame(packet=1))
        h.send(frame(packet=2))
        h.engine.run()
        assert h.idle_calls == 1  # only after the last frame

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            LinkTransmitter(
                EventEngine(), speed_bps=0, prop_delay=0,
                pull=lambda: None, deliver=lambda f: None,
            )
