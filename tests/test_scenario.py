"""Scenario subsystem: model, JSON round-trip, registry, campaigns."""

import json
import math

import pytest

from repro.core.context import AnalysisOptions
from repro.io import ScenarioError, load_scenario, save_scenario
from repro.model.flow import Flow
from repro.model.gmf import GmfSpec
from repro.scenario import (
    REGISTRY,
    CampaignRunner,
    ChurnEvent,
    Scenario,
    ScenarioSpec,
    build_scenario,
    campaign_digest,
    expand_grid,
    load_scenario_file,
    save_scenario_file,
    scenario_from_dict,
    scenario_grid,
    scenario_to_dict,
)
from repro.scenario.campaign import ACTIONS
from repro.scenario.registry import ScenarioRegistry
from repro.sim.simulator import SimConfig
from repro.util.units import ms
from repro.workloads.topologies import fat_tree_network, star_network
from repro.workloads.voip import voip_flow


def _tiny_scenario(**overrides) -> Scenario:
    net = star_network(3)
    flow = voip_flow(("h0", "sw", "h1"), name="call0")
    defaults = dict(
        name="tiny",
        network=net,
        flows=(flow,),
        options=AnalysisOptions(strict_paper=False, use_jitter=False),
        sim=SimConfig(duration=0.5, nic_fifo_capacity=4, priority_levels=8),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


# ----------------------------------------------------------------------
# Model
# ----------------------------------------------------------------------
class TestScenarioModel:
    def test_validates_routes(self):
        net = star_network(3)
        bad = voip_flow(("h0", "h1"), name="x")  # no such link
        with pytest.raises(Exception):
            Scenario(name="bad", network=net, flows=(bad,))

    def test_duplicate_flow_names_rejected(self):
        net = star_network(3)
        f = voip_flow(("h0", "sw", "h1"), name="dup")
        with pytest.raises(Exception):
            Scenario(name="bad", network=net, flows=(f, f))

    def test_churn_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(action="admit")  # missing flow
        with pytest.raises(ValueError):
            ChurnEvent(action="release")  # missing flow_name
        with pytest.raises(ValueError):
            ChurnEvent(action="reboot", flow_name="x")

    def test_spec_params_canonical_order(self):
        a = ScenarioSpec.of("fam", b=2, a=1)
        b = ScenarioSpec.of("fam", a=1, b=2)
        assert a == b
        assert a.label() == "fam[a=1,b=2]"


# ----------------------------------------------------------------------
# JSON round-trip (satellite: versioned schema + legacy compatibility)
# ----------------------------------------------------------------------
class TestScenarioRoundTrip:
    def test_file_round_trip(self, tmp_path):
        sc = _tiny_scenario(churn=(ChurnEvent("release", flow_name="call0"),))
        path = tmp_path / "scenario.json"
        save_scenario_file(path, sc)
        sc2 = load_scenario_file(path)
        assert sc2.name == sc.name
        assert sc2.flows == sc.flows
        assert sc2.options == sc.options
        assert sc2.sim == sc.sim
        assert sc2.churn == sc.churn
        assert sorted(sc2.network.node_names()) == sorted(
            sc.network.node_names()
        )

    def test_generator_provenance_round_trips(self, tmp_path):
        sc = build_scenario("voip-star", seed=5, n_calls=3)
        path = tmp_path / "scenario.json"
        save_scenario_file(path, sc)
        sc2 = load_scenario_file(path)
        assert sc2.generator == sc.generator
        # Regenerating from the stored recipe reproduces the flows.
        assert sc2.generator.build().flows == sc.flows

    def test_legacy_file_loads_as_v1_scenario(self, tmp_path):
        """Pre-scenario (network, flows) files load with defaults."""
        sc = _tiny_scenario()
        path = tmp_path / "legacy.json"
        save_scenario(path, sc.network, sc.flows)  # legacy writer
        assert "schema_version" not in json.loads(path.read_text())
        loaded = load_scenario_file(path)
        assert loaded.flows == sc.flows
        assert loaded.options == AnalysisOptions()  # defaults, not tiny's
        assert loaded.sim == SimConfig()
        assert loaded.name == "legacy"  # from the file stem

    def test_v1_file_loads_through_legacy_io(self, tmp_path):
        """repro.io.load_scenario reads versioned documents too."""
        sc = _tiny_scenario()
        path = tmp_path / "v1.json"
        save_scenario_file(path, sc)
        net, flows = load_scenario(path)
        assert tuple(flows) == sc.flows

    def test_newer_schema_rejected_everywhere(self, tmp_path):
        doc = scenario_to_dict(_tiny_scenario())
        doc["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ScenarioError, match="newer"):
            load_scenario_file(path)
        with pytest.raises(ScenarioError, match="newer"):
            load_scenario(path)

    def test_unknown_option_keys_rejected(self):
        doc = scenario_to_dict(_tiny_scenario())
        doc["analysis"]["warp_drive"] = True
        with pytest.raises(ScenarioError, match="warp_drive"):
            scenario_from_dict(doc)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_families_registered(self):
        names = REGISTRY.names()
        for expected in (
            "paper-example",
            "random-line",
            "mpeg-line",
            "voip-star",
            "fat-tree",
            "mixed-criticality",
            "failure-injection",
            "voip-churn",
        ):
            assert expected in names

    def test_generation_deterministic_under_fixed_seed(self):
        for family, params in (
            ("random-line", dict(seed=7, n_flows=5)),
            ("fat-tree", dict(seed=3)),
            ("mixed-criticality", dict(seed=11)),
            ("voip-churn", dict(seed=2, n_calls=6)),
        ):
            a = build_scenario(family, **params)
            b = build_scenario(family, **params)
            assert a.flows == b.flows, family
            assert a.churn == b.churn, family
            assert a.name == b.name, family
            assert sorted(a.network.node_names()) == sorted(
                b.network.node_names()
            ), family

    def test_different_seeds_differ(self):
        a = build_scenario("random-line", seed=0)
        b = build_scenario("random-line", seed=1)
        assert a.flows != b.flows

    def test_build_stamps_provenance(self):
        sc = build_scenario("random-line", seed=4)
        assert sc.generator == ScenarioSpec.of("random-line", seed=4)

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            build_scenario("no-such-family")

    def test_duplicate_registration_rejected(self):
        reg = ScenarioRegistry()
        reg.register("x", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", lambda: None)

    def test_grid_expansion(self):
        points = expand_grid(a=(1, 2), b="fixed", c=range(3))
        assert len(points) == 6
        assert points[0] == {"a": 1, "b": "fixed", "c": 0}
        assert points[-1] == {"a": 2, "b": "fixed", "c": 2}
        specs = scenario_grid("random-line", seed=(0, 1), n_flows=3)
        assert [s.kwargs["seed"] for s in specs] == [0, 1]
        assert all(s.family == "random-line" for s in specs)

    def test_failure_injection_sim_knobs(self):
        sc = build_scenario(
            "failure-injection", nic_fifo_capacity=2, priority_levels=2
        )
        assert sc.sim.nic_fifo_capacity == 2
        assert sc.sim.priority_levels == 2
        assert all(f.priority < 2 for f in sc.flows)

    def test_fat_tree_topology_is_multipath(self):
        net = fat_tree_network(spines=2, leaves=3)
        # every leaf reaches every spine
        for j in range(3):
            for i in range(2):
                assert net.has_link(f"leaf{j}", f"spine{i}")


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
class TestCampaignRunner:
    def test_parallel_identical_to_serial(self):
        """The load-bearing determinism claim: jobs=N reproduces jobs=1."""
        specs = scenario_grid(
            "random-line", seed=tuple(range(6)), n_flows=3, utilization=0.4
        )
        serial = CampaignRunner(jobs=1, actions=("analyze",)).run(specs)
        parallel = CampaignRunner(jobs=3, actions=("analyze",)).run(specs)
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            assert a.scenario == b.scenario
            assert a.payload == b.payload
        assert campaign_digest(serial) == campaign_digest(parallel)

    def test_scenario_objects_and_specs_equivalent(self):
        spec = ScenarioSpec.of("random-line", seed=9, n_flows=3)
        runner = CampaignRunner(actions=("analyze",))
        from_spec = runner.run([spec])[0]
        from_obj = runner.run([spec.build()])[0]
        assert from_spec.payload == from_obj.payload

    def test_multiple_actions_per_scenario(self):
        sc = build_scenario("voip-star", seed=1, n_calls=2, duration=0.2)
        rows = CampaignRunner(actions=("analyze", "simulate")).run([sc])
        assert [r.action for r in rows] == ["analyze", "simulate"]
        assert rows[0].payload["schedulable"] is True
        assert rows[1].payload["deadline_misses"] == 0
        assert all(r.elapsed_s >= 0 for r in rows)

    def test_validate_action_soundness(self):
        sc = build_scenario(
            "random-line", seed=0, n_flows=3, utilization=0.3, duration=0.5
        )
        (row,) = CampaignRunner(actions=("validate",)).run([sc])
        assert row.payload["converged"]
        assert row.payload["rows"], "expected completed packets"
        for r in row.payload["rows"]:
            assert r["sim_worst"] <= r["bound"] + 1e-9

    def test_admit_action_runs_churn(self):
        sc = build_scenario("voip-churn", n_calls=6, release_every=2)
        (row,) = CampaignRunner(actions=("admit",)).run([sc])
        assert row.payload["offered"] == 6
        releases = [
            s for s in row.payload["steps"] if s["event"] == "release"
        ]
        assert len(releases) == 3
        assert row.payload["accepted"] == 6  # tiny calls all admit
        assert len(row.payload["admitted"]) == 3

    def test_unknown_action_rejected(self):
        with pytest.raises(KeyError, match="unknown campaign action"):
            CampaignRunner(actions=("frobnicate",)).run(
                [build_scenario("voip-star", n_calls=1)]
            )

    def test_all_builtin_actions_listed(self):
        assert set(ACTIONS) == {
            "analyze",
            "simulate",
            "simulate-batched",
            "validate",
            "admit",
            "admit-hierarchical",
        }

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)


# ----------------------------------------------------------------------
# Experiments route through the campaign engine without changing tables
# ----------------------------------------------------------------------
class TestExperimentParity:
    def test_e4_parallel_matches_serial(self):
        from repro.experiments.validation import run_validation

        r1 = run_validation(seeds=(0, 1), duration=0.5, jobs=1)
        r2 = run_validation(seeds=(0, 1), duration=0.5, jobs=2)
        assert r1 == r2

    def test_e5_parallel_matches_serial(self):
        from repro.experiments.acceptance import run_acceptance_sweep

        kw = dict(utilizations=(0.3, 0.6), trials=2)
        r1 = run_acceptance_sweep(jobs=1, **kw)
        r2 = run_acceptance_sweep(jobs=2, **kw)
        assert r1 == r2

    def test_e7_parallel_matches_serial(self):
        from repro.experiments.sensitivity import run_hop_sweep

        r1 = run_hop_sweep(switch_counts=(1, 2), jobs=1)
        r2 = run_hop_sweep(switch_counts=(1, 2), jobs=2)
        assert r1 == r2
        assert [row.hops for row in r1.rows] == [2, 3]
